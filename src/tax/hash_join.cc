#include "tax/hash_join.h"

#include "softpf/prefetch.h"

namespace limoncello {

namespace {

// Stateless SplitMix64-style finalizer: cheap, well-mixed bucket hash.
inline std::uint64_t HashKey(std::uint64_t k) {
  k ^= k >> 30;
  k *= 0xbf58476d1ce4e5b9ULL;
  k ^= k >> 27;
  k *= 0x94d049bb133111ebULL;
  return k ^ (k >> 31);
}

inline std::size_t BucketCountFor(std::size_t n) {
  // Next power of two >= 2n (load factor <= 0.5 keeps chains short).
  std::size_t buckets = 16;
  while (buckets < 2 * n) buckets <<= 1;
  return buckets;
}

// The key-stream lookahead (in keys) encoded by a byte distance.
inline std::size_t LookaheadKeys(std::uint32_t distance_bytes) {
  const std::size_t keys = distance_bytes / sizeof(std::uint64_t);
  return keys < 1 ? 1 : keys;
}

}  // namespace

// limolint:hot-path — datacenter-tax kernel; insertion is pure array
// writes after the one-time reserve.
void HashJoinTable::Build(const std::uint64_t* keys,
                          const std::uint64_t* values, std::size_t n,
                          const SoftPrefetchConfig& config) {
  const std::size_t buckets = BucketCountFor(n);
  bucket_mask_ = buckets - 1;
  // Table storage: reused without allocating at steady state, when the
  // instance is rebuilt with an equal-or-smaller build side.
  heads_.assign(buckets, -1);  // limolint:allow(hot-path-alloc)
  next_.resize(n);  // limolint:allow(hot-path-alloc)
  keys_.assign(keys, keys + n);  // limolint:allow(hot-path-alloc)
  values_.assign(values, values + n);  // limolint:allow(hot-path-alloc)

  const bool prefetch = config.AppliesTo(n * sizeof(std::uint64_t));
  if (!prefetch) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t bucket =
          static_cast<std::size_t>(HashKey(keys[i])) & bucket_mask_;
      next_[i] = heads_[bucket];
      heads_[bucket] = static_cast<std::int32_t>(i);
    }
    return;
  }

  // Group-prefetched insertion, same shape as Probe: hash a block of keys
  // and prefetch every bucket head slot for write (pass 1), then insert
  // (pass 2). The inserts read-modify-write random head slots; issuing
  // the block's ownership prefetches back-to-back overlaps the misses
  // instead of paying one serial RFO per insert. Inserts stay in key
  // order within the block, so chain order (newest first) is identical
  // to the scalar loop.
  constexpr std::size_t kMaxBlock = 256;
  std::size_t block = LookaheadKeys(config.distance_bytes);
  if (block < 8) block = 8;
  if (block > kMaxBlock) block = kMaxBlock;
  std::uint32_t slots[kMaxBlock];
  for (std::size_t base = 0; base < n; base += block) {
    const std::size_t count = n - base < block ? n - base : block;
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t b =
          static_cast<std::size_t>(HashKey(keys[base + j])) & bucket_mask_;
      slots[j] = static_cast<std::uint32_t>(b);
      PrefetchWrite(heads_.data() + b, config.locality);
    }
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t i = base + j;
      next_[i] = heads_[slots[j]];
      heads_[slots[j]] = static_cast<std::int32_t>(i);
    }
  }
}

// limolint:hot-path — datacenter-tax kernel; group-prefetched chain walk,
// zero allocation.
//
// Probes are processed in blocks of `distance_bytes / 8` keys with three
// passes per block: (1) hash every key and prefetch its bucket head slot,
// (2) read the (now cached) heads and prefetch the entry lines they point
// to, (3) walk the chains. Each pass issues a block's worth of independent
// cache misses back-to-back, so the random accesses overlap to the
// memory system's full miss-level parallelism instead of serializing one
// dependent miss per probe — the group-prefetch shape the paper's §4.1
// "computable far ahead" observation enables. degree_bytes extends pass-2
// coverage from the key line to the value (>= 128) and next-link (>= 192)
// arrays.
std::uint64_t HashJoinTable::Probe(const std::uint64_t* keys, std::size_t n,
                                   std::uint64_t* out_sums,
                                   const SoftPrefetchConfig& config) const {
  if (heads_.empty()) {
    for (std::size_t i = 0; i < n; ++i) out_sums[i] = 0;
    return 0;
  }
  std::uint64_t matches = 0;
  const bool prefetch = config.AppliesTo(n * sizeof(std::uint64_t));

  if (!prefetch) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t key = keys[i];
      const std::size_t bucket =
          static_cast<std::size_t>(HashKey(key)) & bucket_mask_;
      std::uint64_t sum = 0;
      for (std::int32_t e = heads_[bucket]; e >= 0;
           e = next_[static_cast<std::size_t>(e)]) {
        const auto idx = static_cast<std::size_t>(e);
        if (keys_[idx] == key) {
          sum += values_[idx];
          ++matches;
        }
      }
      out_sums[i] = sum;
    }
    return matches;
  }

  // Fixed-capacity stack scratch bounds the block size (and with it the
  // number of in-flight prefetches) regardless of the configured distance.
  constexpr std::size_t kMaxBlock = 256;
  std::size_t block = LookaheadKeys(config.distance_bytes);
  if (block < 8) block = 8;
  if (block > kMaxBlock) block = kMaxBlock;
  std::uint32_t buckets[kMaxBlock];
  std::int32_t entries[kMaxBlock];
  const bool cover_values = config.degree_bytes >= 2 * kCacheLineBytes;
  const bool cover_next = config.degree_bytes >= 3 * kCacheLineBytes;

  for (std::size_t base = 0; base < n; base += block) {
    const std::size_t count = n - base < block ? n - base : block;
    // Pass 1: hash, prefetch every bucket head slot in the block.
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t b =
          static_cast<std::size_t>(HashKey(keys[base + j])) & bucket_mask_;
      buckets[j] = static_cast<std::uint32_t>(b);
      PrefetchRead(heads_.data() + b, config.locality);
    }
    // Pass 2: read the heads, prefetch the entry lines they point to.
    for (std::size_t j = 0; j < count; ++j) {
      const std::int32_t head = heads_[buckets[j]];
      entries[j] = head;
      if (head >= 0) {
        const auto e = static_cast<std::size_t>(head);
        PrefetchRead(keys_.data() + e, config.locality);
        if (cover_values) PrefetchRead(values_.data() + e, config.locality);
        if (cover_next) PrefetchRead(next_.data() + e, config.locality);
      }
    }
    // Pass 3: walk the chains (first entry is prefetched; chains are short
    // at load factor <= 0.5).
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint64_t key = keys[base + j];
      std::uint64_t sum = 0;
      for (std::int32_t e = entries[j]; e >= 0;
           e = next_[static_cast<std::size_t>(e)]) {
        const auto idx = static_cast<std::size_t>(e);
        if (keys_[idx] == key) {
          sum += values_[idx];
          ++matches;
        }
      }
      out_sums[base + j] = sum;
    }
  }
  return matches;
}

}  // namespace limoncello
