#include "tax/tax_tuner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "tax/block_compressor.h"
#include "tax/block_hash.h"
#include "tax/dict_compressor.h"
#include "tax/hash_join.h"
#include "tax/prefetching_memcpy.h"
#include "tax/varint_codec.h"
#include "tax/wire_serializer.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/units.h"

namespace limoncello {

namespace {

// Smallest call size in a swept class (the class's lower bound), so a
// candidate config applies to the whole class it is tuned for.
std::uint64_t MinSizeForClass(int size_class) {
  LIMONCELLO_CHECK(size_class >= kFirstTunedSizeClass &&
                   size_class < kNumSizeClasses);
  return kSizeClassUpperBytes[size_class - 1];
}

}  // namespace

const char* TuneRegimeName(TuneRegime regime) {
  switch (regime) {
    case TuneRegime::kHwOn:
      return "hw_on";
    case TuneRegime::kHwOffEmulated:
      return "hw_off_emulated";
  }
  return "unknown";
}

TunerGrid TunerGrid::Default() {
  TunerGrid grid;
  grid.distances = {128, 256, 512, 1024, 2048, 4096};
  grid.degrees = {64, 128, 256, 512, 1024};
  grid.localities = {0, 1, 2, 3};
  return grid;
}

TunerGrid TunerGrid::Reduced() {
  TunerGrid grid;
  grid.distances = {256, 512, 1024};
  grid.degrees = {128, 256};
  grid.localities = {0, 3};
  return grid;
}

// ---------------------------------------------------------------------------
// ModelProbe: deterministic synthetic cost surface.

double ModelProbe::Measure(TaxKernel kernel, int size_class,
                           const SoftPrefetchConfig& config,
                           TuneRegime regime) {
  std::uint64_t state = seed_ ^
                        (static_cast<std::uint64_t>(kernel) * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(size_class) * 0xc2b2ae3d27d4eb4fULL) ^
                        (static_cast<std::uint64_t>(regime) * 0x165667b19e3779f9ULL);
  const std::uint64_t r1 = SplitMix64(state);
  const std::uint64_t r2 = SplitMix64(state);
  const std::uint64_t r3 = SplitMix64(state);
  const std::uint64_t r4 = SplitMix64(state);
  const std::uint64_t r5 = SplitMix64(state);

  const double base = 400.0 + static_cast<double>(r1 % 4096);
  if (!config.AppliesTo(kSizeClassRepBytes[size_class])) return base;

  // Hidden preferred parameters for this cell.
  const double pref_log_distance = 7.0 + static_cast<double>(r2 % 5);  // 128..2048
  const double pref_log_degree = 6.0 + static_cast<double>(r3 % 4);    // 64..512
  const double pref_locality = static_cast<double>(r4 % 4);

  const double dd =
      std::fabs(std::log2(static_cast<double>(config.distance_bytes)) -
                pref_log_distance);
  const double dg =
      std::fabs(std::log2(static_cast<double>(config.degree_bytes)) -
                pref_log_degree);
  const double dl =
      std::fabs(static_cast<double>(config.locality) - pref_locality);
  const double closeness =
      (1.0 / (1.0 + dd)) * (1.0 / (1.0 + dg)) * (0.5 + 0.5 / (1.0 + dl));

  // Attainable gain: large while the hardware prefetchers are off, small
  // (possibly negligible) while they are on.
  const double max_gain =
      regime == TuneRegime::kHwOffEmulated
          ? 0.25 + 0.75 * static_cast<double>(r5 % 100) / 100.0
          : 0.12 * static_cast<double>(r5 % 100) / 100.0;
  return base * (1.0 + max_gain * closeness);
}

// ---------------------------------------------------------------------------
// MeasuredProbe: real wall-clock measurement.

namespace {

inline double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

inline std::size_t AlignUp(std::size_t v, std::size_t a) {
  return (v + a - 1) / a * a;
}

// Optimization sink for value-returning kernels.
volatile std::uint64_t g_probe_sink = 0;

// Compressible word-soup text (stand-in for log/RPC payloads).
std::string MakeText(std::size_t bytes, Rng& rng) {
  static constexpr const char* kWords[] = {
      "request", "latency", "bandwidth", "prefetch", "cache",  "memory",
      "socket",  "stream",  "payload",   "header",   "bucket", "shard",
      "replica", "commit",  "epoch",     "metric",   "queue",  "batch",
      "tensor",  "index",   "column",    "cursor",   "txn",    "page"};
  constexpr std::size_t kNumWords = sizeof(kWords) / sizeof(kWords[0]);
  std::string text;
  text.reserve(bytes + 16);
  while (text.size() < bytes) {
    text += kWords[rng.NextBounded(kNumWords)];
    text += ' ';
    if (rng.NextBernoulli(0.08)) {
      char num[24];
      std::snprintf(num, sizeof(num), "%llu ",
                    static_cast<unsigned long long>(rng.NextBounded(100000)));
      text += num;
    }
  }
  text.resize(bytes);
  return text;
}

std::string MakeRandomBytes(std::size_t bytes, Rng& rng) {
  std::string data(bytes, '\0');
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    const std::uint64_t v = rng.NextU64();
    std::memcpy(&data[i], &v, 8);
  }
  for (; i < bytes; ++i) data[i] = static_cast<char>(rng.NextU64());
  return data;
}

// Build-side key universe: a pure function of the index, so probe keys can
// be drawn from it without materializing the build side.
inline std::uint64_t JoinKeyAt(std::uint64_t universe_seed, std::uint64_t j) {
  std::uint64_t s = universe_seed + j * 0x9e3779b97f4a7c15ULL;
  return SplitMix64(s);
}

}  // namespace

struct MeasuredProbe::Impl {
  MeasuredProbeOptions opts;

  struct Workload {
    int kernel = -1;
    int size_class = -1;
    int regime = -1;

    std::size_t op_bytes = 0;       // throughput credit per op
    std::size_t slot_payload = 0;   // bytes per byte-slot
    std::vector<char> arena;        // byte-slot backing
    std::vector<std::size_t> slots;  // shuffled byte offsets into arena

    std::size_t u64_per_slot = 0;   // elements per u64-slot
    std::vector<std::uint64_t> u64_arena;
    std::vector<std::size_t> u64_slots;  // shuffled element offsets

    std::size_t cursor = 0;

    // Kernel-specific fixtures / reused outputs.
    std::vector<char> dst;
    std::string out;
    std::vector<std::uint64_t> out_u64;
    std::vector<std::uint64_t> out_sums;
    std::vector<WireMessage> msgs;
    WireMessage msg_out;
    std::unique_ptr<DictCompressor> dict;
    HashJoinTable join;
  };

  // Single-entry cache: the sweep visits cells sequentially, and one
  // workload can be near arena_bytes big.
  Workload work;

  explicit Impl(MeasuredProbeOptions options) : opts(options) {}

  Workload& Get(TaxKernel kernel, int size_class, TuneRegime regime) {
    if (work.kernel == static_cast<int>(kernel) &&
        work.size_class == size_class &&
        work.regime == static_cast<int>(regime)) {
      return work;
    }
    work = Workload{};
    work.kernel = static_cast<int>(kernel);
    work.size_class = size_class;
    work.regime = static_cast<int>(regime);
    Prepare(work, kernel, size_class, regime);
    return work;
  }

  // Lays `payload` copies out at page-randomized, shuffled slots of the
  // arena (cold regime) or as a single slot (warm regime).
  void FillByteSlots(Workload& w, std::string_view payload, bool cold,
                     Rng& rng) {
    w.slot_payload = payload.size();
    const std::size_t stride = AlignUp(payload.size() + 4096, 4096);
    const std::size_t target = cold ? std::max(opts.arena_bytes, stride)
                                    : stride;
    const std::size_t num = std::max<std::size_t>(1, target / stride);
    w.arena.assign(num * stride, 0);
    w.slots.resize(num);
    const std::size_t jitter_slots = (stride - payload.size()) / 64 + 1;
    for (std::size_t i = 0; i < num; ++i) {
      const std::size_t off =
          i * stride + 64 * rng.NextBounded(jitter_slots);
      std::memcpy(w.arena.data() + off, payload.data(), payload.size());
      w.slots[i] = off;
    }
    for (std::size_t i = num; i > 1; --i) {
      std::swap(w.slots[i - 1], w.slots[rng.NextBounded(i)]);
    }
  }

  // Same, for u64-element slots (varint input values, join keys).
  void FillU64Slots(Workload& w, const std::vector<std::uint64_t>& payload,
                    bool cold, bool distinct_slots, Rng& rng,
                    std::uint64_t universe_seed, std::uint64_t universe) {
    w.u64_per_slot = payload.size();
    const std::size_t stride = AlignUp(payload.size() + 512, 512);
    const std::size_t target_elems =
        cold ? std::max(opts.arena_bytes / 8, stride) : stride;
    const std::size_t num = std::max<std::size_t>(1, target_elems / stride);
    w.u64_arena.assign(num * stride, 0);
    w.u64_slots.resize(num);
    const std::size_t jitter_slots = (stride - payload.size()) / 8 + 1;
    for (std::size_t i = 0; i < num; ++i) {
      const std::size_t off = i * stride + 8 * rng.NextBounded(jitter_slots);
      if (distinct_slots) {
        // Fresh draw per slot (probe keys: revisiting identical keys would
        // let earlier passes warm exactly the entries later passes visit).
        for (std::size_t j = 0; j < payload.size(); ++j) {
          w.u64_arena[off + j] =
              JoinKeyAt(universe_seed, rng.NextBounded(universe));
        }
      } else {
        std::memcpy(w.u64_arena.data() + off, payload.data(),
                    payload.size() * 8);
      }
      w.u64_slots[i] = off;
    }
    for (std::size_t i = num; i > 1; --i) {
      std::swap(w.u64_slots[i - 1], w.u64_slots[rng.NextBounded(i)]);
    }
  }

  void Prepare(Workload& w, TaxKernel kernel, int size_class,
               TuneRegime regime) {
    const std::size_t rep = kSizeClassRepBytes[size_class];
    const bool cold = regime == TuneRegime::kHwOffEmulated;
    Rng rng(opts.seed ^ (static_cast<std::uint64_t>(kernel) << 32) ^
            (static_cast<std::uint64_t>(size_class) << 8) ^
            static_cast<std::uint64_t>(regime));
    switch (kernel) {
      case TaxKernel::kMemcpy: {
        FillByteSlots(w, MakeRandomBytes(rep, rng), cold, rng);
        w.dst.assign(rep, 0);
        w.op_bytes = rep;
        break;
      }
      case TaxKernel::kMemmove:
      case TaxKernel::kMemset: {
        FillByteSlots(w, MakeRandomBytes(rep, rng), cold, rng);
        w.op_bytes = rep;
        break;
      }
      case TaxKernel::kBlockHash:
      case TaxKernel::kCrc32c: {
        FillByteSlots(w, MakeRandomBytes(rep, rng), cold, rng);
        w.op_bytes = rep;
        break;
      }
      case TaxKernel::kCompress: {
        FillByteSlots(w, MakeText(rep, rng), cold, rng);
        w.op_bytes = rep;
        break;
      }
      case TaxKernel::kDecompress: {
        const std::string text = MakeText(rep, rng);
        std::string compressed;
        BlockCompressor(SoftPrefetchConfig::Disabled())
            .Compress(text, &compressed);
        FillByteSlots(w, compressed, cold, rng);
        w.op_bytes = compressed.size();
        break;
      }
      case TaxKernel::kSerialize: {
        // One reference message of ~rep payload bytes split over fields;
        // cold regime cycles through enough copies to defeat the caches.
        WireMessage reference;
        const std::size_t fields = 8;
        for (std::size_t f = 0; f < fields; ++f) {
          reference.push_back(
              {static_cast<std::uint32_t>(f + 1), MakeText(rep / fields, rng)});
        }
        const std::size_t copies =
            cold ? std::max<std::size_t>(2, opts.arena_bytes / 2 / rep) : 1;
        w.msgs.assign(copies, reference);
        w.op_bytes = WireSerializer::EncodedSize(reference);
        w.slots.assign(copies, 0);  // cursor domain
        break;
      }
      case TaxKernel::kParse: {
        WireMessage reference;
        const std::size_t fields = 8;
        for (std::size_t f = 0; f < fields; ++f) {
          reference.push_back(
              {static_cast<std::uint32_t>(f + 1), MakeText(rep / fields, rng)});
        }
        std::string encoded;
        WireSerializer(SoftPrefetchConfig::Disabled())
            .Serialize(reference, &encoded);
        FillByteSlots(w, encoded, cold, rng);
        w.op_bytes = encoded.size();
        break;
      }
      case TaxKernel::kVarintEncode: {
        std::vector<std::uint64_t> values(rep / 8);
        // Spread over 1..10-byte encodings.
        for (auto& v : values) v = rng.NextU64() >> rng.NextBounded(57);
        FillU64Slots(w, values, cold, /*distinct_slots=*/false, rng, 0, 1);
        w.out.reserve(VarintStreamSize(values.data(), values.size()) + 16);
        w.op_bytes = rep;
        break;
      }
      case TaxKernel::kVarintDecode: {
        std::vector<std::uint64_t> values(rep / 8);
        for (auto& v : values) v = rng.NextU64() >> rng.NextBounded(57);
        std::string encoded;
        VarintEncodeStream(values.data(), values.size(), &encoded);
        FillByteSlots(w, encoded, cold, rng);
        w.out_u64.reserve(values.size() + 16);
        w.op_bytes = encoded.size();
        break;
      }
      case TaxKernel::kDictCompress: {
        Rng dict_rng = rng.Fork(0xd1c7);
        w.dict = std::make_unique<DictCompressor>(
            MakeText(64 * kKiB, dict_rng));
        // Payload: mostly substrings of the dictionary (dictionary hits)
        // plus fresh text, the small-RPC shape dictionary codecs target.
        const std::string& dict = w.dict->dictionary();
        std::string payload;
        payload.reserve(rep + 80);
        while (payload.size() < rep) {
          if (rng.NextBernoulli(0.8)) {
            const std::size_t len = 16 + rng.NextBounded(49);
            const std::size_t pos = rng.NextBounded(dict.size() - len);
            payload.append(dict, pos, len);
          } else {
            payload += MakeText(24, rng);
          }
        }
        payload.resize(rep);
        FillByteSlots(w, payload, cold, rng);
        w.op_bytes = rep;
        break;
      }
      case TaxKernel::kDictDecompress: {
        Rng dict_rng = rng.Fork(0xd1c7);
        w.dict = std::make_unique<DictCompressor>(
            MakeText(64 * kKiB, dict_rng));
        const std::string& dict = w.dict->dictionary();
        std::string payload;
        payload.reserve(rep + 80);
        while (payload.size() < rep) {
          if (rng.NextBernoulli(0.8)) {
            const std::size_t len = 16 + rng.NextBounded(49);
            const std::size_t pos = rng.NextBounded(dict.size() - len);
            payload.append(dict, pos, len);
          } else {
            payload += MakeText(24, rng);
          }
        }
        payload.resize(rep);
        std::string compressed;
        w.dict->Compress(payload, SoftPrefetchConfig::Disabled(), &compressed);
        FillByteSlots(w, compressed, cold, rng);
        w.op_bytes = compressed.size();
        break;
      }
      case TaxKernel::kHashJoinBuild: {
        // Slots carry fresh (keys, values) build inputs of rep bytes.
        const std::size_t n = rep / 16;
        std::vector<std::uint64_t> payload(2 * n);
        for (std::size_t j = 0; j < n; ++j) {
          payload[j] = rng.NextU64();
          payload[n + j] = j;
        }
        FillU64Slots(w, payload, cold, /*distinct_slots=*/false, rng, 0, 1);
        w.op_bytes = rep;
        break;
      }
      case TaxKernel::kHashJoinProbe: {
        // Build side scaled by class so the chain walk misses further down
        // the hierarchy as the class grows. The large class stops at ~224MB
        // (8M entries + buckets): big enough that probes miss to DRAM under
        // the arena's streaming pressure, small enough that its page tables
        // stay cache-resident — beyond that this host is page-walker-bound
        // (no usable THP) and no prefetch choice changes anything.
        const std::size_t base_entries =
            size_class >= 3 ? (std::size_t{1} << 23)
                            : size_class == 2 ? (std::size_t{1} << 21)
                                              : (std::size_t{1} << 18);
        std::size_t entries = std::max<std::size_t>(
            1024,
            static_cast<std::size_t>(static_cast<double>(base_entries) *
                                     opts.join_footprint_scale));
        const std::uint64_t universe_seed = opts.seed ^ 0x10b5;
        std::vector<std::uint64_t> keys(entries);
        std::vector<std::uint64_t> values(entries);
        for (std::size_t j = 0; j < entries; ++j) {
          keys[j] = JoinKeyAt(universe_seed, j);
          values[j] = j;
        }
        w.join.Build(keys.data(), values.data(), entries);
        // Probe keys: fresh random draws per slot from twice the build
        // universe (~50% hit rate).
        const std::size_t n_probe = rep / 8;
        std::vector<std::uint64_t> dummy(n_probe);
        FillU64Slots(w, dummy, cold, /*distinct_slots=*/true, rng,
                     universe_seed, 2 * entries);
        w.out_sums.assign(n_probe, 0);
        w.op_bytes = rep;
        break;
      }
    }
  }

  void RunOp(Workload& w, TaxKernel kernel, const SoftPrefetchConfig& config) {
    switch (kernel) {
      case TaxKernel::kMemcpy: {
        const char* in = w.arena.data() + NextByteSlot(w);
        PrefetchingMemcpy(w.dst.data(), in, w.slot_payload, config);
        break;
      }
      case TaxKernel::kMemmove: {
        char* in = w.arena.data() + NextByteSlot(w);
        PrefetchingMemmove(in + 64, in, w.slot_payload - 64, config);
        break;
      }
      case TaxKernel::kMemset: {
        char* in = w.arena.data() + NextByteSlot(w);
        PrefetchingMemset(in, 0xab, w.slot_payload, config);
        break;
      }
      case TaxKernel::kBlockHash: {
        const char* in = w.arena.data() + NextByteSlot(w);
        g_probe_sink ^= BlockHash64(in, w.slot_payload, 0, config);
        break;
      }
      case TaxKernel::kCrc32c: {
        const char* in = w.arena.data() + NextByteSlot(w);
        g_probe_sink ^= Crc32c(in, w.slot_payload, config);
        break;
      }
      case TaxKernel::kCompress: {
        const char* in = w.arena.data() + NextByteSlot(w);
        BlockCompressor(config).Compress({in, w.slot_payload}, &w.out);
        break;
      }
      case TaxKernel::kDecompress: {
        const char* in = w.arena.data() + NextByteSlot(w);
        BlockCompressor(config).Decompress({in, w.slot_payload}, &w.out);
        break;
      }
      case TaxKernel::kSerialize: {
        const WireMessage& msg = w.msgs[w.cursor++ % w.msgs.size()];
        WireSerializer(config).Serialize(msg, &w.out);
        break;
      }
      case TaxKernel::kParse: {
        const char* in = w.arena.data() + NextByteSlot(w);
        WireSerializer(config).Parse({in, w.slot_payload}, &w.msg_out);
        break;
      }
      case TaxKernel::kVarintEncode: {
        const std::uint64_t* in = w.u64_arena.data() + NextU64Slot(w);
        VarintEncodeStream(in, w.u64_per_slot, config, &w.out);
        break;
      }
      case TaxKernel::kVarintDecode: {
        const char* in = w.arena.data() + NextByteSlot(w);
        VarintDecodeStream({in, w.slot_payload}, config, &w.out_u64);
        break;
      }
      case TaxKernel::kDictCompress: {
        const char* in = w.arena.data() + NextByteSlot(w);
        w.dict->Compress({in, w.slot_payload}, config, &w.out);
        break;
      }
      case TaxKernel::kDictDecompress: {
        const char* in = w.arena.data() + NextByteSlot(w);
        w.dict->Decompress({in, w.slot_payload}, config, &w.out);
        break;
      }
      case TaxKernel::kHashJoinBuild: {
        const std::uint64_t* in = w.u64_arena.data() + NextU64Slot(w);
        const std::size_t n = w.u64_per_slot / 2;
        w.join.Build(in, in + n, n, config);
        break;
      }
      case TaxKernel::kHashJoinProbe: {
        const std::uint64_t* in = w.u64_arena.data() + NextU64Slot(w);
        g_probe_sink ^= w.join.Probe(in, w.u64_per_slot,
                                     w.out_sums.data(), config);
        break;
      }
    }
  }

  std::size_t NextByteSlot(Workload& w) {
    return w.slots[w.cursor++ % w.slots.size()];
  }
  std::size_t NextU64Slot(Workload& w) {
    return w.u64_slots[w.cursor++ % w.u64_slots.size()];
  }
};

MeasuredProbe::MeasuredProbe(MeasuredProbeOptions options)
    : impl_(std::make_unique<Impl>(options)) {}

MeasuredProbe::~MeasuredProbe() = default;

double MeasuredProbe::Measure(TaxKernel kernel, int size_class,
                              const SoftPrefetchConfig& config,
                              TuneRegime regime) {
  Impl::Workload& w = impl_->Get(kernel, size_class, regime);
  impl_->RunOp(w, kernel, config);  // warm code paths / page-in
  double best_mbps = 0.0;
  const double budget_s = impl_->opts.budget_ms / 1e3;
  for (int rep = 0; rep < impl_->opts.reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t ops = 0;
    double elapsed = 0.0;
    do {
      impl_->RunOp(w, kernel, config);
      ++ops;
      elapsed = SecondsSince(t0);
    } while (elapsed < budget_s);
    const double mbps = static_cast<double>(ops * w.op_bytes) /
                        (elapsed * 1e6);
    best_mbps = std::max(best_mbps, mbps);
  }
  return best_mbps;
}

// ---------------------------------------------------------------------------
// Sweep logic.

TunedCell SweepCell(ThroughputProbe& probe, TaxKernel kernel, int size_class,
                    TuneRegime regime,
                    const SoftPrefetchConfig& default_config,
                    const TunerGrid& grid) {
  TunedCell cell;
  cell.kernel = kernel;
  cell.size_class = size_class;
  cell.regime = regime;

  const std::uint64_t min_size = MinSizeForClass(size_class);
  cell.untuned_mbps =
      probe.Measure(kernel, size_class, SoftPrefetchConfig::Disabled(),
                    regime);

  SoftPrefetchConfig def = default_config;
  def.min_size_bytes = min_size;
  cell.default_mbps = probe.Measure(kernel, size_class, def, regime);

  SoftPrefetchConfig best = def;
  double best_mbps = cell.default_mbps;

  // Distance sweep at the pivot degree/locality (Fig. 15a).
  for (const std::uint32_t distance : grid.distances) {
    SoftPrefetchConfig candidate;
    candidate.distance_bytes = distance;
    candidate.degree_bytes = grid.pivot_degree;
    candidate.min_size_bytes = min_size;
    candidate.locality = grid.pivot_locality;
    const double mbps = probe.Measure(kernel, size_class, candidate, regime);
    if (mbps > best_mbps) {
      best = candidate;
      best_mbps = mbps;
    }
  }
  // Degree sweep at the best distance (Fig. 15b).
  for (const std::uint32_t degree : grid.degrees) {
    if (degree == best.degree_bytes) continue;
    SoftPrefetchConfig candidate = best;
    candidate.degree_bytes = degree;
    const double mbps = probe.Measure(kernel, size_class, candidate, regime);
    if (mbps > best_mbps) {
      best = candidate;
      best_mbps = mbps;
    }
  }
  // Locality sweep at the best distance/degree (third axis).
  for (const std::uint8_t locality : grid.localities) {
    if (locality == best.locality) continue;
    SoftPrefetchConfig candidate = best;
    candidate.locality = locality;
    const double mbps = probe.Measure(kernel, size_class, candidate, regime);
    if (mbps > best_mbps) {
      best = candidate;
      best_mbps = mbps;
    }
  }

  // Hysteresis: ship prefetching only when it clearly beats off.
  if (best_mbps < grid.min_gain * cell.untuned_mbps) {
    best = SoftPrefetchConfig::Disabled();
    best_mbps = cell.untuned_mbps;
  }
  cell.best = best;
  cell.tuned_mbps = best_mbps;
  cell.speedup = cell.untuned_mbps > 0.0 ? best_mbps / cell.untuned_mbps
                                         : 1.0;
  return cell;
}

TunerReport RunTunerSweep(ThroughputProbe& probe, const TunerGrid& grid,
                          const std::vector<TuneRegime>& regimes,
                          const PrefetchSiteRegistry& registry,
                          const std::vector<TaxKernel>& only) {
  TunerReport report;
  for (int k = 0; k < kNumTaxKernels; ++k) {
    const TaxKernel kernel = TaxKernelAt(k);
    if (!only.empty() &&
        std::find(only.begin(), only.end(), kernel) == only.end()) {
      continue;
    }
    for (int sc = kFirstTunedSizeClass; sc < kNumSizeClasses; ++sc) {
      const auto default_config =
          registry.Lookup(TaxKernelSiteName(kernel), kSizeClassRepBytes[sc]);
      for (const TuneRegime regime : regimes) {
        report.cells.push_back(SweepCell(
            probe, kernel, sc, regime,
            default_config.value_or(SoftPrefetchConfig::DeployedDefault()),
            grid));
      }
    }
  }
  report.geomean_speedup_hw_off =
      GeomeanSpeedup(report.cells, TuneRegime::kHwOffEmulated);
  report.geomean_speedup_hw_on =
      GeomeanSpeedup(report.cells, TuneRegime::kHwOn);
  return report;
}

double GeomeanSpeedup(const std::vector<TunedCell>& cells,
                      TuneRegime regime) {
  double log_sum = 0.0;
  int count = 0;
  for (const TunedCell& cell : cells) {
    if (cell.regime != regime || cell.speedup <= 0.0) continue;
    log_sum += std::log(cell.speedup);
    ++count;
  }
  return count > 0 ? std::exp(log_sum / count) : 1.0;
}

std::vector<TunedParam> SelectTunedParams(const TunerReport& report) {
  std::vector<TunedParam> params;
  for (const TunedCell& cell : report.cells) {
    if (cell.regime != TuneRegime::kHwOffEmulated) continue;
    params.push_back({cell.kernel, cell.size_class, cell.best,
                      static_cast<float>(cell.untuned_mbps),
                      static_cast<float>(cell.tuned_mbps)});
  }
  return params;
}

namespace {

const char* TaxKernelEnumName(TaxKernel kernel) {
  switch (kernel) {
    case TaxKernel::kMemcpy: return "kMemcpy";
    case TaxKernel::kMemmove: return "kMemmove";
    case TaxKernel::kMemset: return "kMemset";
    case TaxKernel::kBlockHash: return "kBlockHash";
    case TaxKernel::kCrc32c: return "kCrc32c";
    case TaxKernel::kCompress: return "kCompress";
    case TaxKernel::kDecompress: return "kDecompress";
    case TaxKernel::kSerialize: return "kSerialize";
    case TaxKernel::kParse: return "kParse";
    case TaxKernel::kVarintEncode: return "kVarintEncode";
    case TaxKernel::kVarintDecode: return "kVarintDecode";
    case TaxKernel::kDictCompress: return "kDictCompress";
    case TaxKernel::kDictDecompress: return "kDictDecompress";
    case TaxKernel::kHashJoinBuild: return "kHashJoinBuild";
    case TaxKernel::kHashJoinProbe: return "kHashJoinProbe";
  }
  return "kMemcpy";
}

}  // namespace

std::string EmitTunedParamsCc(const std::vector<TunedParam>& params) {
  std::string out;
  out +=
      "// Generated by `bench_tax_tuner --emit-params`; do not edit by "
      "hand.\n"
      "// Config columns: {enabled, distance_bytes, degree_bytes, "
      "min_size_bytes,\n"
      "// locality}. Size classes: 1 = small (4K..64K), 2 = medium "
      "(64K..1M),\n"
      "// 3 = large (>= 1M). Throughputs are MB/s in the "
      "hw-prefetchers-off\n"
      "// (cold, page-scattered) regime on the tuning host; zero means "
      "the entry\n"
      "// is hand-seeded from the registry defaults and not yet "
      "measured.\n"
      "#include \"tax/tuned_params.h\"\n\n"
      "#include \"softpf/runtime.h\"\n"
      "#include \"softpf/size_class.h\"\n\n"
      "namespace limoncello {\n\n"
      "namespace {\n\n"
      "constexpr TunedParam kTunedParams[] = {\n";
  char line[256];
  for (const TunedParam& p : params) {
    std::snprintf(
        line, sizeof(line),
        "    {TaxKernel::%s, %d, {%s, %u, %u, %llu, %u}, %.1ff, %.1ff},\n",
        TaxKernelEnumName(p.kernel), p.size_class,
        p.config.enabled ? "true" : "false", p.config.distance_bytes,
        p.config.degree_bytes,
        static_cast<unsigned long long>(p.config.min_size_bytes),
        static_cast<unsigned>(p.config.locality),
        static_cast<double>(p.untuned_mbps),
        static_cast<double>(p.tuned_mbps));
    out += line;
  }
  out +=
      "};\n\n"
      "}  // namespace\n\n"
      "const TunedParam* TunedParamsBegin() { return kTunedParams; }\n\n"
      "std::size_t TunedParamsCount() {\n"
      "  return sizeof(kTunedParams) / sizeof(kTunedParams[0]);\n"
      "}\n\n"
      "void ApplyTunedParams(PrefetchSiteRegistry* registry) {\n"
      "  const TunedParam* params = TunedParamsBegin();\n"
      "  const std::size_t count = TunedParamsCount();\n"
      "  for (std::size_t i = 0; i < count;) {\n"
      "    const TaxKernel kernel = params[i].kernel;\n"
      "    const char* site = TaxKernelSiteName(kernel);\n"
      "    SizeClassConfigs table;\n"
      "    if (const SizeClassConfigs* existing = "
      "registry->LookupTable(site)) {\n"
      "      table = *existing;\n"
      "    } else {\n"
      "      table.fill(SoftPrefetchConfig::Disabled());\n"
      "    }\n"
      "    for (; i < count && params[i].kernel == kernel; ++i) {\n"
      "      const int sc = params[i].size_class;\n"
      "      if (sc < kFirstTunedSizeClass || sc >= kNumSizeClasses) "
      "continue;\n"
      "      table[static_cast<std::size_t>(sc)] = params[i].config;\n"
      "    }\n"
      "    registry->RegisterTable(site, table);\n"
      "  }\n"
      "}\n\n"
      "bool InstallTunedParams() {\n"
      "  SoftPrefetchRuntime& runtime = SoftPrefetchRuntime::Global();\n"
      "  ApplyTunedParams(&runtime.registry());\n"
      "  runtime.RebuildFastPath();\n"
      "  return true;\n"
      "}\n\n"
      "}  // namespace limoncello\n";
  return out;
}

}  // namespace limoncello
