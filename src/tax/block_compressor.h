// LZ-class block compressor — the "compression" tax category.
//
// A real greedy LZ77 codec (4-byte hash-table match finder, literal/match
// token stream, varint lengths) in the spirit of Snappy/LZ4: optimized for
// speed, streaming through input and output buffers — exactly the access
// shape paper §4.1 calls prefetch-friendly. Both directions optionally
// prefetch the input stream at the configured distance/degree.
#ifndef LIMONCELLO_TAX_BLOCK_COMPRESSOR_H_
#define LIMONCELLO_TAX_BLOCK_COMPRESSOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "softpf/soft_prefetch_config.h"

namespace limoncello {

class BlockCompressor {
 public:
  explicit BlockCompressor(
      const SoftPrefetchConfig& config = SoftPrefetchConfig::Disabled())
      : config_(config) {}

  // Compresses `input`, appending to *output (cleared first).
  void Compress(std::string_view input, std::string* output) const;

  // Decompresses; returns false on malformed input (never reads out of
  // bounds, never writes beyond the encoded uncompressed size).
  bool Decompress(std::string_view compressed, std::string* output) const;

  // Upper bound on compressed size for buffer sizing.
  static std::size_t MaxCompressedSize(std::size_t input_size);

 private:
  SoftPrefetchConfig config_;
};

// Varint helpers shared with the wire serializer (little-endian base-128).
void AppendVarint(std::uint64_t value, std::string* out);
// Returns bytes consumed, 0 on malformed/truncated input.
std::size_t ParseVarint(std::string_view in, std::uint64_t* value);

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_BLOCK_COMPRESSOR_H_
