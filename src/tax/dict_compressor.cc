#include "tax/dict_compressor.h"

#include <cstring>

#include "softpf/prefetch.h"
#include "tax/block_compressor.h"  // varint helpers
#include "util/check.h"

namespace limoncello {

namespace {

constexpr int kHashBits = 15;
constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1 << 16;
constexpr int kMaxChainDepth = 16;

constexpr std::uint8_t kLiteralTag = 0x00;
constexpr std::uint8_t kMatchTag = 0x01;

inline std::uint32_t Load32(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline std::uint32_t Hash4(const char* p) {
  return (Load32(p) * 0x9e3779b1u) >> (32 - kHashBits);
}

// Token emission appends into the reserved, caller-reused output buffer;
// growth is amortized and free at steady capacity.
void EmitLiterals(const char* begin, std::size_t len, std::string* out) {
  if (len == 0) return;
  out->push_back(static_cast<char>(kLiteralTag));  // limolint:allow(hot-path-alloc)
  AppendVarint(len, out);
  out->append(begin, len);  // limolint:allow(hot-path-alloc)
}

void EmitMatch(std::size_t offset, std::size_t len, std::string* out) {
  out->push_back(static_cast<char>(kMatchTag));  // limolint:allow(hot-path-alloc)
  AppendVarint(offset, out);
  AppendVarint(len, out);
}

}  // namespace

DictCompressor::DictCompressor(std::string_view dictionary) {
  if (dictionary.size() > kMaxDictionaryBytes) {
    dictionary.remove_prefix(dictionary.size() - kMaxDictionaryBytes);
  }
  dict_.assign(dictionary.data(), dictionary.size());
  InsertDictionary();
}

void DictCompressor::InsertDictionary() {
  dict_heads_.assign(1u << kHashBits, -1);
  dict_chain_prefix_ = dict_.size();
  chain_.assign(dict_.size(), -1);
  if (dict_.size() < kMinMatch) return;
  for (std::size_t pos = 0; pos + kMinMatch <= dict_.size(); ++pos) {
    const std::uint32_t h = Hash4(dict_.data() + pos);
    chain_[pos] = dict_heads_[h];
    dict_heads_[h] = static_cast<std::int32_t>(pos);
  }
}

// limolint:hot-path — datacenter-tax kernel; hash-chain match finder over
// the dictionary + window.
void DictCompressor::Compress(std::string_view input,
                              const SoftPrefetchConfig& config,
                              std::string* out) {
  // Virtual positions: [0, dict) is the dictionary, [dict, dict + input)
  // is the input as it is consumed. chain_ spans both.
  LIMONCELLO_CHECK_LE(input.size(), static_cast<std::size_t>(INT32_MAX) -
                                        dict_.size());
  out->clear();
  out->reserve(input.size() / 2 + 32);  // limolint:allow(hot-path-alloc)
  AppendVarint(input.size(), out);
  if (input.empty()) return;

  // Start the match finder from the dictionary-only snapshot (same-size
  // assign; scratch reuses capacity across calls).
  heads_ = dict_heads_;
  chain_.resize(dict_.size() + input.size());  // limolint:allow(hot-path-alloc)

  const char* const base = input.data();
  const char* const end = base + input.size();
  const std::size_t dict_size = dict_.size();
  const bool prefetch = config.AppliesTo(input.size());

  // Byte at a virtual position (dictionary or already-seen input).
  const auto byte_at = [&](std::size_t vpos) -> char {
    return vpos < dict_size ? dict_[vpos] : base[vpos - dict_size];
  };
  const auto ptr_at = [&](std::size_t vpos) -> const char* {
    return vpos < dict_size ? dict_.data() + vpos
                            : base + (vpos - dict_size);
  };

  const char* cursor = base;
  const char* literal_start = base;
  std::size_t since_prefetch = 0;

  while (cursor + kMinMatch <= end) {
    if (prefetch && since_prefetch >= config.degree_bytes) {
      PrefetchReadSpan(cursor + config.distance_bytes, config.degree_bytes,
                       end, config.locality);
      since_prefetch = 0;
    }
    const std::size_t vpos =
        dict_size + static_cast<std::size_t>(cursor - base);
    const std::uint32_t h = Hash4(cursor);
    const std::uint32_t first4 = Load32(cursor);

    // Walk the chain: newest candidate first, bounded depth. Candidate
    // lines are scattered across the window/dictionary — prefetch each
    // before touching it.
    std::size_t best_len = 0;
    std::size_t best_vpos = 0;
    std::int32_t candidate = heads_[h];
    const std::size_t max_len = std::min<std::size_t>(
        kMaxMatch, static_cast<std::size_t>(end - cursor));
    for (int depth = 0; candidate >= 0 && depth < kMaxChainDepth; ++depth) {
      const auto cpos = static_cast<std::size_t>(candidate);
      const std::int32_t next = chain_[cpos];
      if (prefetch && next >= 0) {
        PrefetchRead(ptr_at(static_cast<std::size_t>(next)),
                     config.locality);
      }
      if (Load32(ptr_at(cpos)) == first4) {
        std::size_t len = kMinMatch;
        while (len < max_len && byte_at(cpos + len) == cursor[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_vpos = cpos;
          if (len == max_len) break;
        }
      }
      candidate = next;
    }

    chain_[vpos] = heads_[h];
    heads_[h] = static_cast<std::int32_t>(vpos);

    if (best_len >= kMinMatch) {
      EmitLiterals(literal_start,
                   static_cast<std::size_t>(cursor - literal_start), out);
      EmitMatch(vpos - best_vpos, best_len, out);
      // Index positions inside the match sparsely for future references.
      for (std::size_t i = 1; i < best_len && cursor + i + kMinMatch <= end;
           i += 5) {
        const std::uint32_t hh = Hash4(cursor + i);
        chain_[vpos + i] = heads_[hh];
        heads_[hh] = static_cast<std::int32_t>(vpos + i);
      }
      cursor += best_len;
      since_prefetch += best_len;
      literal_start = cursor;
    } else {
      ++cursor;
      ++since_prefetch;
    }
  }
  EmitLiterals(literal_start, static_cast<std::size_t>(end - literal_start),
               out);
}

// limolint:hot-path — datacenter-tax kernel; match copies gather from
// scattered window/dictionary offsets.
bool DictCompressor::Decompress(std::string_view compressed,
                                const SoftPrefetchConfig& config,
                                std::string* out) const {
  out->clear();
  std::uint64_t uncompressed_size = 0;
  std::size_t consumed = ParseVarint(compressed, &uncompressed_size);
  if (consumed == 0) return false;
  if (uncompressed_size > (1ULL << 36)) return false;  // corrupt header
  compressed.remove_prefix(consumed);
  // Single reserve of the caller-reused output; free at steady capacity.
  out->reserve(uncompressed_size);  // limolint:allow(hot-path-alloc)

  const std::size_t dict_size = dict_.size();
  const bool prefetch = config.AppliesTo(compressed.size());
  std::size_t since_prefetch = 0;

  while (!compressed.empty()) {
    if (prefetch && since_prefetch >= config.degree_bytes) {
      PrefetchReadSpan(compressed.data(), config.degree_bytes,
                       compressed.data() + compressed.size(),
                       config.locality);
      since_prefetch = 0;
    }
    const auto tag = static_cast<std::uint8_t>(compressed[0]);
    compressed.remove_prefix(1);
    if (tag == kLiteralTag) {
      std::uint64_t len = 0;
      consumed = ParseVarint(compressed, &len);
      if (consumed == 0) return false;
      compressed.remove_prefix(consumed);
      if (len > compressed.size()) return false;
      if (out->size() + len > uncompressed_size) return false;
      out->append(compressed.data(), len);  // limolint:allow(hot-path-alloc)
      compressed.remove_prefix(len);
      since_prefetch += len;
    } else if (tag == kMatchTag) {
      std::uint64_t offset = 0;
      std::uint64_t len = 0;
      consumed = ParseVarint(compressed, &offset);
      if (consumed == 0) return false;
      compressed.remove_prefix(consumed);
      consumed = ParseVarint(compressed, &len);
      if (consumed == 0) return false;
      compressed.remove_prefix(consumed);
      if (offset == 0 || offset > out->size() + dict_size) return false;
      if (out->size() + len > uncompressed_size) return false;
      if (offset > out->size()) {
        // Source starts in the dictionary: copy the dictionary part (no
        // self-overlap possible there), then fall through to the window
        // part if the match runs past the dictionary end.
        std::size_t dict_src = dict_size - (offset - out->size());
        std::size_t from_dict =
            std::min<std::uint64_t>(len, dict_size - dict_src);
        if (prefetch) {
          PrefetchReadSpan(dict_.data() + dict_src,
                           static_cast<std::uint32_t>(std::min<std::size_t>(
                               from_dict, config.degree_bytes)),
                           dict_.data() + dict_size, config.locality);
        }
        out->append(dict_.data() + dict_src, from_dict);  // limolint:allow(hot-path-alloc)
        len -= from_dict;
        offset = out->size();  // continue right at the window start
      }
      if (len > 0) {
        // Byte-wise window copy: offsets smaller than len self-overlap.
        std::size_t src = out->size() - offset;
        if (prefetch) {
          PrefetchReadSpan(out->data() + src,
                           static_cast<std::uint32_t>(std::min<std::uint64_t>(
                               len, config.degree_bytes)),
                           out->data() + out->size(), config.locality);
        }
        for (std::uint64_t i = 0; i < len; ++i) {
          out->push_back((*out)[src + i]);  // limolint:allow(hot-path-alloc)
        }
      }
      since_prefetch += len;
    } else {
      return false;
    }
  }
  return out->size() == uncompressed_size;
}

}  // namespace limoncello
