// Hash-join-style bucketed probing — the third "hashing" tax kernel.
//
// Build: keys/values go into a bucketed table (power-of-two bucket array
// of chain heads, entries appended to flat arrays with next-links — the
// radix-free equi-join build side). Probe: each probe key hashes to a
// bucket and walks the chain summing matched values.
//
// Probing is the canonical software-prefetch workload: the bucket
// addresses are computable far ahead of their use, but the accesses are
// random, so hardware prefetchers cannot help — exactly the coverage gap
// Soft Limoncello fills while Hard Limoncello has the hardware prefetchers
// off. The probe loop runs a two-stage software pipeline: at
// `distance_bytes` of key-stream lookahead it prefetches the bucket head
// slot, at half that lookahead it prefetches the entry the head points to
// (degree_bytes controls how many entry arrays are covered).
#ifndef LIMONCELLO_TAX_HASH_JOIN_H_
#define LIMONCELLO_TAX_HASH_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "softpf/soft_prefetch_config.h"
#include "util/huge_page.h"

namespace limoncello {

class HashJoinTable {
 public:
  // Replaces the table contents with the given build side. Duplicate keys
  // are kept (multiset semantics). Steady-state zero-alloc when the
  // instance is reused with an equal-or-smaller build side.
  void Build(const std::uint64_t* keys, const std::uint64_t* values,
             std::size_t n, const SoftPrefetchConfig& config);
  void Build(const std::uint64_t* keys, const std::uint64_t* values,
             std::size_t n) {
    Build(keys, values, n, SoftPrefetchConfig::Disabled());
  }

  // For each probe key i, writes the sum of values of matching build
  // entries to out_sums[i] (0 when unmatched) and returns the total number
  // of matching entries. out_sums must hold n elements. Never allocates.
  std::uint64_t Probe(const std::uint64_t* keys, std::size_t n,
                      std::uint64_t* out_sums,
                      const SoftPrefetchConfig& config) const;
  std::uint64_t Probe(const std::uint64_t* keys, std::size_t n,
                      std::uint64_t* out_sums) const {
    return Probe(keys, n, out_sums, SoftPrefetchConfig::Disabled());
  }

  std::size_t size() const { return keys_.size(); }
  std::size_t bucket_count() const { return heads_.size(); }
  // Approximate resident bytes (for sizing tuning working sets).
  std::size_t FootprintBytes() const {
    return heads_.size() * sizeof(std::int32_t) +
           keys_.size() * (2 * sizeof(std::uint64_t) +
                           sizeof(std::int32_t));
  }

 private:
  // Hugepage-backed storage: at fleet-realistic sizes the probe addresses
  // would otherwise miss the DTLB on every access, which both serializes
  // the walk and drops the inserted prefetches (see util/huge_page.h).
  template <typename T>
  using TableVector = std::vector<T, HugePageAllocator<T>>;

  TableVector<std::int32_t> heads_;  // bucket -> newest entry index, -1 end
  TableVector<std::int32_t> next_;   // entry -> older entry in bucket
  TableVector<std::uint64_t> keys_;
  TableVector<std::uint64_t> values_;
  std::uint64_t bucket_mask_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_HASH_JOIN_H_
