// Wire serializer — the "data transmission" tax category.
//
// A protobuf-flavoured length-delimited format: messages are sequences of
// (field number, payload) pairs, each encoded as varint key, varint
// length, raw bytes. Serialization and parsing stream through contiguous
// buffers, the access shape §4.1 identifies as prefetch-friendly; large
// payload copies are prefetched per the configured policy.
#ifndef LIMONCELLO_TAX_WIRE_SERIALIZER_H_
#define LIMONCELLO_TAX_WIRE_SERIALIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "softpf/soft_prefetch_config.h"

namespace limoncello {

struct WireField {
  std::uint32_t field_number = 0;
  std::string payload;

  bool operator==(const WireField&) const = default;
};

using WireMessage = std::vector<WireField>;

class WireSerializer {
 public:
  explicit WireSerializer(
      const SoftPrefetchConfig& config = SoftPrefetchConfig::Disabled())
      : config_(config) {}

  // Appends the encoded message to *out (cleared first).
  void Serialize(const WireMessage& message, std::string* out) const;

  // Parses an encoded message; false on malformed input.
  bool Parse(std::string_view data, WireMessage* message) const;

  // Encoded size without producing the bytes (for buffer sizing).
  static std::size_t EncodedSize(const WireMessage& message);

 private:
  SoftPrefetchConfig config_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_WIRE_SERIALIZER_H_
