#include "tax/varint_codec.h"

#include "softpf/prefetch.h"

namespace limoncello {

std::size_t VarintSizeOf(std::uint64_t value) {
#if defined(__GNUC__) || defined(__clang__)
  // Branch-free: a value with b significant bits needs ceil(b / 7) bytes.
  // (value | 1) pins zero to one significant bit. The multiply-shift is
  // ceil division by 7 for the 1..64 range.
  const int bits = 64 - __builtin_clzll(value | 1);
  return static_cast<std::size_t>((bits * 9 + 64) >> 6);
#else
  std::size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
#endif
}

// limolint:hot-path — datacenter-tax kernel; pure arithmetic over the
// value array.
std::size_t VarintStreamSize(const std::uint64_t* values,
                             std::size_t count) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < count; ++i) total += VarintSizeOf(values[i]);
  return total;
}

// limolint:hot-path — datacenter-tax kernel; raw-pointer encode into a
// pre-sized buffer.
void VarintEncodeStream(const std::uint64_t* values, std::size_t count,
                        const SoftPrefetchConfig& config, std::string* out) {
  const std::size_t input_bytes = count * sizeof(std::uint64_t);
  const bool prefetch = config.AppliesTo(input_bytes);
  const char* const src = reinterpret_cast<const char*>(values);
  const char* const src_end = src + input_bytes;

  // Exact-size pass first so the encode loop writes through a raw cursor
  // (no per-byte append; at steady capacity the resize is free). This
  // pass is the one that streams the cold input — the encode pass below
  // revisits it cache-warm — so the software prefetches belong here.
  std::size_t total = 0;
  std::size_t next_prefetch = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (prefetch && i * sizeof(std::uint64_t) >= next_prefetch) {
      PrefetchReadSpan(src + i * sizeof(std::uint64_t) +
                           config.distance_bytes,
                       config.degree_bytes, src_end, config.locality);
      next_prefetch = i * sizeof(std::uint64_t) + config.degree_bytes;
    }
    total += VarintSizeOf(values[i]);
  }
  out->resize(total);  // limolint:allow(hot-path-alloc) — caller-reused
  char* cursor = out->data();

  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t v = values[i];
    while (v >= 0x80) {
      *cursor++ = static_cast<char>((v & 0x7f) | 0x80);
      v >>= 7;
    }
    *cursor++ = static_cast<char>(v);
  }
}

// limolint:hot-path — datacenter-tax kernel; streams the byte buffer.
bool VarintDecodeStream(std::string_view in,
                        const SoftPrefetchConfig& config,
                        std::vector<std::uint64_t>* out) {
  out->clear();
  // A varint is at most 10 bytes, so the stream holds at least size/10
  // values; reserving input/2 (typical small values are 1-2 bytes) keeps
  // early growth rare without overshooting wildly.
  out->reserve(in.size() / 2 + 1);  // limolint:allow(hot-path-alloc)

  const bool prefetch = config.AppliesTo(in.size());
  const char* const base = in.data();
  const char* const end = base + in.size();
  const char* p = base;
  std::size_t next_prefetch = 0;
  while (p < end) {
    if (prefetch &&
        static_cast<std::size_t>(p - base) >= next_prefetch) {
      PrefetchReadSpan(p + config.distance_bytes, config.degree_bytes, end,
                       config.locality);
      next_prefetch =
          static_cast<std::size_t>(p - base) + config.degree_bytes;
    }
    std::uint64_t result = 0;
    int shift = 0;
    bool done = false;
    // Fast path: single-byte varint (the common case for field keys and
    // small scalars).
    std::uint8_t byte = static_cast<std::uint8_t>(*p++);
    if ((byte & 0x80) == 0) {
      result = byte;
      done = true;
    } else {
      result = byte & 0x7f;
      shift = 7;
      while (p < end && shift < 63) {
        byte = static_cast<std::uint8_t>(*p++);
        result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
        shift += 7;
        if ((byte & 0x80) == 0) {
          done = true;
          break;
        }
      }
      if (!done && p < end && shift == 63) {
        // 10th byte: only its low bit fits in a uint64; anything else is
        // an over-long encoding.
        byte = static_cast<std::uint8_t>(*p++);
        if ((byte & 0x80) != 0 || byte > 1) return false;
        result |= static_cast<std::uint64_t>(byte) << 63;
        done = true;
      }
    }
    if (!done) return false;  // truncated mid-varint
    out->push_back(result);  // limolint:allow(hot-path-alloc) — reserved above
  }
  return true;
}

}  // namespace limoncello
