// The committed per-kernel tuned prefetch parameter table.
//
// The autotuner (tax/tax_tuner.h, driven by bench_tax_tuner) sweeps
// distance/degree/locality per kernel x size class against the self-timer
// and emits this table; the Adaptive* entry points install it into the
// global SoftPrefetchRuntime on first use, so every adaptive call runs
// with host-tuned parameters rather than the paper's one-size deployment
// compromise. Regenerate with `bench_tax_tuner --emit-params`.
#ifndef LIMONCELLO_TAX_TUNED_PARAMS_H_
#define LIMONCELLO_TAX_TUNED_PARAMS_H_

#include <cstddef>

#include "softpf/prefetch_site_registry.h"
#include "softpf/soft_prefetch_config.h"
#include "softpf/tax_kernel.h"

namespace limoncello {

struct TunedParam {
  TaxKernel kernel;
  int size_class;  // kFirstTunedSizeClass .. kNumSizeClasses - 1
  SoftPrefetchConfig config;
  // Throughput the tuner measured for this cell in the
  // hardware-prefetchers-off regime (MB/s); zero for hand-seeded entries.
  float untuned_mbps;
  float tuned_mbps;
};

// The committed table, in (kernel, size_class) order.
const TunedParam* TunedParamsBegin();
std::size_t TunedParamsCount();

// Overwrites the registry's per-size-class entries for every kernel the
// tuned table covers. Size classes the table does not mention keep their
// registry values; the tiny class stays disabled.
void ApplyTunedParams(PrefetchSiteRegistry* registry);

// Applies the tuned table to the global runtime's registry and rebuilds
// its fast path. Runs once per process (idempotent; thread-safe when
// reached through a magic static, as the Adaptive* wrappers do).
bool InstallTunedParams();

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_TUNED_PARAMS_H_
