// Adaptive tax-function entry points: the drop-in wrappers applications
// link against. Each call consults the global SoftPrefetchRuntime through
// the enum-indexed fast path (no strings, no map, no allocation), so
// software prefetching switches on exactly when the Limoncello daemon
// disables the hardware prefetchers (and off again when they return) —
// the full hardware/software collaboration loop of the paper. The first
// adaptive call installs the committed tuned parameter table
// (tax/tuned_params.h) into the runtime, so every call after that runs
// with host-tuned per-size-class parameters.
//
// Steady-state allocation contract: with caller-reused output buffers (and
// kernel instances where the API takes one), none of these entry points
// allocate — bench_tax_tuner --gate enforces this with a counting
// operator new.
#ifndef LIMONCELLO_TAX_ADAPTIVE_H_
#define LIMONCELLO_TAX_ADAPTIVE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tax/dict_compressor.h"
#include "tax/hash_join.h"
#include "tax/wire_serializer.h"

namespace limoncello {

void* AdaptiveMemcpy(void* dst, const void* src, std::size_t n);
void* AdaptiveMemmove(void* dst, const void* src, std::size_t n);
void* AdaptiveMemset(void* dst, int value, std::size_t n);

std::uint64_t AdaptiveBlockHash64(const void* data, std::size_t n,
                                  std::uint64_t seed = 0);
std::uint32_t AdaptiveCrc32c(const void* data, std::size_t n);

// Block codec (snappy-shaped); config resolved per call from input size.
void AdaptiveCompress(std::string_view input, std::string* output);
bool AdaptiveDecompress(std::string_view compressed, std::string* output);

// Wire serializer (protobuf-shaped length-delimited messages).
void AdaptiveWireSerialize(const WireMessage& message, std::string* out);
bool AdaptiveWireParse(std::string_view data, WireMessage* message);

// Varint stream codec.
void AdaptiveVarintEncode(const std::uint64_t* values, std::size_t count,
                          std::string* out);
bool AdaptiveVarintDecode(std::string_view in,
                          std::vector<std::uint64_t>* out);

// Dictionary codec / hash join operate on a caller-owned instance (the
// dictionary and table are per-use-site state, not process globals).
void AdaptiveDictCompress(DictCompressor& codec, std::string_view input,
                          std::string* out);
bool AdaptiveDictDecompress(const DictCompressor& codec,
                            std::string_view compressed, std::string* out);
void AdaptiveHashJoinBuild(HashJoinTable& table, const std::uint64_t* keys,
                           const std::uint64_t* values, std::size_t n);
std::uint64_t AdaptiveHashJoinProbe(const HashJoinTable& table,
                                    const std::uint64_t* keys, std::size_t n,
                                    std::uint64_t* out_sums);

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_ADAPTIVE_H_
