// Adaptive tax-function entry points: the drop-in wrappers applications
// link against. Each call consults the global SoftPrefetchRuntime, so
// software prefetching switches on exactly when the Limoncello daemon
// disables the hardware prefetchers (and off again when they return) —
// the full hardware/software collaboration loop of the paper.
#ifndef LIMONCELLO_TAX_ADAPTIVE_H_
#define LIMONCELLO_TAX_ADAPTIVE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace limoncello {

void* AdaptiveMemcpy(void* dst, const void* src, std::size_t n);
void* AdaptiveMemmove(void* dst, const void* src, std::size_t n);
void* AdaptiveMemset(void* dst, int value, std::size_t n);

std::uint64_t AdaptiveBlockHash64(const void* data, std::size_t n,
                                  std::uint64_t seed = 0);
std::uint32_t AdaptiveCrc32c(const void* data, std::size_t n);

// Compression/serialization take their config per call internally.
void AdaptiveCompress(std::string_view input, std::string* output);
bool AdaptiveDecompress(std::string_view compressed, std::string* output);

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_ADAPTIVE_H_
