#include "tax/adaptive.h"

#include "softpf/runtime.h"
#include "tax/block_compressor.h"
#include "tax/block_hash.h"
#include "tax/prefetching_memcpy.h"

namespace limoncello {

namespace {

SoftPrefetchConfig ConfigFor(const char* site, std::size_t n) {
  return SoftPrefetchRuntime::Global().ConfigFor(site, n);
}

}  // namespace

void* AdaptiveMemcpy(void* dst, const void* src, std::size_t n) {
  return PrefetchingMemcpy(dst, src, n, ConfigFor("memcpy", n));
}

void* AdaptiveMemmove(void* dst, const void* src, std::size_t n) {
  return PrefetchingMemmove(dst, src, n, ConfigFor("memmove", n));
}

void* AdaptiveMemset(void* dst, int value, std::size_t n) {
  return PrefetchingMemset(dst, value, n, ConfigFor("memset", n));
}

std::uint64_t AdaptiveBlockHash64(const void* data, std::size_t n,
                                  std::uint64_t seed) {
  return BlockHash64(data, n, seed, ConfigFor("fingerprint2011", n));
}

std::uint32_t AdaptiveCrc32c(const void* data, std::size_t n) {
  return Crc32c(data, n, ConfigFor("crc32c", n));
}

void AdaptiveCompress(std::string_view input, std::string* output) {
  const BlockCompressor codec(
      ConfigFor("snappy_compress", input.size()));
  codec.Compress(input, output);
}

bool AdaptiveDecompress(std::string_view compressed, std::string* output) {
  const BlockCompressor codec(
      ConfigFor("snappy_uncompress", compressed.size()));
  return codec.Decompress(compressed, output);
}

}  // namespace limoncello
