#include "tax/adaptive.h"

#include "softpf/runtime.h"
#include "softpf/tax_kernel.h"
#include "tax/block_compressor.h"
#include "tax/block_hash.h"
#include "tax/prefetching_memcpy.h"
#include "tax/tuned_params.h"
#include "tax/varint_codec.h"

namespace limoncello {

namespace {

// limolint:hot-path — per-call config lookup for every adaptive wrapper.
SoftPrefetchConfig ConfigFor(TaxKernel kernel, std::size_t n) {
  // First adaptive call anywhere installs the committed tuned table
  // (thread-safe magic static; a handful of instructions afterwards).
  static const bool installed = InstallTunedParams();
  (void)installed;
  return SoftPrefetchRuntime::Global().ConfigFor(kernel, n);
}

}  // namespace

void* AdaptiveMemcpy(void* dst, const void* src, std::size_t n) {
  return PrefetchingMemcpy(dst, src, n, ConfigFor(TaxKernel::kMemcpy, n));
}

void* AdaptiveMemmove(void* dst, const void* src, std::size_t n) {
  return PrefetchingMemmove(dst, src, n, ConfigFor(TaxKernel::kMemmove, n));
}

void* AdaptiveMemset(void* dst, int value, std::size_t n) {
  return PrefetchingMemset(dst, value, n, ConfigFor(TaxKernel::kMemset, n));
}

std::uint64_t AdaptiveBlockHash64(const void* data, std::size_t n,
                                  std::uint64_t seed) {
  return BlockHash64(data, n, seed, ConfigFor(TaxKernel::kBlockHash, n));
}

std::uint32_t AdaptiveCrc32c(const void* data, std::size_t n) {
  return Crc32c(data, n, ConfigFor(TaxKernel::kCrc32c, n));
}

void AdaptiveCompress(std::string_view input, std::string* output) {
  const BlockCompressor codec(
      ConfigFor(TaxKernel::kCompress, input.size()));
  codec.Compress(input, output);
}

bool AdaptiveDecompress(std::string_view compressed, std::string* output) {
  const BlockCompressor codec(
      ConfigFor(TaxKernel::kDecompress, compressed.size()));
  return codec.Decompress(compressed, output);
}

void AdaptiveWireSerialize(const WireMessage& message, std::string* out) {
  const WireSerializer serializer(
      ConfigFor(TaxKernel::kSerialize, WireSerializer::EncodedSize(message)));
  serializer.Serialize(message, out);
}

bool AdaptiveWireParse(std::string_view data, WireMessage* message) {
  const WireSerializer serializer(
      ConfigFor(TaxKernel::kParse, data.size()));
  return serializer.Parse(data, message);
}

void AdaptiveVarintEncode(const std::uint64_t* values, std::size_t count,
                          std::string* out) {
  VarintEncodeStream(
      values, count,
      ConfigFor(TaxKernel::kVarintEncode, count * sizeof(std::uint64_t)),
      out);
}

bool AdaptiveVarintDecode(std::string_view in,
                          std::vector<std::uint64_t>* out) {
  return VarintDecodeStream(
      in, ConfigFor(TaxKernel::kVarintDecode, in.size()), out);
}

void AdaptiveDictCompress(DictCompressor& codec, std::string_view input,
                          std::string* out) {
  codec.Compress(input, ConfigFor(TaxKernel::kDictCompress, input.size()),
                 out);
}

bool AdaptiveDictDecompress(const DictCompressor& codec,
                            std::string_view compressed, std::string* out) {
  return codec.Decompress(
      compressed, ConfigFor(TaxKernel::kDictDecompress, compressed.size()),
      out);
}

void AdaptiveHashJoinBuild(HashJoinTable& table, const std::uint64_t* keys,
                           const std::uint64_t* values, std::size_t n) {
  table.Build(
      keys, values, n,
      ConfigFor(TaxKernel::kHashJoinBuild, n * sizeof(std::uint64_t)));
}

std::uint64_t AdaptiveHashJoinProbe(const HashJoinTable& table,
                                    const std::uint64_t* keys, std::size_t n,
                                    std::uint64_t* out_sums) {
  return table.Probe(
      keys, n, out_sums,
      ConfigFor(TaxKernel::kHashJoinProbe, n * sizeof(std::uint64_t)));
}

}  // namespace limoncello
