#include "tax/block_compressor.h"

#include <array>
#include <cstring>
#include <vector>

#include "softpf/prefetch.h"
#include "util/check.h"
#include "util/units.h"

namespace limoncello {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1 << 16;
constexpr int kHashBits = 14;

constexpr std::uint8_t kLiteralTag = 0x00;
constexpr std::uint8_t kMatchTag = 0x01;

inline std::uint32_t Hash4(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 0x9e3779b1u) >> (32 - kHashBits);
}

inline std::uint64_t Load64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Length of the common prefix of [a, a + limit) and [b, b + limit),
// compared a word at a time (the byte position of the first difference
// falls out of the XOR's trailing zero count on little-endian).
inline std::size_t CommonPrefix(const char* a, const char* b,
                                std::size_t limit) {
  std::size_t len = 0;
#if defined(__GNUC__) || defined(__clang__)
  while (len + 8 <= limit) {
    const std::uint64_t diff = Load64(a + len) ^ Load64(b + len);
    if (diff != 0) {
      return len +
             static_cast<std::size_t>(__builtin_ctzll(diff) >> 3);
    }
    len += 8;
  }
#endif
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

inline void PrefetchAhead(const char* cursor, const char* end,
                          const SoftPrefetchConfig& config) {
  PrefetchReadSpan(cursor + config.distance_bytes, config.degree_bytes, end,
                   config.locality);
}

// Token emission appends into the reserved, caller-reused output buffer;
// growth is amortized and free at steady capacity.
void EmitLiterals(const char* begin, std::size_t len, std::string* out) {
  if (len == 0) return;
  out->push_back(static_cast<char>(kLiteralTag));  // limolint:allow(hot-path-alloc)
  AppendVarint(len, out);
  out->append(begin, len);  // limolint:allow(hot-path-alloc)
}

void EmitMatch(std::size_t offset, std::size_t len, std::string* out) {
  out->push_back(static_cast<char>(kMatchTag));  // limolint:allow(hot-path-alloc)
  AppendVarint(offset, out);
  AppendVarint(len, out);
}

}  // namespace

void AppendVarint(std::uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));  // limolint:allow(hot-path-alloc)
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));  // limolint:allow(hot-path-alloc)
}

std::size_t ParseVarint(std::string_view in, std::uint64_t* value) {
  std::uint64_t result = 0;
  int shift = 0;
  for (std::size_t i = 0; i < in.size() && i < 10; ++i) {
    const auto byte = static_cast<std::uint8_t>(in[i]);
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return i + 1;
    }
    shift += 7;
  }
  return 0;  // truncated or over-long
}

std::size_t BlockCompressor::MaxCompressedSize(std::size_t input_size) {
  // Worst case: one literal run (2 tag+varint overhead per 2^64) plus the
  // uncompressed-length header; be generous.
  return input_size + input_size / 128 + 32;
}

namespace {

// The greedy match loop, generic over the hash-table index type so the
// common case (< 2 GiB inputs) runs on a stack table with no heap traffic.
template <typename Index, typename Table>
void CompressLoop(std::string_view input, const SoftPrefetchConfig& config,
                  Table& table, std::string* output) {
  const char* const base = input.data();
  const char* const end = base + input.size();
  const bool prefetch = config.AppliesTo(input.size());

  const char* cursor = base;
  const char* literal_start = base;
  std::size_t since_prefetch = 0;

  while (cursor + kMinMatch <= end) {
    if (prefetch && since_prefetch >= config.degree_bytes) {
      PrefetchAhead(cursor, end, config);
      since_prefetch = 0;
    }
    const std::uint32_t h = Hash4(cursor);
    const Index candidate = table[h];
    table[h] = static_cast<Index>(cursor - base);
    if (candidate >= 0 &&
        std::memcmp(base + candidate, cursor, kMinMatch) == 0) {
      // Extend the match forward, a word at a time.
      const char* match = base + candidate;
      const std::size_t max_len = std::min<std::size_t>(
          kMaxMatch, static_cast<std::size_t>(end - cursor));
      const std::size_t len =
          kMinMatch + CommonPrefix(match + kMinMatch, cursor + kMinMatch,
                                   max_len - kMinMatch);

      EmitLiterals(literal_start,
                   static_cast<std::size_t>(cursor - literal_start),
                   output);
      EmitMatch(static_cast<std::size_t>(cursor - match), len, output);
      // Seed the table sparsely inside the match for future references.
      for (std::size_t i = 1; i < len && cursor + i + kMinMatch <= end;
           i += 7) {
        table[Hash4(cursor + i)] = static_cast<Index>((cursor + i) - base);
      }
      cursor += len;
      since_prefetch += len;
      literal_start = cursor;
    } else {
      ++cursor;
      ++since_prefetch;
    }
  }
  EmitLiterals(literal_start, static_cast<std::size_t>(end - literal_start),
               output);
}

}  // namespace

void BlockCompressor::Compress(std::string_view input,
                               std::string* output) const {
  output->clear();
  output->reserve(input.size() / 2 + 32);
  AppendVarint(input.size(), output);
  if (input.empty()) return;

  if (input.size() <= static_cast<std::size_t>(INT32_MAX)) {
    // 64 KiB stack table: keeps steady-state Compress calls allocation-free
    // (the old per-call heap vector dominated small-payload latency).
    std::array<std::int32_t, 1u << kHashBits> table;
    table.fill(-1);
    CompressLoop<std::int32_t>(input, config_, table, output);
  } else {
    std::vector<std::int64_t> table(1u << kHashBits, -1);
    CompressLoop<std::int64_t>(input, config_, table, output);
  }
}

bool BlockCompressor::Decompress(std::string_view compressed,
                                 std::string* output) const {
  output->clear();
  std::uint64_t uncompressed_size = 0;
  std::size_t consumed = ParseVarint(compressed, &uncompressed_size);
  if (consumed == 0) return false;
  // Refuse absurd sizes (corrupt header) before reserving memory.
  if (uncompressed_size > (1ULL << 36)) return false;
  compressed.remove_prefix(consumed);
  output->reserve(uncompressed_size);

  const bool prefetch = config_.AppliesTo(compressed.size());
  std::size_t since_prefetch = 0;

  while (!compressed.empty()) {
    if (prefetch && since_prefetch >= config_.degree_bytes) {
      PrefetchAhead(compressed.data(),
                    compressed.data() + compressed.size(), config_);
      since_prefetch = 0;
    }
    const auto tag = static_cast<std::uint8_t>(compressed[0]);
    compressed.remove_prefix(1);
    if (tag == kLiteralTag) {
      std::uint64_t len = 0;
      consumed = ParseVarint(compressed, &len);
      if (consumed == 0) return false;
      compressed.remove_prefix(consumed);
      if (len > compressed.size()) return false;
      if (output->size() + len > uncompressed_size) return false;
      output->append(compressed.data(), len);
      compressed.remove_prefix(len);
      since_prefetch += len;
    } else if (tag == kMatchTag) {
      std::uint64_t offset = 0;
      std::uint64_t len = 0;
      consumed = ParseVarint(compressed, &offset);
      if (consumed == 0) return false;
      compressed.remove_prefix(consumed);
      consumed = ParseVarint(compressed, &len);
      if (consumed == 0) return false;
      compressed.remove_prefix(consumed);
      if (offset == 0 || offset > output->size()) return false;
      if (output->size() + len > uncompressed_size) return false;
      // Bulk match copy into the reserved tail (the resize never
      // reallocates: capacity was reserved to uncompressed_size up
      // front). Offsets smaller than len self-overlap (RLE), which the
      // period-doubling loop handles with memcpy-safe chunks: after the
      // first `offset` bytes the copied region itself holds whole
      // periods, so each round can double what is copied from it.
      const std::size_t start = output->size();
      output->resize(start + len);  // limolint:allow(hot-path-alloc)
      char* dst = output->data() + start;
      if (offset >= len) {
        std::memcpy(dst, dst - offset, len);
      } else {
        std::memcpy(dst, dst - offset, offset);
        std::size_t copied = offset;
        while (copied < len) {
          const std::size_t chunk =
              std::min<std::size_t>(copied, len - copied);
          std::memcpy(dst + copied, dst, chunk);
          copied += chunk;
        }
      }
      since_prefetch += len;
    } else {
      return false;
    }
  }
  return output->size() == uncompressed_size;
}

}  // namespace limoncello
