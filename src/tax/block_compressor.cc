#include "tax/block_compressor.h"

#include <cstring>
#include <vector>

#include "util/check.h"
#include "util/units.h"

namespace limoncello {

namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = 1 << 16;
constexpr int kHashBits = 14;

constexpr std::uint8_t kLiteralTag = 0x00;
constexpr std::uint8_t kMatchTag = 0x01;

inline std::uint32_t Hash4(const char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return (v * 0x9e3779b1u) >> (32 - kHashBits);
}

inline void PrefetchAhead(const char* cursor, const char* end,
                          const SoftPrefetchConfig& config) {
  const char* target = cursor + config.distance_bytes;
  for (std::uint32_t off = 0; off < config.degree_bytes;
       off += kCacheLineBytes) {
    if (target + off >= end) return;
    __builtin_prefetch(target + off, 0, 3);
  }
}

void EmitLiterals(const char* begin, std::size_t len, std::string* out) {
  if (len == 0) return;
  out->push_back(static_cast<char>(kLiteralTag));
  AppendVarint(len, out);
  out->append(begin, len);
}

void EmitMatch(std::size_t offset, std::size_t len, std::string* out) {
  out->push_back(static_cast<char>(kMatchTag));
  AppendVarint(offset, out);
  AppendVarint(len, out);
}

}  // namespace

void AppendVarint(std::uint64_t value, std::string* out) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

std::size_t ParseVarint(std::string_view in, std::uint64_t* value) {
  std::uint64_t result = 0;
  int shift = 0;
  for (std::size_t i = 0; i < in.size() && i < 10; ++i) {
    const auto byte = static_cast<std::uint8_t>(in[i]);
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return i + 1;
    }
    shift += 7;
  }
  return 0;  // truncated or over-long
}

std::size_t BlockCompressor::MaxCompressedSize(std::size_t input_size) {
  // Worst case: one literal run (2 tag+varint overhead per 2^64) plus the
  // uncompressed-length header; be generous.
  return input_size + input_size / 128 + 32;
}

void BlockCompressor::Compress(std::string_view input,
                               std::string* output) const {
  output->clear();
  output->reserve(input.size() / 2 + 32);
  AppendVarint(input.size(), output);
  if (input.empty()) return;

  const char* const base = input.data();
  const char* const end = base + input.size();
  const bool prefetch = config_.AppliesTo(input.size());

  std::vector<std::int64_t> table(1u << kHashBits, -1);
  const char* cursor = base;
  const char* literal_start = base;
  std::size_t since_prefetch = 0;

  while (cursor + kMinMatch <= end) {
    if (prefetch && since_prefetch >= config_.degree_bytes) {
      PrefetchAhead(cursor, end, config_);
      since_prefetch = 0;
    }
    const std::uint32_t h = Hash4(cursor);
    const std::int64_t candidate = table[h];
    table[h] = cursor - base;
    if (candidate >= 0 &&
        std::memcmp(base + candidate, cursor, kMinMatch) == 0) {
      // Extend the match forward.
      const char* match = base + candidate;
      std::size_t len = kMinMatch;
      const std::size_t max_len = std::min<std::size_t>(
          kMaxMatch, static_cast<std::size_t>(end - cursor));
      while (len < max_len && match[len] == cursor[len]) ++len;

      EmitLiterals(literal_start,
                   static_cast<std::size_t>(cursor - literal_start),
                   output);
      EmitMatch(static_cast<std::size_t>(cursor - match), len, output);
      // Seed the table sparsely inside the match for future references.
      for (std::size_t i = 1; i < len && cursor + i + kMinMatch <= end;
           i += 7) {
        table[Hash4(cursor + i)] = (cursor + i) - base;
      }
      cursor += len;
      since_prefetch += len;
      literal_start = cursor;
    } else {
      ++cursor;
      ++since_prefetch;
    }
  }
  EmitLiterals(literal_start, static_cast<std::size_t>(end - literal_start),
               output);
}

bool BlockCompressor::Decompress(std::string_view compressed,
                                 std::string* output) const {
  output->clear();
  std::uint64_t uncompressed_size = 0;
  std::size_t consumed = ParseVarint(compressed, &uncompressed_size);
  if (consumed == 0) return false;
  // Refuse absurd sizes (corrupt header) before reserving memory.
  if (uncompressed_size > (1ULL << 36)) return false;
  compressed.remove_prefix(consumed);
  output->reserve(uncompressed_size);

  const bool prefetch = config_.AppliesTo(compressed.size());
  std::size_t since_prefetch = 0;

  while (!compressed.empty()) {
    if (prefetch && since_prefetch >= config_.degree_bytes) {
      PrefetchAhead(compressed.data(),
                    compressed.data() + compressed.size(), config_);
      since_prefetch = 0;
    }
    const auto tag = static_cast<std::uint8_t>(compressed[0]);
    compressed.remove_prefix(1);
    if (tag == kLiteralTag) {
      std::uint64_t len = 0;
      consumed = ParseVarint(compressed, &len);
      if (consumed == 0) return false;
      compressed.remove_prefix(consumed);
      if (len > compressed.size()) return false;
      if (output->size() + len > uncompressed_size) return false;
      output->append(compressed.data(), len);
      compressed.remove_prefix(len);
      since_prefetch += len;
    } else if (tag == kMatchTag) {
      std::uint64_t offset = 0;
      std::uint64_t len = 0;
      consumed = ParseVarint(compressed, &offset);
      if (consumed == 0) return false;
      compressed.remove_prefix(consumed);
      consumed = ParseVarint(compressed, &len);
      if (consumed == 0) return false;
      compressed.remove_prefix(consumed);
      if (offset == 0 || offset > output->size()) return false;
      if (output->size() + len > uncompressed_size) return false;
      // Byte-wise copy: offsets smaller than len self-overlap (RLE).
      std::size_t src = output->size() - offset;
      for (std::uint64_t i = 0; i < len; ++i) {
        output->push_back((*output)[src + i]);
      }
      since_prefetch += len;
    } else {
      return false;
    }
  }
  return output->size() == uncompressed_size;
}

}  // namespace limoncello
