// Data-movement primitives with Soft Limoncello software prefetching.
//
// These are real, runnable implementations (not simulator stand-ins): the
// copy loop issues __builtin_prefetch at the configured distance/degree
// ahead of the source cursor, conditioned on call size (paper §4.3). They
// back the native Fig. 15 microbenchmark sweeps.
#ifndef LIMONCELLO_TAX_PREFETCHING_MEMCPY_H_
#define LIMONCELLO_TAX_PREFETCHING_MEMCPY_H_

#include <cstddef>

#include "softpf/soft_prefetch_config.h"

namespace limoncello {

// Copies n bytes from src to dst (non-overlapping), prefetching the source
// stream per `config`. Falls back to plain copying when the config does
// not apply (disabled or n below min_size_bytes).
void* PrefetchingMemcpy(void* dst, const void* src, std::size_t n,
                        const SoftPrefetchConfig& config);

// memmove counterpart: handles overlap (copies backward when needed, with
// backward prefetching).
void* PrefetchingMemmove(void* dst, const void* src, std::size_t n,
                         const SoftPrefetchConfig& config);

// memset counterpart: prefetches the destination for write.
void* PrefetchingMemset(void* dst, int value, std::size_t n,
                        const SoftPrefetchConfig& config);

}  // namespace limoncello

#endif  // LIMONCELLO_TAX_PREFETCHING_MEMCPY_H_
