#include "tax/wire_serializer.h"

#include "tax/block_compressor.h"  // varint helpers
#include "tax/prefetching_memcpy.h"

namespace limoncello {

namespace {

std::size_t VarintSize(std::uint64_t value) {
  std::size_t size = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++size;
  }
  return size;
}

}  // namespace

std::size_t WireSerializer::EncodedSize(const WireMessage& message) {
  std::size_t total = 0;
  for (const WireField& field : message) {
    total += VarintSize(field.field_number);
    total += VarintSize(field.payload.size());
    total += field.payload.size();
  }
  return total;
}

void WireSerializer::Serialize(const WireMessage& message,
                               std::string* out) const {
  out->clear();
  out->reserve(EncodedSize(message));
  for (const WireField& field : message) {
    AppendVarint(field.field_number, out);
    AppendVarint(field.payload.size(), out);
    // Large payload copies go through the prefetching copy path.
    const std::size_t offset = out->size();
    out->resize(offset + field.payload.size());
    PrefetchingMemcpy(out->data() + offset, field.payload.data(),
                      field.payload.size(), config_);
  }
}

bool WireSerializer::Parse(std::string_view data,
                           WireMessage* message) const {
  // Fields are decoded into the caller's message in place: a reused
  // message of the same shape keeps its payload-string capacity, so
  // steady-state parsing of like-shaped messages never allocates.
  std::size_t count = 0;
  while (!data.empty()) {
    std::uint64_t field_number = 0;
    std::size_t consumed = ParseVarint(data, &field_number);
    if (consumed == 0 || field_number > 0xffffffffULL) return false;
    data.remove_prefix(consumed);

    std::uint64_t length = 0;
    consumed = ParseVarint(data, &length);
    if (consumed == 0) return false;
    data.remove_prefix(consumed);
    if (length > data.size()) return false;

    if (count == message->size()) message->emplace_back();
    WireField& field = (*message)[count];
    ++count;
    field.field_number = static_cast<std::uint32_t>(field_number);
    field.payload.resize(length);
    PrefetchingMemcpy(field.payload.data(), data.data(), length, config_);
    data.remove_prefix(length);
  }
  message->resize(count);
  return true;
}

}  // namespace limoncello
