#include "softpf/tax_kernel.h"

#include "util/check.h"

namespace limoncello {

const char* TaxKernelSiteName(TaxKernel kernel) {
  switch (kernel) {
    case TaxKernel::kMemcpy:
      return "memcpy";
    case TaxKernel::kMemmove:
      return "memmove";
    case TaxKernel::kMemset:
      return "memset";
    case TaxKernel::kBlockHash:
      return "fingerprint2011";
    case TaxKernel::kCrc32c:
      return "crc32c";
    case TaxKernel::kCompress:
      return "snappy_compress";
    case TaxKernel::kDecompress:
      return "snappy_uncompress";
    case TaxKernel::kSerialize:
      return "proto_serialize";
    case TaxKernel::kParse:
      return "proto_parse";
    case TaxKernel::kVarintEncode:
      return "varint_encode";
    case TaxKernel::kVarintDecode:
      return "varint_decode";
    case TaxKernel::kDictCompress:
      return "dict_compress";
    case TaxKernel::kDictDecompress:
      return "dict_uncompress";
    case TaxKernel::kHashJoinBuild:
      return "hashjoin_build";
    case TaxKernel::kHashJoinProbe:
      return "hashjoin_probe";
  }
  return "unknown";
}

TaxKernel TaxKernelAt(int index) {
  LIMONCELLO_CHECK(index >= 0 && index < kNumTaxKernels);
  return static_cast<TaxKernel>(index);
}

}  // namespace limoncello
