// Process-wide Soft Limoncello runtime: the hardware/software handshake.
//
// The paper's vertical integration works because the software half knows
// what the hardware half is doing: software prefetches matter most while
// the hardware prefetchers are disabled (paper Fig. 20 — Soft Limoncello
// recovers exactly the coverage Hard Limoncello gives up). This runtime
// is the in-process coordination point:
//
//   * the controller daemon publishes the hardware prefetcher state into
//     the runtime (via LimoncelloDaemon::SetStateListener), and
//   * instrumented library functions ask the runtime for their prefetch
//     configuration on each (large) call.
//
// Activation policies let a site prefetch always, only while hardware
// prefetching is off, or never (kill switch). All state is atomic and
// lock-free on the read path: tax functions are the hottest code in the
// fleet and must not take locks. The hot lookup is enum-indexed into a
// flat kernel × size-class table (no map, no string, no allocation); the
// string-keyed registry remains the cold-path / control-plane view and is
// mirrored into the flat table by RebuildFastPath().
#ifndef LIMONCELLO_SOFTPF_RUNTIME_H_
#define LIMONCELLO_SOFTPF_RUNTIME_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "softpf/prefetch_site_registry.h"
#include "softpf/size_class.h"
#include "softpf/soft_prefetch_config.h"
#include "softpf/tax_kernel.h"

namespace limoncello {

enum class SoftPrefetchActivation : int {
  kAlways,     // prefetch whenever the size gate passes
  kWhenHwOff,  // deployed policy: only while HW prefetchers are disabled
  kNever,      // kill switch
};

class SoftPrefetchRuntime {
 public:
  explicit SoftPrefetchRuntime(
      PrefetchSiteRegistry registry = PrefetchSiteRegistry::DeployedDefault(),
      SoftPrefetchActivation activation =
          SoftPrefetchActivation::kWhenHwOff);

  // Published by the control plane (daemon actuations).
  void SetHwPrefetchersEnabled(bool enabled) {
    hw_prefetchers_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool hw_prefetchers_enabled() const {
    return hw_prefetchers_enabled_.load(std::memory_order_relaxed);
  }

  void SetActivation(SoftPrefetchActivation activation) {
    activation_.store(static_cast<int>(activation),
                      std::memory_order_relaxed);
  }
  SoftPrefetchActivation activation() const {
    return static_cast<SoftPrefetchActivation>(
        activation_.load(std::memory_order_relaxed));
  }

  // Hot path: the configuration `kernel` should use for a call of
  // `call_size` bytes right now. Flat table + size-class index; never
  // allocates, never touches the registry map.
  // limolint:hot-path — per-call lookup inside every tax kernel.
  SoftPrefetchConfig ConfigFor(TaxKernel kernel,
                               std::uint64_t call_size) const {
    const SoftPrefetchActivation policy = activation();
    if (policy == SoftPrefetchActivation::kNever) {
      return SoftPrefetchConfig::Disabled();
    }
    if (policy == SoftPrefetchActivation::kWhenHwOff &&
        hw_prefetchers_enabled()) {
      return SoftPrefetchConfig::Disabled();
    }
    const SoftPrefetchConfig& config =
        fast_path_[static_cast<std::size_t>(kernel)]
                  [static_cast<std::size_t>(SizeClassFor(call_size))];
    if (!config.AppliesTo(call_size)) return SoftPrefetchConfig::Disabled();
    return config;
  }

  // Cold path: string-keyed lookup for sites outside the dense kernel
  // suite (fleet catalog names). Same gating as the enum overload.
  SoftPrefetchConfig ConfigFor(const std::string& function_name,
                               std::uint64_t call_size) const;

  // Registry management (cold path; not thread-safe against ConfigFor —
  // reconfigure at startup or behind external synchronization). Call
  // RebuildFastPath() after mutating the registry so the flat table the
  // enum hot path reads catches up.
  PrefetchSiteRegistry& registry() { return registry_; }
  const PrefetchSiteRegistry& registry() const { return registry_; }
  void RebuildFastPath();

  // The process-wide instance used by the instrumented tax wrappers.
  static SoftPrefetchRuntime& Global();

 private:
  PrefetchSiteRegistry registry_;
  std::array<SizeClassConfigs, kNumTaxKernels> fast_path_;
  std::atomic<bool> hw_prefetchers_enabled_{true};
  std::atomic<int> activation_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SOFTPF_RUNTIME_H_
