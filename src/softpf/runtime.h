// Process-wide Soft Limoncello runtime: the hardware/software handshake.
//
// The paper's vertical integration works because the software half knows
// what the hardware half is doing: software prefetches matter most while
// the hardware prefetchers are disabled (paper Fig. 20 — Soft Limoncello
// recovers exactly the coverage Hard Limoncello gives up). This runtime
// is the in-process coordination point:
//
//   * the controller daemon publishes the hardware prefetcher state into
//     the runtime (via LimoncelloDaemon::SetStateListener), and
//   * instrumented library functions ask the runtime for their prefetch
//     configuration on each (large) call.
//
// Activation policies let a site prefetch always, only while hardware
// prefetching is off, or never (kill switch). All state is atomic and
// lock-free on the read path: tax functions are the hottest code in the
// fleet and must not take locks.
#ifndef LIMONCELLO_SOFTPF_RUNTIME_H_
#define LIMONCELLO_SOFTPF_RUNTIME_H_

#include <atomic>
#include <cstdint>

#include "softpf/prefetch_site_registry.h"
#include "softpf/soft_prefetch_config.h"

namespace limoncello {

enum class SoftPrefetchActivation : int {
  kAlways,     // prefetch whenever the size gate passes
  kWhenHwOff,  // deployed policy: only while HW prefetchers are disabled
  kNever,      // kill switch
};

class SoftPrefetchRuntime {
 public:
  explicit SoftPrefetchRuntime(
      PrefetchSiteRegistry registry = PrefetchSiteRegistry::DeployedDefault(),
      SoftPrefetchActivation activation =
          SoftPrefetchActivation::kWhenHwOff);

  // Published by the control plane (daemon actuations).
  void SetHwPrefetchersEnabled(bool enabled) {
    hw_prefetchers_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool hw_prefetchers_enabled() const {
    return hw_prefetchers_enabled_.load(std::memory_order_relaxed);
  }

  void SetActivation(SoftPrefetchActivation activation) {
    activation_.store(static_cast<int>(activation),
                      std::memory_order_relaxed);
  }
  SoftPrefetchActivation activation() const {
    return static_cast<SoftPrefetchActivation>(
        activation_.load(std::memory_order_relaxed));
  }

  // Hot path: the configuration a site should use for a call of
  // `call_size` bytes right now. Disabled config when the site is not
  // registered, the size gate fails, or the activation policy says no.
  SoftPrefetchConfig ConfigFor(const std::string& function_name,
                               std::uint64_t call_size) const;

  // Registry management (cold path; not thread-safe against ConfigFor —
  // reconfigure at startup or behind external synchronization).
  PrefetchSiteRegistry& registry() { return registry_; }
  const PrefetchSiteRegistry& registry() const { return registry_; }

  // The process-wide instance used by the instrumented tax wrappers.
  static SoftPrefetchRuntime& Global();

 private:
  PrefetchSiteRegistry registry_;
  std::atomic<bool> hw_prefetchers_enabled_{true};
  std::atomic<int> activation_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SOFTPF_RUNTIME_H_
