#include "softpf/soft_prefetch_config.h"

namespace limoncello {

std::vector<SweepPoint> DistanceSweep(
    const std::vector<std::uint32_t>& distances,
    std::uint32_t fixed_degree) {
  std::vector<SweepPoint> points;
  points.reserve(distances.size());
  for (std::uint32_t d : distances) {
    SoftPrefetchConfig config;
    config.distance_bytes = d;
    config.degree_bytes = fixed_degree;
    config.min_size_bytes = 0;  // sweeps probe every size bucket
    points.push_back({config, "distance=" + std::to_string(d)});
  }
  return points;
}

std::vector<SweepPoint> DegreeSweep(
    std::uint32_t fixed_distance,
    const std::vector<std::uint32_t>& degrees) {
  std::vector<SweepPoint> points;
  points.reserve(degrees.size());
  for (std::uint32_t g : degrees) {
    SoftPrefetchConfig config;
    config.distance_bytes = fixed_distance;
    config.degree_bytes = g;
    config.min_size_bytes = 0;
    points.push_back({config, "degree=" + std::to_string(g)});
  }
  return points;
}

std::vector<SweepPoint> LocalitySweep(
    std::uint32_t fixed_distance, std::uint32_t fixed_degree,
    const std::vector<std::uint8_t>& localities) {
  std::vector<SweepPoint> points;
  points.reserve(localities.size());
  for (std::uint8_t l : localities) {
    SoftPrefetchConfig config;
    config.distance_bytes = fixed_distance;
    config.degree_bytes = fixed_degree;
    config.min_size_bytes = 0;
    config.locality = l;
    points.push_back({config, "locality=" + std::to_string(l)});
  }
  return points;
}

}  // namespace limoncello
