#include "softpf/soft_prefetch_config.h"

namespace limoncello {

std::vector<SweepPoint> DistanceSweep(
    const std::vector<std::uint32_t>& distances,
    std::uint32_t fixed_degree) {
  std::vector<SweepPoint> points;
  points.reserve(distances.size());
  for (std::uint32_t d : distances) {
    SoftPrefetchConfig config;
    config.distance_bytes = d;
    config.degree_bytes = fixed_degree;
    config.min_size_bytes = 0;  // sweeps probe every size bucket
    points.push_back({config, "distance=" + std::to_string(d)});
  }
  return points;
}

std::vector<SweepPoint> DegreeSweep(
    std::uint32_t fixed_distance,
    const std::vector<std::uint32_t>& degrees) {
  std::vector<SweepPoint> points;
  points.reserve(degrees.size());
  for (std::uint32_t g : degrees) {
    SoftPrefetchConfig config;
    config.distance_bytes = fixed_distance;
    config.degree_bytes = g;
    config.min_size_bytes = 0;
    points.push_back({config, "degree=" + std::to_string(g)});
  }
  return points;
}

}  // namespace limoncello
