// Registry of software-prefetch insertion sites.
//
// Maps target function names (the data-center-tax functions surfaced by the
// ablation study, §4.1) to their tuned prefetch parameters. Since the
// autotuner, each site carries a per-size-class table rather than one
// config: the tuner sweeps distance/degree/locality per size class and the
// deployed table is consulted per call. The fleet deployment reads this
// registry when Soft Limoncello is active; the native tax library goes
// through the runtime's flat fast-path copy of it.
#ifndef LIMONCELLO_SOFTPF_PREFETCH_SITE_REGISTRY_H_
#define LIMONCELLO_SOFTPF_PREFETCH_SITE_REGISTRY_H_

#include <array>
#include <map>
#include <optional>
#include <string>

#include "softpf/size_class.h"
#include "softpf/soft_prefetch_config.h"

namespace limoncello {

// One config per call-size class (see softpf/size_class.h).
using SizeClassConfigs = std::array<SoftPrefetchConfig, kNumSizeClasses>;

// Broadcasts one config to every swept size class; the tiny class is
// pinned disabled (paper §4.3: small calls are never prefetched).
SizeClassConfigs UniformSizeClassConfigs(const SoftPrefetchConfig& config);

class PrefetchSiteRegistry {
 public:
  // The deployed target set: every tax function from the fleet catalog,
  // each with the tuned deployment parameters.
  static PrefetchSiteRegistry DeployedDefault();

  // Registers `config` for every size class of the site (tiny stays
  // disabled). Overwrites any existing entry.
  void Register(const std::string& function_name,
                const SoftPrefetchConfig& config);
  // Registers a full per-size-class table (the autotuner's output shape).
  void RegisterTable(const std::string& function_name,
                     const SizeClassConfigs& table);
  void Unregister(const std::string& function_name);

  // nullopt when the function is not a software-prefetch target.
  // The size-less overload returns the large-class config (the
  // deployment-representative parameters).
  std::optional<SoftPrefetchConfig> Lookup(
      const std::string& function_name) const;
  std::optional<SoftPrefetchConfig> Lookup(const std::string& function_name,
                                           std::uint64_t call_size) const;
  // Full table, nullptr when unregistered (used to build the runtime's
  // flat fast path).
  const SizeClassConfigs* LookupTable(
      const std::string& function_name) const;

  std::size_t size() const { return sites_.size(); }

 private:
  std::map<std::string, SizeClassConfigs> sites_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SOFTPF_PREFETCH_SITE_REGISTRY_H_
