// Registry of software-prefetch insertion sites.
//
// Maps target function names (the data-center-tax functions surfaced by the
// ablation study, §4.1) to their tuned SoftPrefetchConfig. The fleet
// deployment consults this registry when Soft Limoncello is active; the
// native tax library reads per-call configs directly.
#ifndef LIMONCELLO_SOFTPF_PREFETCH_SITE_REGISTRY_H_
#define LIMONCELLO_SOFTPF_PREFETCH_SITE_REGISTRY_H_

#include <map>
#include <optional>
#include <string>

#include "softpf/soft_prefetch_config.h"

namespace limoncello {

class PrefetchSiteRegistry {
 public:
  // The deployed target set: every tax function from the fleet catalog,
  // each with the tuned deployment parameters.
  static PrefetchSiteRegistry DeployedDefault();

  void Register(const std::string& function_name,
                const SoftPrefetchConfig& config);
  void Unregister(const std::string& function_name);

  // nullopt when the function is not a software-prefetch target.
  std::optional<SoftPrefetchConfig> Lookup(
      const std::string& function_name) const;

  std::size_t size() const { return sites_.size(); }

 private:
  std::map<std::string, SoftPrefetchConfig> sites_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_SOFTPF_PREFETCH_SITE_REGISTRY_H_
