// Locality-hint-dispatched software prefetch primitives.
//
// __builtin_prefetch requires compile-time-constant rw/locality arguments,
// but the tuner sweeps the locality hint (T0/T1/T2/NTA — how high in the
// hierarchy the line lands and whether it is marked non-temporal) as a
// third tuning axis alongside distance and degree. These helpers dispatch
// a runtime SoftPrefetchConfig locality value onto the four constant
// instruction forms; the switch compiles to a short jump table and is
// negligible next to the memory access it hides.
#ifndef LIMONCELLO_SOFTPF_PREFETCH_H_
#define LIMONCELLO_SOFTPF_PREFETCH_H_

#include <cstdint>

#include "util/units.h"

namespace limoncello {

// Locality hints mirror the _MM_HINT_* levels: 3 = T0 (all levels,
// the default), 2 = T1, 1 = T2, 0 = NTA (non-temporal).
inline void PrefetchRead(const void* p, std::uint8_t locality) {
  switch (locality) {
    case 0:
      __builtin_prefetch(p, /*rw=*/0, /*locality=*/0);
      break;
    case 1:
      __builtin_prefetch(p, /*rw=*/0, /*locality=*/1);
      break;
    case 2:
      __builtin_prefetch(p, /*rw=*/0, /*locality=*/2);
      break;
    default:
      __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
      break;
  }
}

inline void PrefetchWrite(const void* p, std::uint8_t locality) {
  switch (locality) {
    case 0:
      __builtin_prefetch(p, /*rw=*/1, /*locality=*/0);
      break;
    case 1:
      __builtin_prefetch(p, /*rw=*/1, /*locality=*/1);
      break;
    case 2:
      __builtin_prefetch(p, /*rw=*/1, /*locality=*/2);
      break;
    default:
      __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
      break;
  }
}

// Issues read prefetches covering [addr, addr + degree) line by line,
// clamped to `limit` (prefetching past the buffer is harmless but wastes
// slots the tuner is trying to spend well).
inline void PrefetchReadSpan(const char* addr, std::uint32_t degree,
                             const char* limit, std::uint8_t locality) {
  for (std::uint32_t off = 0; off < degree; off += kCacheLineBytes) {
    const char* p = addr + off;
    if (p >= limit) break;
    PrefetchRead(p, locality);
  }
}

inline void PrefetchWriteSpan(char* addr, std::uint32_t degree, char* limit,
                              std::uint8_t locality) {
  for (std::uint32_t off = 0; off < degree; off += kCacheLineBytes) {
    char* p = addr + off;
    if (p >= limit) break;
    PrefetchWrite(p, locality);
  }
}

}  // namespace limoncello

#endif  // LIMONCELLO_SOFTPF_PREFETCH_H_
