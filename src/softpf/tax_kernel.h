// The data-center-tax kernel suite, as a dense enum.
//
// The Adaptive* entry points are the hottest code the runtime serves, so
// their per-call configuration lookup must not touch a string-keyed map
// (constructing a >15-char std::string key would even allocate). Each tax
// kernel gets a dense id; the runtime keeps a flat kernel × size-class
// table the hot path indexes directly. The string site names remain the
// cold-path / fleet-catalog identity of each kernel.
#ifndef LIMONCELLO_SOFTPF_TAX_KERNEL_H_
#define LIMONCELLO_SOFTPF_TAX_KERNEL_H_

namespace limoncello {

enum class TaxKernel : int {
  // Data movement.
  kMemcpy,
  kMemmove,
  kMemset,
  // Hashing.
  kBlockHash,
  kCrc32c,
  // Compression (block codec).
  kCompress,
  kDecompress,
  // Data transmission (wire serializer).
  kSerialize,
  kParse,
  // Data transmission (varint stream codec).
  kVarintEncode,
  kVarintDecode,
  // Compression (dictionary/LZ-window codec).
  kDictCompress,
  kDictDecompress,
  // Hashing (hash-join bucketed table).
  kHashJoinBuild,
  kHashJoinProbe,
};

inline constexpr int kNumTaxKernels = 15;

// Registry site name (also the fleet-catalog function name where the
// kernel appears in the simulated fleet mix).
const char* TaxKernelSiteName(TaxKernel kernel);

// All kernels, in enum order, for sweeping.
TaxKernel TaxKernelAt(int index);

}  // namespace limoncello

#endif  // LIMONCELLO_SOFTPF_TAX_KERNEL_H_
