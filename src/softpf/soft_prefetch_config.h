// Soft Limoncello: software-prefetch insertion policy.
//
// Paper §4.2 identifies three design parameters for an inserted prefetch:
// address (implicit in the insertion site), distance (how far ahead of the
// access cursor), and degree (how many bytes per prefetch trigger). §4.3
// adds a size condition: only calls over a minimum size are prefetched,
// because small scattered accesses neither need nor reward prefetching.
#ifndef LIMONCELLO_SOFTPF_SOFT_PREFETCH_CONFIG_H_
#define LIMONCELLO_SOFTPF_SOFT_PREFETCH_CONFIG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace limoncello {

struct SoftPrefetchConfig {
  bool enabled = true;
  // How far ahead of the access cursor the prefetched address sits.
  std::uint32_t distance_bytes = 512;
  // Bytes fetched per prefetch trigger (issued as consecutive lines).
  std::uint32_t degree_bytes = 256;
  // Calls smaller than this are left to the hardware (or to nothing).
  std::uint64_t min_size_bytes = 2048;
  // Cache-level hint, _MM_HINT_* style: 3 = T0 (all levels, the deployed
  // default), 2 = T1, 1 = T2, 0 = NTA. The autotuner sweeps this as a
  // third axis: streaming kernels that use each line once can prefer
  // lower levels to reduce L1/L2 pollution.
  std::uint8_t locality = 3;

  bool operator==(const SoftPrefetchConfig&) const = default;

  static SoftPrefetchConfig Disabled() {
    SoftPrefetchConfig config;
    config.enabled = false;
    return config;
  }

  // The configuration Soft Limoncello deployed for data-movement
  // functions after the Fig. 15 sweeps: distance 512 B, degree 256 B,
  // conditioned on large calls.
  static SoftPrefetchConfig DeployedDefault() { return {}; }

  bool AppliesTo(std::uint64_t call_size_bytes) const {
    return enabled && distance_bytes > 0 && degree_bytes > 0 &&
           call_size_bytes >= min_size_bytes;
  }
};

// Grid of candidate configurations for the §4.2 sweep methodology: sweep
// distances at fixed degree (Fig. 15a), then degrees at fixed distance
// (Fig. 15b), microbenchmark each, and keep the best for load testing.
struct SweepPoint {
  SoftPrefetchConfig config;
  std::string label;
};

std::vector<SweepPoint> DistanceSweep(
    const std::vector<std::uint32_t>& distances, std::uint32_t fixed_degree);
std::vector<SweepPoint> DegreeSweep(std::uint32_t fixed_distance,
                                    const std::vector<std::uint32_t>& degrees);
// Third axis (autotuner): locality hints at fixed distance/degree.
std::vector<SweepPoint> LocalitySweep(
    std::uint32_t fixed_distance, std::uint32_t fixed_degree,
    const std::vector<std::uint8_t>& localities);

}  // namespace limoncello

#endif  // LIMONCELLO_SOFTPF_SOFT_PREFETCH_CONFIG_H_
