#include "softpf/runtime.h"

namespace limoncello {

SoftPrefetchRuntime::SoftPrefetchRuntime(PrefetchSiteRegistry registry,
                                         SoftPrefetchActivation activation)
    : registry_(std::move(registry)),
      activation_(static_cast<int>(activation)) {
  RebuildFastPath();
}

void SoftPrefetchRuntime::RebuildFastPath() {
  for (int k = 0; k < kNumTaxKernels; ++k) {
    const SizeClassConfigs* table =
        registry_.LookupTable(TaxKernelSiteName(TaxKernelAt(k)));
    if (table != nullptr) {
      fast_path_[static_cast<std::size_t>(k)] = *table;
    } else {
      fast_path_[static_cast<std::size_t>(k)].fill(
          SoftPrefetchConfig::Disabled());
    }
  }
}

SoftPrefetchConfig SoftPrefetchRuntime::ConfigFor(
    const std::string& function_name, std::uint64_t call_size) const {
  const SoftPrefetchActivation policy = activation();
  if (policy == SoftPrefetchActivation::kNever) {
    return SoftPrefetchConfig::Disabled();
  }
  if (policy == SoftPrefetchActivation::kWhenHwOff &&
      hw_prefetchers_enabled()) {
    return SoftPrefetchConfig::Disabled();
  }
  const auto config = registry_.Lookup(function_name, call_size);
  if (!config.has_value() || !config->AppliesTo(call_size)) {
    return SoftPrefetchConfig::Disabled();
  }
  return *config;
}

SoftPrefetchRuntime& SoftPrefetchRuntime::Global() {
  // Function-local static reference: constructed on first use, never
  // destroyed (safe against shutdown ordering).
  static auto& instance = *new SoftPrefetchRuntime();  // limolint:allow(hot-path-alloc)
  return instance;
}

}  // namespace limoncello
