// Call-size classes for per-kernel prefetch tuning.
//
// Paper §4.3 conditions inserted prefetches on call size: a single tuned
// (distance, degree) pair is a compromise across the size distribution of
// Fig. 14, so the autotuner instead tunes per size class and the deployed
// table is consulted per call via a branch-free class lookup. Class 0
// (tiny) is pinned untuned: calls that small neither need nor reward
// prefetching, matching the paper's min-size gate.
#ifndef LIMONCELLO_SOFTPF_SIZE_CLASS_H_
#define LIMONCELLO_SOFTPF_SIZE_CLASS_H_

#include <cstdint>

#include "util/units.h"

namespace limoncello {

inline constexpr int kNumSizeClasses = 4;

// Class boundaries (upper bounds, exclusive) and the representative call
// size the tuner microbenchmarks for each class. Tiny is never swept.
inline constexpr std::uint64_t kSizeClassUpperBytes[kNumSizeClasses] = {
    4 * kKiB, 64 * kKiB, 1 * kMiB, UINT64_MAX};
inline constexpr std::uint64_t kSizeClassRepBytes[kNumSizeClasses] = {
    1 * kKiB, 16 * kKiB, 256 * kKiB, 4 * kMiB};
inline constexpr const char* kSizeClassNames[kNumSizeClasses] = {
    "tiny", "small", "medium", "large"};

// First swept class (tiny is pinned to the disabled config).
inline constexpr int kFirstTunedSizeClass = 1;

inline constexpr int SizeClassFor(std::uint64_t call_size_bytes) {
  if (call_size_bytes < kSizeClassUpperBytes[0]) return 0;
  if (call_size_bytes < kSizeClassUpperBytes[1]) return 1;
  if (call_size_bytes < kSizeClassUpperBytes[2]) return 2;
  return 3;
}

}  // namespace limoncello

#endif  // LIMONCELLO_SOFTPF_SIZE_CLASS_H_
