#include "softpf/prefetch_site_registry.h"

namespace limoncello {

PrefetchSiteRegistry PrefetchSiteRegistry::DeployedDefault() {
  PrefetchSiteRegistry registry;
  SoftPrefetchConfig movement = SoftPrefetchConfig::DeployedDefault();
  registry.Register("memcpy", movement);
  registry.Register("memmove", movement);
  registry.Register("memset", movement);

  // Compression streams through input and output; the codec's inner loop
  // tolerates a slightly shorter distance (it does more work per byte).
  SoftPrefetchConfig compression;
  compression.distance_bytes = 384;
  compression.degree_bytes = 256;
  compression.min_size_bytes = 4096;
  registry.Register("snappy_compress", compression);
  registry.Register("snappy_uncompress", compression);
  registry.Register("zlib_inflate", compression);

  SoftPrefetchConfig hashing;
  hashing.distance_bytes = 512;
  hashing.degree_bytes = 128;
  hashing.min_size_bytes = 2048;
  registry.Register("crc32c", hashing);
  registry.Register("fingerprint2011", hashing);

  SoftPrefetchConfig transmission;
  transmission.distance_bytes = 256;
  transmission.degree_bytes = 128;
  transmission.min_size_bytes = 1024;
  registry.Register("proto_serialize", transmission);
  registry.Register("proto_parse", transmission);
  return registry;
}

void PrefetchSiteRegistry::Register(const std::string& function_name,
                                    const SoftPrefetchConfig& config) {
  sites_[function_name] = config;
}

void PrefetchSiteRegistry::Unregister(const std::string& function_name) {
  sites_.erase(function_name);
}

std::optional<SoftPrefetchConfig> PrefetchSiteRegistry::Lookup(
    const std::string& function_name) const {
  const auto it = sites_.find(function_name);
  if (it == sites_.end()) return std::nullopt;
  return it->second;
}

}  // namespace limoncello
