#include "softpf/prefetch_site_registry.h"

namespace limoncello {

SizeClassConfigs UniformSizeClassConfigs(const SoftPrefetchConfig& config) {
  SizeClassConfigs table;
  table.fill(config);
  table[0] = SoftPrefetchConfig::Disabled();
  return table;
}

PrefetchSiteRegistry PrefetchSiteRegistry::DeployedDefault() {
  PrefetchSiteRegistry registry;
  SoftPrefetchConfig movement = SoftPrefetchConfig::DeployedDefault();
  registry.Register("memcpy", movement);
  registry.Register("memmove", movement);
  registry.Register("memset", movement);

  // Compression streams through input and output; the codec's inner loop
  // tolerates a slightly shorter distance (it does more work per byte).
  SoftPrefetchConfig compression;
  compression.distance_bytes = 384;
  compression.degree_bytes = 256;
  compression.min_size_bytes = 4096;
  registry.Register("snappy_compress", compression);
  registry.Register("snappy_uncompress", compression);
  registry.Register("zlib_inflate", compression);
  // The dictionary codec shares the compression shape; match copies add
  // scattered window reads on top of the sequential input stream.
  registry.Register("dict_compress", compression);
  registry.Register("dict_uncompress", compression);

  SoftPrefetchConfig hashing;
  hashing.distance_bytes = 512;
  hashing.degree_bytes = 128;
  hashing.min_size_bytes = 2048;
  registry.Register("crc32c", hashing);
  registry.Register("fingerprint2011", hashing);
  // Hash-join build/probe: distance here is lookahead into the key
  // stream; each prefetch targets a bucket head line.
  SoftPrefetchConfig join;
  join.distance_bytes = 256;
  join.degree_bytes = 128;
  join.min_size_bytes = 4096;
  registry.Register("hashjoin_build", join);
  registry.Register("hashjoin_probe", join);

  SoftPrefetchConfig transmission;
  transmission.distance_bytes = 256;
  transmission.degree_bytes = 128;
  transmission.min_size_bytes = 1024;
  registry.Register("proto_serialize", transmission);
  registry.Register("proto_parse", transmission);
  registry.Register("varint_encode", transmission);
  registry.Register("varint_decode", transmission);
  return registry;
}

void PrefetchSiteRegistry::Register(const std::string& function_name,
                                    const SoftPrefetchConfig& config) {
  sites_[function_name] = UniformSizeClassConfigs(config);
}

void PrefetchSiteRegistry::RegisterTable(const std::string& function_name,
                                         const SizeClassConfigs& table) {
  sites_[function_name] = table;
}

void PrefetchSiteRegistry::Unregister(const std::string& function_name) {
  sites_.erase(function_name);
}

std::optional<SoftPrefetchConfig> PrefetchSiteRegistry::Lookup(
    const std::string& function_name) const {
  const auto it = sites_.find(function_name);
  if (it == sites_.end()) return std::nullopt;
  return it->second[kNumSizeClasses - 1];
}

std::optional<SoftPrefetchConfig> PrefetchSiteRegistry::Lookup(
    const std::string& function_name, std::uint64_t call_size) const {
  const auto it = sites_.find(function_name);
  if (it == sites_.end()) return std::nullopt;
  return it->second[static_cast<std::size_t>(SizeClassFor(call_size))];
}

const SizeClassConfigs* PrefetchSiteRegistry::LookupTable(
    const std::string& function_name) const {
  const auto it = sites_.find(function_name);
  if (it == sites_.end()) return nullptr;
  return &it->second;
}

}  // namespace limoncello
