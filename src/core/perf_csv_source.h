// Telemetry source for real hardware: parses `perf stat` interval-mode
// CSV output to estimate socket memory bandwidth.
//
// Deployment pattern (paper §3: "We use the perf tool to profile memory
// bandwidth levels on every socket every 1s"):
//
//   perf stat -I 1000 -x, \
//     -e uncore_imc/data_reads/,uncore_imc/data_writes/ \
//     -o /run/limoncello/perf.csv --append &
//   limoncellod --mode=real --perf-csv=/run/limoncello/perf.csv ...
//
// perf's -I -x, lines look like:
//   1.001036918,12345.67,MiB,uncore_imc/data_reads/,...
// The source sums the configured read+write counters of the *last
// complete interval* and converts MiB-per-interval to a fraction of the
// platform's saturation bandwidth.
#ifndef LIMONCELLO_CORE_PERF_CSV_SOURCE_H_
#define LIMONCELLO_CORE_PERF_CSV_SOURCE_H_

#include <optional>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"
#include "util/units.h"

namespace limoncello {

struct PerfCsvOptions {
  std::string read_event = "uncore_imc/data_reads/";
  std::string write_event = "uncore_imc/data_writes/";
  double saturation_gbps = 100.0;
  SimTimeNs interval_ns = 1 * kNsPerSec;
};

// Parses perf -I -x, output and returns the bandwidth (GB/s, decimal) of
// the last timestamp for which both events are present. nullopt if the
// content has no complete interval or is malformed.
std::optional<double> ParsePerfCsvBandwidth(const std::string& contents,
                                            const PerfCsvOptions& options);

class PerfCsvUtilizationSource : public UtilizationSource {
 public:
  PerfCsvUtilizationSource(std::string path, const PerfCsvOptions& options);

  std::optional<double> SampleUtilization() override;

 private:
  std::string path_;
  PerfCsvOptions options_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_CORE_PERF_CSV_SOURCE_H_
