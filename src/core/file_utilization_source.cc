#include "core/file_utilization_source.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace limoncello {

FileUtilizationSource::FileUtilizationSource(std::string path)
    : path_(std::move(path)) {}

std::optional<double> ParseLastUtilizationLine(
    const std::string& contents) {
  // Find the last non-empty line.
  std::size_t end = contents.size();
  while (end > 0 &&
         (contents[end - 1] == '\n' || contents[end - 1] == '\r')) {
    --end;
  }
  if (end == 0) return std::nullopt;
  std::size_t begin = contents.rfind('\n', end - 1);
  begin = begin == std::string::npos ? 0 : begin + 1;
  const std::string line = contents.substr(begin, end - begin);

  char* parse_end = nullptr;
  const double value = std::strtod(line.c_str(), &parse_end);
  if (parse_end == line.c_str()) return std::nullopt;
  // Trailing junk after the number (other than whitespace) is malformed.
  for (const char* p = parse_end; *p != '\0'; ++p) {
    if (*p != ' ' && *p != '\t') return std::nullopt;
  }
  // strtod happily parses "nan" and "inf" (and overflow yields HUGE_VAL);
  // none of these are utilization readings.
  if (!std::isfinite(value)) return std::nullopt;
  if (value < 0.0 || value >= 10.0) return std::nullopt;
  return value;
}

// limolint:cold-path — production telemetry read at daemon cadence (~1
// Hz); the fleet hot loop dispatches to the simulated source instead.
std::optional<double> FileUtilizationSource::SampleUtilization() {
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseLastUtilizationLine(buffer.str());
}

}  // namespace limoncello
