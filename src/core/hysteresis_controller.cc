#include "core/hysteresis_controller.h"

#include "util/check.h"

namespace limoncello {

const char* ControllerStateName(ControllerState state) {
  switch (state) {
    case ControllerState::kEnabledSteady:
      return "enabled_steady";
    case ControllerState::kEnabledArming:
      return "enabled_arming";
    case ControllerState::kDisabledSteady:
      return "disabled_steady";
    case ControllerState::kDisabledArming:
      return "disabled_arming";
  }
  return "unknown";
}

HysteresisController::HysteresisController(const ControllerConfig& config)
    : config_(config) {
  LIMONCELLO_CHECK(config.Valid());
}

void HysteresisController::Reset() {
  state_ = ControllerState::kEnabledSteady;
  timer_ns_ = 0;
}

bool HysteresisController::RestoreState(ControllerState state,
                                        SimTimeNs timer_ns,
                                        std::uint64_t toggle_count) {
  bool arming = false;
  switch (state) {
    case ControllerState::kEnabledSteady:
    case ControllerState::kDisabledSteady:
      break;
    case ControllerState::kEnabledArming:
    case ControllerState::kDisabledArming:
      arming = true;
      break;
    default:
      return false;  // decoded from disk; may be any bit pattern
  }
  if (timer_ns < 0) return false;
  if (!arming && timer_ns != 0) return false;
  // An arming timer at or past Δ would have already transitioned.
  if (arming && timer_ns >= config_.sustain_duration_ns) return false;
  state_ = state;
  timer_ns_ = timer_ns;
  toggle_count_ = toggle_count;
  return true;
}

ControllerAction HysteresisController::Tick(double utilization) {
  LIMONCELLO_DCHECK(utilization >= 0.0);
  const double ut = config_.upper_threshold;
  const double lt = config_.lower_threshold;

  switch (state_) {
    case ControllerState::kEnabledSteady:
      if (utilization > ut) {
        state_ = ControllerState::kEnabledArming;
        timer_ns_ = config_.tick_period_ns;
        if (timer_ns_ >= config_.sustain_duration_ns) {
          state_ = ControllerState::kDisabledSteady;
          timer_ns_ = 0;
          ++toggle_count_;
          return ControllerAction::kDisablePrefetchers;
        }
      }
      return ControllerAction::kNone;

    case ControllerState::kEnabledArming:
      if (utilization <= ut) {
        // Excursion ended before Δ: back to steady, timer cleared.
        state_ = ControllerState::kEnabledSteady;
        timer_ns_ = 0;
        return ControllerAction::kNone;
      }
      timer_ns_ += config_.tick_period_ns;
      if (timer_ns_ >= config_.sustain_duration_ns) {
        state_ = ControllerState::kDisabledSteady;
        timer_ns_ = 0;
        ++toggle_count_;
        return ControllerAction::kDisablePrefetchers;
      }
      return ControllerAction::kNone;

    case ControllerState::kDisabledSteady:
      if (utilization < lt) {
        state_ = ControllerState::kDisabledArming;
        timer_ns_ = config_.tick_period_ns;
        if (timer_ns_ >= config_.sustain_duration_ns) {
          state_ = ControllerState::kEnabledSteady;
          timer_ns_ = 0;
          ++toggle_count_;
          return ControllerAction::kEnablePrefetchers;
        }
      }
      return ControllerAction::kNone;

    case ControllerState::kDisabledArming:
      if (utilization >= lt) {
        state_ = ControllerState::kDisabledSteady;
        timer_ns_ = 0;
        return ControllerAction::kNone;
      }
      timer_ns_ += config_.tick_period_ns;
      if (timer_ns_ >= config_.sustain_duration_ns) {
        state_ = ControllerState::kEnabledSteady;
        timer_ns_ = 0;
        ++toggle_count_;
        return ControllerAction::kEnablePrefetchers;
      }
      return ControllerAction::kNone;
  }
  LIMONCELLO_CHECK(false);
  return ControllerAction::kNone;
}

}  // namespace limoncello
