// The Hard Limoncello hysteresis state machine (paper Fig. 8).
//
// Two forms of hysteresis keep the controller from chasing bandwidth
// bursts (paper §3, "Design"):
//   1. separate upper (disable) and lower (re-enable) thresholds, and
//   2. a sustain duration Δ the signal must hold beyond a threshold
//      before the controller changes prefetcher state.
// Any excursion back across the arming threshold resets the timer.
//
// The controller is a pure decision component: it consumes one utilization
// sample per tick and emits the action to take. Actuation (MSR writes) and
// telemetry live elsewhere, which keeps this class exhaustively testable.
#ifndef LIMONCELLO_CORE_HYSTERESIS_CONTROLLER_H_
#define LIMONCELLO_CORE_HYSTERESIS_CONTROLLER_H_

#include <cstdint>

#include "core/controller_config.h"
#include "stats/saturating.h"
#include "util/units.h"

namespace limoncello {

enum class ControllerState {
  kEnabledSteady,    // PF on,  membw below UT
  kEnabledArming,    // PF on,  membw above UT, timer running
  kDisabledSteady,   // PF off, membw above LT
  kDisabledArming,   // PF off, membw below LT, timer running
};

const char* ControllerStateName(ControllerState state);

enum class ControllerAction {
  kNone,
  kDisablePrefetchers,
  kEnablePrefetchers,
};

class HysteresisController {
 public:
  explicit HysteresisController(const ControllerConfig& config);

  // Feeds one telemetry sample (utilization as a fraction of saturation)
  // covering one tick period; returns the action to apply *now*.
  ControllerAction Tick(double utilization);

  // Resets to the power-on state (prefetchers enabled, timer clear).
  // Used by the daemon's fail-safe path.
  void Reset();

  // Adopts a state snapshot recovered from a journal. The snapshot is
  // untrusted input: the enum must name a real state and the timer must
  // satisfy the FSM's invariants (zero in steady states, inside the
  // sustain window while arming). Returns false — leaving the controller
  // untouched — on any violation.
  bool RestoreState(ControllerState state, SimTimeNs timer_ns,
                    std::uint64_t toggle_count);

  ControllerState state() const { return state_; }
  bool PrefetchersShouldBeEnabled() const {
    return state_ == ControllerState::kEnabledSteady ||
           state_ == ControllerState::kEnabledArming;
  }
  SimTimeNs timer_ns() const { return timer_ns_; }
  std::uint64_t toggle_count() const { return toggle_count_; }
  const ControllerConfig& config() const { return config_; }

 private:
  ControllerConfig config_;
  ControllerState state_ = ControllerState::kEnabledSteady;
  SimTimeNs timer_ns_ = 0;
  SatCounter toggle_count_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_CORE_HYSTERESIS_CONTROLLER_H_
