// The Limoncello controller daemon: telemetry → FSM → actuation.
//
// One daemon instance manages one socket. Each tick (1 s in production) it
// samples memory-bandwidth utilization, advances the hysteresis FSM, and
// applies any resulting prefetcher toggle via the actuator.
//
// Robustness behaviour (beyond the paper's happy path, but required for a
// deployable daemon — exercised by the fault injector in src/faults/):
//   * Missing/invalid telemetry: non-finite, negative, or implausibly
//     large samples are rejected; after max_missed_samples consecutive
//     failures the daemon fails safe — prefetchers are forced back on
//     (the hardware default) and the FSM resets.
//   * Stale telemetry: a sample bit-identical to the previous one
//     max_stale_samples times in a row is treated as a frozen exporter
//     and rejected (feeding the same fail-safe path).
//   * Failed actuation (core offline, MSR write error): the intent is
//     remembered and retried with capped exponential backoff until it
//     succeeds.
//   * Silent state loss (reboot to BIOS default): every
//     readback_period_ticks the hardware state is read back through the
//     actuator and the FSM's intent re-asserted on mismatch.
#ifndef LIMONCELLO_CORE_DAEMON_H_
#define LIMONCELLO_CORE_DAEMON_H_

#include <cstdint>

#include "core/actuator.h"
#include "core/hysteresis_controller.h"
#include "stats/saturating.h"
#include "stats/time_series.h"
#include "telemetry/telemetry.h"

namespace limoncello {

// Outcome of reconciling journal-recovered intent against the hardware
// on warm restart (LimoncelloDaemon::ReconcileHardwareState).
enum class ReconcileStatus {
  kUnknown,     // actuator cannot read back; the restored intent stands
  kMatched,     // hardware already agrees with the restored intent
  kReasserted,  // mismatch: the intent was re-applied successfully
  kRetryArmed,  // mismatch: re-apply failed, backoff retry armed
};

const char* ReconcileStatusName(ReconcileStatus status);

class LimoncelloDaemon {
 public:
  struct TickRecord {
    SimTimeNs time_ns = 0;
    double utilization = 0.0;     // NaN-free; 0 when sample missing
    bool sample_ok = false;
    ControllerAction action = ControllerAction::kNone;
    ControllerState state = ControllerState::kEnabledSteady;
    bool actuation_ok = true;
  };

  // Counters saturate at 2^64-1 instead of silently wrapping: a pinned
  // max value in a fleet dashboard is a visible anomaly, a wrapped small
  // value is a plausible lie (stats/saturating.h).
  struct Stats {
    SatCounter ticks;
    SatCounter missed_samples;
    SatCounter invalid_samples;  // non-finite / out of range
    SatCounter stale_samples;    // frozen-exporter rejections
    SatCounter failsafe_resets;
    SatCounter actuation_failures;
    SatCounter retry_backoff_skips;  // ticks spent waiting to retry
    SatCounter reboots_detected;     // readback mismatches
    SatCounter state_reasserts;      // successful re-assertions
    SatCounter disables;
    SatCounter enables;
    SatCounter warm_restores;        // journal snapshots adopted
    SatCounter recovery_reconciles;  // restored intent != hardware

    bool operator==(const Stats&) const = default;
  };

  // Everything a warm restart must carry across a daemon process death:
  // the FSM, the actuation-retry machinery, the sample-validation state,
  // and the cumulative Stats. Plain data; src/recovery/ serializes it.
  // Restored values are validated field by field, never trusted.
  struct PersistentState {
    ControllerState controller_state = ControllerState::kEnabledSteady;
    SimTimeNs timer_ns = 0;
    std::uint64_t toggle_count = 0;
    ControllerAction pending_retry = ControllerAction::kNone;
    int retry_delay_ticks = 1;
    int retry_wait_ticks = 0;
    int consecutive_missed = 0;
    std::uint64_t last_sample_bits = 0;
    bool have_last_sample = false;
    int stale_run = 0;
    Stats stats;

    bool operator==(const PersistentState&) const = default;
  };

  // `telemetry` and `actuator` must outlive the daemon.
  LimoncelloDaemon(const ControllerConfig& config,
                   UtilizationSource* telemetry, PrefetchActuator* actuator);

  // Executes one controller tick at the given simulated time.
  TickRecord RunTick(SimTimeNs now_ns);

  // Snapshot of the state a warm restart needs (journaled by
  // RecoveryManager after actuations and periodically).
  PersistentState ExportState() const;

  // Adopts a recovered snapshot. Every field is validated against the
  // config's invariants (enum ranges, backoff <= cap, counters below
  // their trip points); on any violation the daemon is left in its
  // cold-start state and false is returned — corrupt journals degrade
  // to a cold start, never to a daemon running impossible state.
  // On success the state listener (if any) is told the restored intent.
  bool RestoreState(const PersistentState& state);

  // Warm-restart reconciliation: reads the hardware prefetcher state
  // back through the actuator and compares it with the FSM's (possibly
  // just-restored) intent. The journal holds *intent* distilled from
  // telemetry history, so on mismatch the hardware is moved to match
  // the journal, not vice versa (see DESIGN.md §11); a failed re-assert
  // arms the standard backoff retry. Call before resuming RunTick.
  ReconcileStatus ReconcileHardwareState();

  // Observer invoked after every *successful* prefetcher-state change
  // (true = enabled). This is how Soft Limoncello learns the hardware
  // state (wire it to SoftPrefetchRuntime::SetHwPrefetchersEnabled).
  using StateListener = std::function<void(bool prefetchers_enabled)>;
  void SetStateListener(StateListener listener) {
    state_listener_ = std::move(listener);
  }

  const HysteresisController& controller() const { return controller_; }
  const Stats& stats() const { return stats_; }

  // 1 = prefetchers commanded on, 0 = commanded off (for Fig. 9 traces).
  const TimeSeries& state_trace() const { return state_trace_; }
  const TimeSeries& utilization_trace() const { return utilization_trace_; }

  // Trace recording is on by default (figure tools and tests read the
  // traces). The fleet simulator turns it off: appending two TimeSeries
  // points per tick is the only allocation in an otherwise alloc-free
  // machine-tick, and at fleet scale the buffers would grow unbounded.
  void set_trace_recording(bool enabled) { trace_recording_ = enabled; }

 private:
  bool Actuate(ControllerAction action);
  // Runs the pending-retry state machine (backoff countdown + retry).
  void TickPendingRetry();
  // Records a fresh actuation failure and arms the first retry.
  void ArmRetry(ControllerAction action);
  // Sample validation: non-finite/out-of-range and frozen-exporter
  // rejection. Returns nullopt (and bumps the matching counter) when the
  // sample must be treated as missed.
  std::optional<double> ValidateSample(std::optional<double> sample);
  // Periodic MSR readback: detect a silently reset state and re-assert.
  void MaybeReadback();

  // Validation helper for RestoreState: true when every field of the
  // snapshot satisfies this daemon's config invariants.
  bool StateRestorable(const PersistentState& state) const;

  ControllerConfig config_;
  UtilizationSource* telemetry_;
  PrefetchActuator* actuator_;
  HysteresisController controller_;
  Stats stats_;
  int consecutive_missed_ = 0;
  // Pending actuation that previously failed and must be retried.
  ControllerAction pending_retry_ = ControllerAction::kNone;
  int retry_delay_ticks_ = 1;  // current backoff step
  int retry_wait_ticks_ = 0;   // ticks left before the next attempt
  // Stale-sample detection: bit pattern of the last accepted sample and
  // the length of the current identical run.
  std::uint64_t last_sample_bits_ = 0;
  bool have_last_sample_ = false;
  int stale_run_ = 0;
  StateListener state_listener_;
  bool trace_recording_ = true;
  TimeSeries state_trace_;
  TimeSeries utilization_trace_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_CORE_DAEMON_H_
