// The Limoncello controller daemon: telemetry → FSM → actuation.
//
// One daemon instance manages one socket. Each tick (1 s in production) it
// samples memory-bandwidth utilization, advances the hysteresis FSM, and
// applies any resulting prefetcher toggle via the actuator.
//
// Robustness behaviour (beyond the paper's happy path, but required for a
// deployable daemon):
//   * Missing/invalid telemetry: after max_missed_samples consecutive
//     failures the daemon fails safe — prefetchers are forced back on
//     (the hardware default) and the FSM resets.
//   * Failed actuation (core offline, MSR write error): the intent is
//     remembered and retried on subsequent ticks until it succeeds.
#ifndef LIMONCELLO_CORE_DAEMON_H_
#define LIMONCELLO_CORE_DAEMON_H_

#include <cstdint>

#include "core/actuator.h"
#include "core/hysteresis_controller.h"
#include "stats/time_series.h"
#include "telemetry/telemetry.h"

namespace limoncello {

class LimoncelloDaemon {
 public:
  struct TickRecord {
    SimTimeNs time_ns = 0;
    double utilization = 0.0;     // NaN-free; 0 when sample missing
    bool sample_ok = false;
    ControllerAction action = ControllerAction::kNone;
    ControllerState state = ControllerState::kEnabledSteady;
    bool actuation_ok = true;
  };

  struct Stats {
    std::uint64_t ticks = 0;
    std::uint64_t missed_samples = 0;
    std::uint64_t failsafe_resets = 0;
    std::uint64_t actuation_failures = 0;
    std::uint64_t disables = 0;
    std::uint64_t enables = 0;
  };

  // `telemetry` and `actuator` must outlive the daemon.
  LimoncelloDaemon(const ControllerConfig& config,
                   UtilizationSource* telemetry, PrefetchActuator* actuator);

  // Executes one controller tick at the given simulated time.
  TickRecord RunTick(SimTimeNs now_ns);

  // Observer invoked after every *successful* prefetcher-state change
  // (true = enabled). This is how Soft Limoncello learns the hardware
  // state (wire it to SoftPrefetchRuntime::SetHwPrefetchersEnabled).
  using StateListener = std::function<void(bool prefetchers_enabled)>;
  void SetStateListener(StateListener listener) {
    state_listener_ = std::move(listener);
  }

  const HysteresisController& controller() const { return controller_; }
  const Stats& stats() const { return stats_; }

  // 1 = prefetchers commanded on, 0 = commanded off (for Fig. 9 traces).
  const TimeSeries& state_trace() const { return state_trace_; }
  const TimeSeries& utilization_trace() const { return utilization_trace_; }

 private:
  bool Actuate(ControllerAction action);

  ControllerConfig config_;
  UtilizationSource* telemetry_;
  PrefetchActuator* actuator_;
  HysteresisController controller_;
  Stats stats_;
  int consecutive_missed_ = 0;
  // Pending actuation that previously failed and must be retried.
  ControllerAction pending_retry_ = ControllerAction::kNone;
  StateListener state_listener_;
  TimeSeries state_trace_;
  TimeSeries utilization_trace_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_CORE_DAEMON_H_
