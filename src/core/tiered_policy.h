// Tiered prefetcher modulation — an experimental extension beyond the
// paper (§8.1/§8.3 future-work direction: finer-grained collaboration).
//
// Instead of Limoncello's binary all-on/all-off decision, the tiered
// policy inserts a middle tier that disables only the *noisy* engines
// (the L1 next-line streamer and L2 adjacent-line — high traffic, low
// accuracy on scattered access) while keeping the *targeted* engines
// (IP-stride, L2 stream detector) running:
//
//   tier 0: all engines on           (low utilization)
//   tier 1: noisy engines off        (moderate utilization)
//   tier 2: all engines off          (high utilization — Hard Limoncello)
//
// Built by stacking two HysteresisControllers with nested thresholds, so
// every transition inherits the paper's two-axis hysteresis.
#ifndef LIMONCELLO_CORE_TIERED_POLICY_H_
#define LIMONCELLO_CORE_TIERED_POLICY_H_

#include "core/hysteresis_controller.h"
#include "msr/prefetch_control.h"

namespace limoncello {

struct TieredPolicyConfig {
  // Tier-1 thresholds (noisy engines): trip earlier.
  ControllerConfig noisy;
  // Tier-2 thresholds (everything): the standard Hard Limoncello pair.
  ControllerConfig all;

  static TieredPolicyConfig Default() {
    TieredPolicyConfig config;
    config.noisy.lower_threshold = 0.45;
    config.noisy.upper_threshold = 0.65;
    config.all.lower_threshold = 0.60;
    config.all.upper_threshold = 0.80;
    return config;
  }

  bool Valid() const { return noisy.Valid() && all.Valid(); }
};

class TieredPolicy {
 public:
  // `control` must outlive the policy; expected_cpus as in the actuator.
  TieredPolicy(const TieredPolicyConfig& config, PrefetchControl* control,
               int expected_cpus);

  // Feeds one utilization sample; applies any tier change via per-engine
  // MSR writes. Returns the tier now in effect (0, 1, or 2).
  int Tick(double utilization);

  int tier() const { return tier_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  // Applies the engine states for a tier; returns true on full success.
  bool Apply(int tier);

  TieredPolicyConfig config_;
  PrefetchControl* control_;
  int expected_cpus_;
  HysteresisController noisy_controller_;
  HysteresisController all_controller_;
  int tier_ = 0;
  std::uint64_t transitions_ = 0;
};

}  // namespace limoncello

#endif  // LIMONCELLO_CORE_TIERED_POLICY_H_
