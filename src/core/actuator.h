// Prefetcher actuation interface and the MSR-backed implementation.
#ifndef LIMONCELLO_CORE_ACTUATOR_H_
#define LIMONCELLO_CORE_ACTUATOR_H_

#include "msr/prefetch_control.h"

namespace limoncello {

// Applies the controller's decision to the hardware. Implementations must
// be idempotent; the daemon retries failed actuations on later ticks.
class PrefetchActuator {
 public:
  virtual ~PrefetchActuator() = default;

  // Returns true when the new state was applied to every core.
  [[nodiscard]] virtual bool DisablePrefetchers() = 0;
  [[nodiscard]] virtual bool EnablePrefetchers() = 0;

  // Readback: does the hardware state match `want_enabled`? nullopt when
  // the actuator cannot read back (test doubles, dry-run). The daemon
  // polls this periodically to detect reboots that silently restored the
  // BIOS default.
  virtual std::optional<bool> StateMatches(bool want_enabled) {
    (void)want_enabled;
    return std::nullopt;
  }
};

// Actuates through per-core MSR writes (the deployment path, paper §3
// "Actuating Prefetcher Controls").
class MsrPrefetchActuator : public PrefetchActuator {
 public:
  // `control` must outlive the actuator. expected_cpus is the number of
  // CPUs that must acknowledge a write for it to count as success.
  MsrPrefetchActuator(PrefetchControl* control, int expected_cpus);

  [[nodiscard]] bool DisablePrefetchers() override;
  [[nodiscard]] bool EnablePrefetchers() override;
  std::optional<bool> StateMatches(bool want_enabled) override;

 private:
  PrefetchControl* control_;
  int expected_cpus_;
};

}  // namespace limoncello

#endif  // LIMONCELLO_CORE_ACTUATOR_H_
