#include "core/actuator.h"

#include "util/check.h"

namespace limoncello {

MsrPrefetchActuator::MsrPrefetchActuator(PrefetchControl* control,
                                         int expected_cpus)
    : control_(control), expected_cpus_(expected_cpus) {
  LIMONCELLO_CHECK(control != nullptr);
  LIMONCELLO_CHECK_GT(expected_cpus, 0);
}

bool MsrPrefetchActuator::DisablePrefetchers() {
  return control_->DisableAll() == expected_cpus_;
}

bool MsrPrefetchActuator::EnablePrefetchers() {
  return control_->EnableAll() == expected_cpus_;
}

std::optional<bool> MsrPrefetchActuator::StateMatches(bool want_enabled) {
  return want_enabled ? control_->AllEnabled() : control_->AllDisabled();
}

}  // namespace limoncello
