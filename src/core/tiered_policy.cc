#include "core/tiered_policy.h"

#include "util/check.h"

namespace limoncello {

TieredPolicy::TieredPolicy(const TieredPolicyConfig& config,
                           PrefetchControl* control, int expected_cpus)
    : config_(config),
      control_(control),
      expected_cpus_(expected_cpus),
      noisy_controller_(config.noisy),
      all_controller_(config.all) {
  LIMONCELLO_CHECK(config.Valid());
  LIMONCELLO_CHECK(control != nullptr);
  LIMONCELLO_CHECK_GT(expected_cpus, 0);
  // The tiers must nest: the all-off thresholds sit above the noisy-off
  // thresholds, otherwise tier 2 could engage before tier 1.
  LIMONCELLO_CHECK_LE(config.noisy.upper_threshold,
                      config.all.upper_threshold);
  LIMONCELLO_CHECK_LE(config.noisy.lower_threshold,
                      config.all.lower_threshold);
}

bool TieredPolicy::Apply(int tier) {
  const bool noisy_on = tier < 1;
  const bool targeted_on = tier < 2;
  int ok = 0;
  ok += control_->SetEngine(PrefetchEngine::kDcuStreamer, noisy_on) ==
                expected_cpus_
            ? 1
            : 0;
  ok += control_->SetEngine(PrefetchEngine::kL2AdjacentLine, noisy_on) ==
                expected_cpus_
            ? 1
            : 0;
  ok += control_->SetEngine(PrefetchEngine::kDcuIpStride, targeted_on) ==
                expected_cpus_
            ? 1
            : 0;
  ok += control_->SetEngine(PrefetchEngine::kL2Stream, targeted_on) ==
                expected_cpus_
            ? 1
            : 0;
  return ok == 4;
}

int TieredPolicy::Tick(double utilization) {
  // Both controllers see every sample; their independent hysteresis
  // determines each tier boundary.
  noisy_controller_.Tick(utilization);
  all_controller_.Tick(utilization);
  int desired = 0;
  if (!all_controller_.PrefetchersShouldBeEnabled()) {
    desired = 2;
  } else if (!noisy_controller_.PrefetchersShouldBeEnabled()) {
    desired = 1;
  }
  if (desired != tier_) {
    Apply(desired);
    tier_ = desired;
    ++transitions_;
  }
  return tier_;
}

}  // namespace limoncello
