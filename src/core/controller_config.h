// Configuration for the Hard Limoncello controller.
#ifndef LIMONCELLO_CORE_CONTROLLER_CONFIG_H_
#define LIMONCELLO_CORE_CONTROLLER_CONFIG_H_

#include <string>
#include <vector>

#include "util/units.h"

namespace limoncello {

// Thresholds are fractions of the platform's memory-bandwidth saturation
// threshold (the machine-qualification capacity, paper §3 "Thresholds").
// The deployed configuration is 60 % lower / 80 % upper (paper §5).
struct ControllerConfig {
  double upper_threshold = 0.80;  // disable prefetchers above this
  double lower_threshold = 0.60;  // re-enable prefetchers below this

  // Δ: how long utilization must stay beyond a threshold before the
  // controller acts (hysteresis in time, paper Fig. 8).
  SimTimeNs sustain_duration_ns = 5 * kNsPerSec;

  // Telemetry cadence (paper: perf sampled every 1 s).
  SimTimeNs tick_period_ns = 1 * kNsPerSec;

  // Daemon fail-safe: after this many consecutive missing/invalid
  // telemetry samples, force prefetchers back on and reset.
  int max_missed_samples = 5;

  // Failed actuations are retried with exponential backoff: 1 tick after
  // the first failure, then doubling up to this cap (1 = retry every
  // tick, the pre-backoff behaviour).
  int retry_backoff_cap_ticks = 8;

  // A sample bit-identical to the previous one this many consecutive
  // times is treated as a frozen exporter and rejected (counts toward
  // max_missed_samples). Real utilization telemetry always jitters.
  int max_stale_samples = 8;

  // Every this many ticks the daemon reads the prefetcher state back
  // through the actuator and re-asserts its intent on mismatch (detects
  // reboots that silently restored the BIOS default). 0 disables.
  int readback_period_ticks = 16;

  // Every constraint violated, as a human-readable message naming the
  // field and the bound. Empty means the config is usable. limoncellod
  // prints this list and refuses to start rather than misbehave at tick
  // time with, say, an inverted hysteresis band.
  std::vector<std::string> Validate() const {
    std::vector<std::string> errors;
    if (!(upper_threshold > lower_threshold)) {
      errors.push_back(
          "upper_threshold (" + std::to_string(upper_threshold) +
          ") must be strictly greater than lower_threshold (" +
          std::to_string(lower_threshold) + ")");
    }
    if (lower_threshold < 0.0) {
      errors.push_back("lower_threshold (" +
                       std::to_string(lower_threshold) +
                       ") must be >= 0");
    }
    if (upper_threshold > 1.5) {
      errors.push_back("upper_threshold (" +
                       std::to_string(upper_threshold) +
                       ") must be <= 1.5 (fraction of saturation)");
    }
    if (sustain_duration_ns < 0) {
      errors.push_back("sustain_duration_ns (" +
                       std::to_string(sustain_duration_ns) +
                       ") must be >= 0");
    }
    if (tick_period_ns <= 0) {
      errors.push_back("tick_period_ns (" +
                       std::to_string(tick_period_ns) +
                       ") must be > 0");
    }
    if (max_missed_samples <= 0) {
      errors.push_back("max_missed_samples (" +
                       std::to_string(max_missed_samples) +
                       ") must be >= 1");
    }
    if (retry_backoff_cap_ticks < 1) {
      errors.push_back("retry_backoff_cap_ticks (" +
                       std::to_string(retry_backoff_cap_ticks) +
                       ") must be >= 1 (1 = retry every tick)");
    }
    if (max_stale_samples <= 0) {
      errors.push_back("max_stale_samples (" +
                       std::to_string(max_stale_samples) +
                       ") must be >= 1");
    }
    if (readback_period_ticks < 0) {
      errors.push_back("readback_period_ticks (" +
                       std::to_string(readback_period_ticks) +
                       ") must be >= 0 (0 disables readback)");
    }
    return errors;
  }

  bool Valid() const { return Validate().empty(); }
};

}  // namespace limoncello

#endif  // LIMONCELLO_CORE_CONTROLLER_CONFIG_H_
