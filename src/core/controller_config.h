// Configuration for the Hard Limoncello controller.
#ifndef LIMONCELLO_CORE_CONTROLLER_CONFIG_H_
#define LIMONCELLO_CORE_CONTROLLER_CONFIG_H_

#include "util/units.h"

namespace limoncello {

// Thresholds are fractions of the platform's memory-bandwidth saturation
// threshold (the machine-qualification capacity, paper §3 "Thresholds").
// The deployed configuration is 60 % lower / 80 % upper (paper §5).
struct ControllerConfig {
  double upper_threshold = 0.80;  // disable prefetchers above this
  double lower_threshold = 0.60;  // re-enable prefetchers below this

  // Δ: how long utilization must stay beyond a threshold before the
  // controller acts (hysteresis in time, paper Fig. 8).
  SimTimeNs sustain_duration_ns = 5 * kNsPerSec;

  // Telemetry cadence (paper: perf sampled every 1 s).
  SimTimeNs tick_period_ns = 1 * kNsPerSec;

  // Daemon fail-safe: after this many consecutive missing/invalid
  // telemetry samples, force prefetchers back on and reset.
  int max_missed_samples = 5;

  // Failed actuations are retried with exponential backoff: 1 tick after
  // the first failure, then doubling up to this cap (1 = retry every
  // tick, the pre-backoff behaviour).
  int retry_backoff_cap_ticks = 8;

  // A sample bit-identical to the previous one this many consecutive
  // times is treated as a frozen exporter and rejected (counts toward
  // max_missed_samples). Real utilization telemetry always jitters.
  int max_stale_samples = 8;

  // Every this many ticks the daemon reads the prefetcher state back
  // through the actuator and re-asserts its intent on mismatch (detects
  // reboots that silently restored the BIOS default). 0 disables.
  int readback_period_ticks = 16;

  bool Valid() const {
    return upper_threshold > lower_threshold && lower_threshold >= 0.0 &&
           upper_threshold <= 1.5 && sustain_duration_ns >= 0 &&
           tick_period_ns > 0 && max_missed_samples > 0 &&
           retry_backoff_cap_ticks > 0 && max_stale_samples > 0 &&
           readback_period_ticks >= 0;
  }
};

}  // namespace limoncello

#endif  // LIMONCELLO_CORE_CONTROLLER_CONFIG_H_
