#include "core/daemon.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace limoncello {

namespace {

// Utilization is a fraction of the saturation threshold; sockets can
// burst past 1.0, but an order of magnitude beyond is telemetry garbage
// (matches FileUtilizationSource's accepted range).
constexpr double kMaxPlausibleUtilization = 10.0;

}  // namespace

const char* ReconcileStatusName(ReconcileStatus status) {
  switch (status) {
    case ReconcileStatus::kUnknown:
      return "unknown";
    case ReconcileStatus::kMatched:
      return "matched";
    case ReconcileStatus::kReasserted:
      return "reasserted";
    case ReconcileStatus::kRetryArmed:
      return "retry_armed";
  }
  return "invalid";
}

LimoncelloDaemon::LimoncelloDaemon(const ControllerConfig& config,
                                   UtilizationSource* telemetry,
                                   PrefetchActuator* actuator)
    : config_(config),
      telemetry_(telemetry),
      actuator_(actuator),
      controller_(config) {
  LIMONCELLO_CHECK(telemetry != nullptr);
  LIMONCELLO_CHECK(actuator != nullptr);
}

bool LimoncelloDaemon::Actuate(ControllerAction action) {
  bool ok = true;
  switch (action) {
    case ControllerAction::kNone:
      return true;
    case ControllerAction::kDisablePrefetchers:
      ++stats_.disables;
      ok = actuator_->DisablePrefetchers();
      if (ok && state_listener_) state_listener_(false);
      return ok;
    case ControllerAction::kEnablePrefetchers:
      ++stats_.enables;
      ok = actuator_->EnablePrefetchers();
      if (ok && state_listener_) state_listener_(true);
      return ok;
  }
  LIMONCELLO_CHECK(false);
  return false;
}

void LimoncelloDaemon::ArmRetry(ControllerAction action) {
  ++stats_.actuation_failures;
  pending_retry_ = action;
  retry_delay_ticks_ = 1;
  retry_wait_ticks_ = 0;  // first retry on the very next tick
}

void LimoncelloDaemon::TickPendingRetry() {
  if (pending_retry_ == ControllerAction::kNone) return;
  if (retry_wait_ticks_ > 0) {
    --retry_wait_ticks_;
    ++stats_.retry_backoff_skips;
    return;
  }
  if (Actuate(pending_retry_)) {
    pending_retry_ = ControllerAction::kNone;
    retry_delay_ticks_ = 1;
    return;
  }
  // Still failing: back off exponentially up to the cap so a persistent
  // fault does not turn every tick into an MSR write storm.
  ++stats_.actuation_failures;
  retry_delay_ticks_ =
      std::min(retry_delay_ticks_ * 2, config_.retry_backoff_cap_ticks);
  retry_wait_ticks_ = retry_delay_ticks_ - 1;
}

std::optional<double> LimoncelloDaemon::ValidateSample(
    std::optional<double> sample) {
  if (!sample.has_value()) {
    // A gap breaks a stale run: the detector targets a pipeline that
    // keeps returning the same reading every single tick.
    stale_run_ = 0;
    have_last_sample_ = false;
    return std::nullopt;
  }
  if (!std::isfinite(*sample) || *sample < 0.0 ||
      *sample > kMaxPlausibleUtilization) {
    ++stats_.invalid_samples;
    return std::nullopt;
  }
  // Frozen-exporter detection: real utilization telemetry always
  // jitters, so a long bit-identical run means the value is stale even
  // though it still parses. Compare bit patterns, not values, so e.g.
  // a legitimately saturated 1.0 plateau with real jitter still passes.
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(double));
  std::memcpy(&bits, &*sample, sizeof(bits));
  if (have_last_sample_ && bits == last_sample_bits_) {
    if (++stale_run_ >= config_.max_stale_samples) {
      ++stats_.stale_samples;
      return std::nullopt;
    }
  } else {
    stale_run_ = 0;
    last_sample_bits_ = bits;
    have_last_sample_ = true;
  }
  return sample;
}

void LimoncelloDaemon::MaybeReadback() {
  if (config_.readback_period_ticks <= 0) return;
  if (pending_retry_ != ControllerAction::kNone) return;  // already known
  if (stats_.ticks %
          static_cast<std::uint64_t>(config_.readback_period_ticks) !=
      0) {
    return;
  }
  const bool want = controller_.PrefetchersShouldBeEnabled();
  const std::optional<bool> matches = actuator_->StateMatches(want);
  if (!matches.has_value() || *matches) return;
  // The hardware lost our state (most likely a reboot restored the BIOS
  // default): re-assert the FSM's intent.
  ++stats_.reboots_detected;
  const ControllerAction reassert =
      want ? ControllerAction::kEnablePrefetchers
           : ControllerAction::kDisablePrefetchers;
  if (Actuate(reassert)) {
    ++stats_.state_reasserts;
  } else {
    ArmRetry(reassert);
  }
}

LimoncelloDaemon::PersistentState LimoncelloDaemon::ExportState() const {
  PersistentState state;
  state.controller_state = controller_.state();
  state.timer_ns = controller_.timer_ns();
  state.toggle_count = controller_.toggle_count();
  state.pending_retry = pending_retry_;
  state.retry_delay_ticks = retry_delay_ticks_;
  state.retry_wait_ticks = retry_wait_ticks_;
  state.consecutive_missed = consecutive_missed_;
  state.last_sample_bits = last_sample_bits_;
  state.have_last_sample = have_last_sample_;
  state.stale_run = stale_run_;
  state.stats = stats_;
  return state;
}

bool LimoncelloDaemon::StateRestorable(const PersistentState& state) const {
  switch (state.pending_retry) {
    case ControllerAction::kNone:
    case ControllerAction::kDisablePrefetchers:
    case ControllerAction::kEnablePrefetchers:
      break;
    default:
      return false;  // decoded from disk; may be any bit pattern
  }
  if (state.retry_delay_ticks < 1 ||
      state.retry_delay_ticks > config_.retry_backoff_cap_ticks) {
    return false;
  }
  // The wait countdown is always armed below the current delay step.
  if (state.retry_wait_ticks < 0 ||
      state.retry_wait_ticks >= state.retry_delay_ticks) {
    return false;
  }
  // consecutive_missed_ resets the instant it reaches the trip point, so
  // a persisted value at or past it is impossible. stale_run_ by contrast
  // keeps counting through a long freeze — only its sign is constrained.
  if (state.consecutive_missed < 0 ||
      state.consecutive_missed >= config_.max_missed_samples) {
    return false;
  }
  if (state.stale_run < 0) return false;
  return true;
}

bool LimoncelloDaemon::RestoreState(const PersistentState& state) {
  if (!StateRestorable(state)) return false;
  // Controller last: its RestoreState mutates on success, so every other
  // field must already have been vetted.
  if (!controller_.RestoreState(state.controller_state, state.timer_ns,
                                state.toggle_count)) {
    return false;
  }
  pending_retry_ = state.pending_retry;
  retry_delay_ticks_ = state.retry_delay_ticks;
  retry_wait_ticks_ = state.retry_wait_ticks;
  consecutive_missed_ = state.consecutive_missed;
  last_sample_bits_ = state.last_sample_bits;
  have_last_sample_ = state.have_last_sample;
  stale_run_ = state.stale_run;
  stats_ = state.stats;
  ++stats_.warm_restores;
  if (state_listener_) {
    state_listener_(controller_.PrefetchersShouldBeEnabled());
  }
  return true;
}

ReconcileStatus LimoncelloDaemon::ReconcileHardwareState() {
  const bool want = controller_.PrefetchersShouldBeEnabled();
  const std::optional<bool> matches = actuator_->StateMatches(want);
  if (!matches.has_value()) return ReconcileStatus::kUnknown;
  if (*matches) return ReconcileStatus::kMatched;
  ++stats_.recovery_reconciles;
  const ControllerAction reassert =
      want ? ControllerAction::kEnablePrefetchers
           : ControllerAction::kDisablePrefetchers;
  if (Actuate(reassert)) {
    // A successful re-assert supersedes any restored pending retry.
    pending_retry_ = ControllerAction::kNone;
    retry_delay_ticks_ = 1;
    return ReconcileStatus::kReasserted;
  }
  ArmRetry(reassert);
  return ReconcileStatus::kRetryArmed;
}

LimoncelloDaemon::TickRecord LimoncelloDaemon::RunTick(SimTimeNs now_ns) {
  TickRecord record;
  record.time_ns = now_ns;
  ++stats_.ticks;

  // Retry a previously failed actuation before anything else so the
  // hardware state converges to the FSM's view.
  TickPendingRetry();

  const std::optional<double> sample =
      ValidateSample(telemetry_->SampleUtilization());
  if (!sample.has_value()) {
    ++stats_.missed_samples;
    ++consecutive_missed_;
    if (consecutive_missed_ >= config_.max_missed_samples) {
      // Fail safe: force the hardware default (prefetchers enabled).
      consecutive_missed_ = 0;
      ++stats_.failsafe_resets;
      if (!controller_.PrefetchersShouldBeEnabled() ||
          pending_retry_ != ControllerAction::kNone) {
        if (Actuate(ControllerAction::kEnablePrefetchers)) {
          pending_retry_ = ControllerAction::kNone;
          retry_delay_ticks_ = 1;
        } else {
          ArmRetry(ControllerAction::kEnablePrefetchers);
        }
      }
      controller_.Reset();
    }
    record.sample_ok = false;
    record.state = controller_.state();
    if (trace_recording_) {
      state_trace_.Add(
          now_ns, controller_.PrefetchersShouldBeEnabled() ? 1.0 : 0.0);
    }
    return record;
  }

  consecutive_missed_ = 0;
  record.sample_ok = true;
  record.utilization = *sample;
  record.action = controller_.Tick(*sample);
  record.state = controller_.state();
  if (record.action != ControllerAction::kNone) {
    record.actuation_ok = Actuate(record.action);
    if (record.actuation_ok) {
      // A fresh successful actuation supersedes any backed-off retry.
      pending_retry_ = ControllerAction::kNone;
      retry_delay_ticks_ = 1;
    } else {
      ArmRetry(record.action);
    }
  }
  MaybeReadback();
  if (trace_recording_) {
    utilization_trace_.Add(now_ns, *sample);
    state_trace_.Add(now_ns,
                     controller_.PrefetchersShouldBeEnabled() ? 1.0 : 0.0);
  }
  return record;
}

}  // namespace limoncello
