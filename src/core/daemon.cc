#include "core/daemon.h"

#include "util/check.h"

namespace limoncello {

LimoncelloDaemon::LimoncelloDaemon(const ControllerConfig& config,
                                   UtilizationSource* telemetry,
                                   PrefetchActuator* actuator)
    : config_(config),
      telemetry_(telemetry),
      actuator_(actuator),
      controller_(config) {
  LIMONCELLO_CHECK(telemetry != nullptr);
  LIMONCELLO_CHECK(actuator != nullptr);
}

bool LimoncelloDaemon::Actuate(ControllerAction action) {
  bool ok = true;
  switch (action) {
    case ControllerAction::kNone:
      return true;
    case ControllerAction::kDisablePrefetchers:
      ++stats_.disables;
      ok = actuator_->DisablePrefetchers();
      if (ok && state_listener_) state_listener_(false);
      return ok;
    case ControllerAction::kEnablePrefetchers:
      ++stats_.enables;
      ok = actuator_->EnablePrefetchers();
      if (ok && state_listener_) state_listener_(true);
      return ok;
  }
  LIMONCELLO_CHECK(false);
  return false;
}

LimoncelloDaemon::TickRecord LimoncelloDaemon::RunTick(SimTimeNs now_ns) {
  TickRecord record;
  record.time_ns = now_ns;
  ++stats_.ticks;

  // Retry a previously failed actuation before anything else so the
  // hardware state converges to the FSM's view.
  if (pending_retry_ != ControllerAction::kNone) {
    if (Actuate(pending_retry_)) {
      pending_retry_ = ControllerAction::kNone;
    } else {
      ++stats_.actuation_failures;
    }
  }

  const std::optional<double> sample = telemetry_->SampleUtilization();
  if (!sample.has_value() || *sample < 0.0) {
    ++stats_.missed_samples;
    ++consecutive_missed_;
    if (consecutive_missed_ >= config_.max_missed_samples) {
      // Fail safe: force the hardware default (prefetchers enabled).
      consecutive_missed_ = 0;
      ++stats_.failsafe_resets;
      if (!controller_.PrefetchersShouldBeEnabled() ||
          pending_retry_ != ControllerAction::kNone) {
        if (Actuate(ControllerAction::kEnablePrefetchers)) {
          pending_retry_ = ControllerAction::kNone;
        } else {
          ++stats_.actuation_failures;
          pending_retry_ = ControllerAction::kEnablePrefetchers;
        }
      }
      controller_.Reset();
    }
    record.sample_ok = false;
    record.state = controller_.state();
    state_trace_.Add(now_ns,
                     controller_.PrefetchersShouldBeEnabled() ? 1.0 : 0.0);
    return record;
  }

  consecutive_missed_ = 0;
  record.sample_ok = true;
  record.utilization = *sample;
  record.action = controller_.Tick(*sample);
  record.state = controller_.state();
  if (record.action != ControllerAction::kNone) {
    record.actuation_ok = Actuate(record.action);
    if (!record.actuation_ok) {
      ++stats_.actuation_failures;
      pending_retry_ = record.action;
    }
  }
  utilization_trace_.Add(now_ns, *sample);
  state_trace_.Add(now_ns,
                   controller_.PrefetchersShouldBeEnabled() ? 1.0 : 0.0);
  return record;
}

}  // namespace limoncello
