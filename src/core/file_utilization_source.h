// Telemetry source that reads utilization samples from a file.
//
// The deployment integration point for real hardware: a sidecar (e.g. a
// `perf stat` wrapper or a PCM exporter) appends one utilization sample
// (fraction of saturation, e.g. "0.83") per line; the daemon reads the
// most recent line each tick. Missing file, empty file, or an unparsable
// last line reports a failed sample, which feeds the daemon's fail-safe
// logic.
#ifndef LIMONCELLO_CORE_FILE_UTILIZATION_SOURCE_H_
#define LIMONCELLO_CORE_FILE_UTILIZATION_SOURCE_H_

#include <string>

#include "telemetry/telemetry.h"

namespace limoncello {

class FileUtilizationSource : public UtilizationSource {
 public:
  explicit FileUtilizationSource(std::string path);

  std::optional<double> SampleUtilization() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// Parses the last non-empty line of `contents` as a double in [0, 10).
// Exposed for testing.
std::optional<double> ParseLastUtilizationLine(const std::string& contents);

}  // namespace limoncello

#endif  // LIMONCELLO_CORE_FILE_UTILIZATION_SOURCE_H_
