#include "core/perf_csv_source.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace limoncello {

namespace {

// Splits one CSV line on commas (perf never quotes these fields).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  return fields;
}

std::optional<double> ParseDouble(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return std::nullopt;
  // strtod accepts "nan"/"inf" spellings and saturates overflow to
  // HUGE_VAL; a corrupted exporter must not propagate either.
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

// Converts a perf counter value+unit to bytes. perf reports memory
// controller counters in MiB (or as raw cacheline counts with an empty
// unit on some kernels).
std::optional<double> ToBytes(double value, const std::string& unit) {
  if (value < 0.0) return std::nullopt;  // counters never run backwards
  if (unit == "MiB") return value * 1024.0 * 1024.0;
  if (unit == "KiB") return value * 1024.0;
  if (unit == "GiB") return value * 1024.0 * 1024.0 * 1024.0;
  if (unit.empty()) return value * kCacheLineBytes;  // raw line count
  return std::nullopt;
}

}  // namespace

std::optional<double> ParsePerfCsvBandwidth(const std::string& contents,
                                            const PerfCsvOptions& options) {
  // Collect (timestamp, bytes) per event; keep the latest timestamp at
  // which both events were seen.
  struct Interval {
    double timestamp = -1.0;
    double read_bytes = -1.0;
    double write_bytes = -1.0;
  };
  Interval current;
  Interval last_complete;

  std::istringstream in(contents);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = SplitCsv(line);
    // -I -x, layout: time, value, unit, event, run-time, pct, [...]
    if (fields.size() < 4) continue;
    const auto timestamp = ParseDouble(fields[0]);
    const auto value = ParseDouble(fields[1]);
    if (!timestamp.has_value() || !value.has_value()) continue;
    const auto bytes = ToBytes(*value, fields[2]);
    if (!bytes.has_value()) continue;
    const std::string& event = fields[3];

    if (*timestamp != current.timestamp) {
      current = Interval{};
      current.timestamp = *timestamp;
    }
    if (event == options.read_event) current.read_bytes = *bytes;
    if (event == options.write_event) current.write_bytes = *bytes;
    if (current.read_bytes >= 0.0 && current.write_bytes >= 0.0) {
      last_complete = current;
    }
  }
  if (last_complete.timestamp < 0.0) return std::nullopt;
  const double interval_s =
      static_cast<double>(options.interval_ns) / 1e9;
  if (interval_s <= 0.0) return std::nullopt;
  const double bytes_per_sec =
      (last_complete.read_bytes + last_complete.write_bytes) / interval_s;
  return bytes_per_sec / 1e9;  // GB/s
}

PerfCsvUtilizationSource::PerfCsvUtilizationSource(
    std::string path, const PerfCsvOptions& options)
    : path_(std::move(path)), options_(options) {
  LIMONCELLO_CHECK_GT(options.saturation_gbps, 0.0);
}

// limolint:cold-path — production telemetry read at daemon cadence (~1
// Hz); the fleet hot loop dispatches to the simulated source instead.
std::optional<double> PerfCsvUtilizationSource::SampleUtilization() {
  std::ifstream in(path_, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto gbps = ParsePerfCsvBandwidth(buffer.str(), options_);
  if (!gbps.has_value()) return std::nullopt;
  return *gbps / options_.saturation_gbps;
}

}  // namespace limoncello
