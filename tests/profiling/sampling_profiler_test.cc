#include "profiling/sampling_profiler.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

std::vector<FunctionProfileEntry> BigProfile() {
  return {{1.0e6, 1000000, 10000}, {2.0e6, 2000000, 40000}};
}

TEST(SamplingProfilerTest, SelectsMachinesAtConfiguredRate) {
  SamplingProfiler::Options options;
  options.machine_sample_probability = 0.25;
  SamplingProfiler profiler(options, Rng(1));
  ProfileAggregate agg(2);
  int selected = 0;
  constexpr int kN = 4000;
  for (int i = 0; i < kN; ++i) {
    if (profiler.CollectFrom(BigProfile(), &agg)) ++selected;
  }
  EXPECT_NEAR(static_cast<double>(selected) / kN, 0.25, 0.03);
}

TEST(SamplingProfilerTest, ThinningPreservesRatiosInAggregate) {
  SamplingProfiler::Options options;
  options.machine_sample_probability = 1.0;
  options.event_sample_fraction = 0.05;
  SamplingProfiler profiler(options, Rng(2));
  ProfileAggregate agg(2);
  for (int i = 0; i < 500; ++i) profiler.CollectFrom(BigProfile(), &agg);
  // Aggregated thinned profiles preserve the CPI and MPKI of the truth
  // (sampling is unbiased).
  EXPECT_NEAR(agg.Cpi(0), 1.0, 0.05);
  EXPECT_NEAR(agg.Cpi(1), 1.0, 0.05);
  EXPECT_NEAR(agg.Mpki(0), 10.0, 0.5);
  EXPECT_NEAR(agg.Mpki(1), 20.0, 1.0);
  // And the aggregate contains ~5 % of the events.
  EXPECT_NEAR(static_cast<double>(agg.entry(0).instructions),
              0.05 * 500 * 1.0e6, 0.05 * 500 * 1.0e6 * 0.05);
}

TEST(SamplingProfilerTest, SmallCountsThinnedExactly) {
  SamplingProfiler::Options options;
  options.machine_sample_probability = 1.0;
  options.event_sample_fraction = 0.5;
  SamplingProfiler profiler(options, Rng(3));
  ProfileAggregate agg(1);
  std::vector<FunctionProfileEntry> tiny = {{10.0, 10, 2}};
  for (int i = 0; i < 2000; ++i) profiler.CollectFrom(tiny, &agg);
  // Bernoulli thinning of tiny counters is unbiased too.
  EXPECT_NEAR(static_cast<double>(agg.entry(0).instructions), 10000.0,
              600.0);
}

TEST(SamplingProfilerTest, DeterministicForSameSeed) {
  SamplingProfiler::Options options;
  auto run = [&] {
    SamplingProfiler profiler(options, Rng(7));
    ProfileAggregate agg(2);
    for (int i = 0; i < 100; ++i) profiler.CollectFrom(BigProfile(), &agg);
    return agg.entry(0).instructions;
  };
  EXPECT_EQ(run(), run());
}

TEST(SamplingProfilerDeathTest, InvalidOptionsAbort) {
  SamplingProfiler::Options options;
  options.machine_sample_probability = 0.0;
  EXPECT_DEATH(SamplingProfiler(options, Rng(1)), "CHECK");
}

}  // namespace
}  // namespace limoncello
