#include "profiling/profile.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

std::vector<FunctionProfileEntry> MakeProfile(
    std::initializer_list<FunctionProfileEntry> entries) {
  return std::vector<FunctionProfileEntry>(entries);
}

TEST(ProfileAggregateTest, AccumulateAndDerivedMetrics) {
  ProfileAggregate agg(2);
  agg.Accumulate(MakeProfile({{1000.0, 500, 5}, {3000.0, 1000, 40}}));
  EXPECT_DOUBLE_EQ(agg.TotalCycles(), 4000.0);
  EXPECT_DOUBLE_EQ(agg.CycleShare(0), 0.25);
  EXPECT_DOUBLE_EQ(agg.Cpi(0), 2.0);
  EXPECT_DOUBLE_EQ(agg.Cpi(1), 3.0);
  EXPECT_DOUBLE_EQ(agg.Mpki(0), 10.0);
  EXPECT_DOUBLE_EQ(agg.Mpki(1), 40.0);
}

TEST(ProfileAggregateTest, AccumulateIgnoresOverflowSlot) {
  ProfileAggregate agg(2);
  // Socket profiles carry one extra overflow slot.
  agg.Accumulate(MakeProfile({{1.0, 1, 0}, {2.0, 1, 0}, {99.0, 99, 99}}));
  EXPECT_DOUBLE_EQ(agg.TotalCycles(), 3.0);
}

TEST(ProfileAggregateTest, MergeSums) {
  ProfileAggregate a(1);
  ProfileAggregate b(1);
  a.Accumulate(MakeProfile({{10.0, 5, 1}}));
  b.Accumulate(MakeProfile({{30.0, 15, 3}}));
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.entry(0).cycles, 40.0);
  EXPECT_EQ(a.entry(0).instructions, 20u);
  EXPECT_EQ(a.entry(0).llc_misses, 4u);
}

TEST(ProfileAggregateTest, EmptyEntriesYieldZeroMetrics) {
  ProfileAggregate agg(3);
  EXPECT_DOUBLE_EQ(agg.Cpi(0), 0.0);
  EXPECT_DOUBLE_EQ(agg.Mpki(1), 0.0);
  EXPECT_DOUBLE_EQ(agg.CycleShare(2), 0.0);
}

FunctionCatalog TwoFunctionCatalog() {
  FunctionCatalog catalog;
  FunctionSpec tax;
  tax.name = "memcpy";
  tax.category = FunctionCategory::kDataMovement;
  catalog.Add(tax);
  FunctionSpec other;
  other.name = "btree";
  other.category = FunctionCategory::kNonTax;
  catalog.Add(other);
  return catalog;
}

TEST(CompareAblationTest, SignsAndMagnitudes) {
  const FunctionCatalog catalog = TwoFunctionCatalog();
  ProfileAggregate control(2);
  ProfileAggregate experiment(2);
  // Control (PF on): memcpy cheap (covered), btree suffers pollution.
  control.Accumulate(MakeProfile({{1000.0, 1000, 5}, {3000.0, 1000, 30}}));
  // Experiment (PF off): memcpy regresses, btree improves.
  experiment.Accumulate(
      MakeProfile({{2000.0, 1000, 25}, {2500.0, 1000, 25}}));
  const auto deltas = CompareAblation(control, experiment, catalog);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_NEAR(deltas[0].cycles_change_pct, 100.0, 1e-9);  // memcpy +100 %
  EXPECT_NEAR(deltas[0].mpki_change_pct, 400.0, 1e-9);
  EXPECT_NEAR(deltas[1].cycles_change_pct, -16.67, 0.01);  // btree improves
  EXPECT_LT(deltas[1].mpki_change_pct, 0.0);
  EXPECT_NEAR(deltas[0].control_cycle_share, 0.25, 1e-9);
}

TEST(AggregateByCategoryTest, WeightsByCycleShare) {
  std::vector<FunctionDelta> deltas;
  FunctionDelta a;
  a.category = FunctionCategory::kDataMovement;
  a.cycles_change_pct = 100.0;
  a.control_cycle_share = 0.3;
  FunctionDelta b;
  b.category = FunctionCategory::kDataMovement;
  b.cycles_change_pct = 50.0;
  b.control_cycle_share = 0.1;
  FunctionDelta c;
  c.category = FunctionCategory::kNonTax;
  c.cycles_change_pct = -10.0;
  c.control_cycle_share = 0.6;
  deltas = {a, b, c};
  const auto categories = AggregateByCategory(deltas);
  ASSERT_EQ(categories.size(), 2u);
  const auto& movement = categories[0].category ==
                                 FunctionCategory::kDataMovement
                             ? categories[0]
                             : categories[1];
  const auto& nontax =
      categories[0].category == FunctionCategory::kNonTax ? categories[0]
                                                          : categories[1];
  EXPECT_NEAR(movement.cycles_change_pct, (100.0 * 0.3 + 50.0 * 0.1) / 0.4,
              1e-9);
  EXPECT_NEAR(nontax.cycles_change_pct, -10.0, 1e-9);
  EXPECT_NEAR(movement.control_cycle_share, 0.4, 1e-9);
}

TEST(SelectPrefetchTargetsTest, FiltersAndRanks) {
  std::vector<FunctionDelta> deltas(4);
  deltas[0].name = "big_regressor";
  deltas[0].cycles_change_pct = 50.0;
  deltas[0].control_cycle_share = 0.2;
  deltas[1].name = "small_regressor";
  deltas[1].cycles_change_pct = 40.0;
  deltas[1].control_cycle_share = 0.001;  // too cold
  deltas[2].name = "improver";
  deltas[2].cycles_change_pct = -20.0;
  deltas[2].control_cycle_share = 0.3;
  deltas[3].name = "mild_regressor";
  deltas[3].cycles_change_pct = 10.0;
  deltas[3].control_cycle_share = 0.1;
  const auto targets = SelectPrefetchTargets(deltas,
                                             /*min_regression_pct=*/5.0,
                                             /*min_cycle_share=*/0.01);
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0].name, "big_regressor");  // ranked by impact
  EXPECT_EQ(targets[1].name, "mild_regressor");
}

TEST(CompareAblationDeathTest, MismatchedSizesAbort) {
  ProfileAggregate a(2);
  ProfileAggregate b(3);
  EXPECT_DEATH(CompareAblation(a, b, TwoFunctionCatalog()), "CHECK");
}

}  // namespace
}  // namespace limoncello
