#include "core/perf_csv_source.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace limoncello {
namespace {

PerfCsvOptions Options() {
  PerfCsvOptions options;
  options.saturation_gbps = 100.0;
  return options;
}

TEST(ParsePerfCsvTest, SumsReadAndWriteOfLastInterval) {
  // Two intervals; the parser must use the second.
  const std::string csv =
      "1.000100,1000.00,MiB,uncore_imc/data_reads/,100,100.0\n"
      "1.000100,500.00,MiB,uncore_imc/data_writes/,100,100.0\n"
      "2.000200,2000.00,MiB,uncore_imc/data_reads/,100,100.0\n"
      "2.000200,1000.00,MiB,uncore_imc/data_writes/,100,100.0\n";
  const auto gbps = ParsePerfCsvBandwidth(csv, Options());
  ASSERT_TRUE(gbps.has_value());
  // 3000 MiB over 1 s = 3000 * 1048576 / 1e9 GB/s.
  EXPECT_NEAR(*gbps, 3000.0 * 1048576.0 / 1e9, 1e-6);
}

TEST(ParsePerfCsvTest, IgnoresCommentsAndJunkLines) {
  const std::string csv =
      "# started on Mon Jul  6 2026\n"
      "\n"
      "not,a,real,line\n"
      "1.5,100.00,MiB,uncore_imc/data_reads/,100,100.0\n"
      "1.5,50.00,MiB,uncore_imc/data_writes/,100,100.0\n";
  const auto gbps = ParsePerfCsvBandwidth(csv, Options());
  ASSERT_TRUE(gbps.has_value());
  EXPECT_NEAR(*gbps, 150.0 * 1048576.0 / 1e9, 1e-9);
}

TEST(ParsePerfCsvTest, IncompleteLastIntervalFallsBack) {
  // The second interval only has reads so far (perf mid-write): the
  // parser must fall back to the last complete interval.
  const std::string csv =
      "1.0,100.00,MiB,uncore_imc/data_reads/,100,100.0\n"
      "1.0,100.00,MiB,uncore_imc/data_writes/,100,100.0\n"
      "2.0,999.00,MiB,uncore_imc/data_reads/,100,100.0\n";
  const auto gbps = ParsePerfCsvBandwidth(csv, Options());
  ASSERT_TRUE(gbps.has_value());
  EXPECT_NEAR(*gbps, 200.0 * 1048576.0 / 1e9, 1e-9);
}

TEST(ParsePerfCsvTest, NoCompleteIntervalIsNullopt) {
  EXPECT_FALSE(ParsePerfCsvBandwidth("", Options()).has_value());
  EXPECT_FALSE(ParsePerfCsvBandwidth(
                   "1.0,100.00,MiB,uncore_imc/data_reads/,100,100\n",
                   Options())
                   .has_value());
}

TEST(ParsePerfCsvTest, RawLineCountUnit) {
  // Empty unit field: values are cacheline counts.
  const std::string csv =
      "1.0,1000000,,uncore_imc/data_reads/,100,100.0\n"
      "1.0,500000,,uncore_imc/data_writes/,100,100.0\n";
  const auto gbps = ParsePerfCsvBandwidth(csv, Options());
  ASSERT_TRUE(gbps.has_value());
  EXPECT_NEAR(*gbps, 1500000.0 * 64.0 / 1e9, 1e-9);
}

TEST(ParsePerfCsvTest, CustomEventNames) {
  PerfCsvOptions options = Options();
  options.read_event = "cas_count_read";
  options.write_event = "cas_count_write";
  const std::string csv =
      "1.0,10.00,MiB,cas_count_read,100,100.0\n"
      "1.0,10.00,MiB,cas_count_write,100,100.0\n";
  EXPECT_TRUE(ParsePerfCsvBandwidth(csv, options).has_value());
  // The default event names no longer match.
  EXPECT_FALSE(ParsePerfCsvBandwidth(csv, Options()).has_value());
}

TEST(PerfCsvUtilizationSourceTest, EndToEndFromFile) {
  const std::string path = ::testing::TempDir() + "/perf_test.csv";
  {
    std::ofstream out(path);
    out << "3.0,51200.00,MiB,uncore_imc/data_reads/,100,100.0\n"
        << "3.0,25600.00,MiB,uncore_imc/data_writes/,100,100.0\n";
  }
  PerfCsvOptions options = Options();  // saturation 100 GB/s
  PerfCsvUtilizationSource source(path, options);
  const auto u = source.SampleUtilization();
  ASSERT_TRUE(u.has_value());
  // 76800 MiB/s = ~80.5 GB/s => ~0.805 of saturation.
  EXPECT_NEAR(*u, 76800.0 * 1048576.0 / 1e9 / 100.0, 1e-6);
  std::remove(path.c_str());
}

TEST(PerfCsvUtilizationSourceTest, MissingFileIsNullopt) {
  PerfCsvUtilizationSource source("/nonexistent/perf.csv", Options());
  EXPECT_FALSE(source.SampleUtilization().has_value());
}

}  // namespace
}  // namespace limoncello
