// ControllerConfig::Validate(): every violated constraint is reported as
// a structured error naming the field, and Valid() is exactly
// "no errors". limoncellod prints this list and refuses to start on any
// error (see tools/limoncellod.cc), so the messages must be actionable.
#include "core/controller_config.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace limoncello {
namespace {

bool AnyMentions(const std::vector<std::string>& errors,
                 const std::string& needle) {
  for (const std::string& error : errors) {
    if (error.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ControllerConfigTest, DefaultsAreValid) {
  ControllerConfig config;
  EXPECT_TRUE(config.Validate().empty());
  EXPECT_TRUE(config.Valid());
}

TEST(ControllerConfigTest, InvertedHysteresisBandNamesBothThresholds) {
  ControllerConfig config;
  config.upper_threshold = 0.5;
  config.lower_threshold = 0.7;
  const auto errors = config.Validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("upper_threshold"), std::string::npos);
  EXPECT_NE(errors[0].find("lower_threshold"), std::string::npos);
  EXPECT_FALSE(config.Valid());
}

TEST(ControllerConfigTest, EqualThresholdsAreInvalid) {
  // The band must be strict: equal thresholds would toggle on noise.
  ControllerConfig config;
  config.upper_threshold = 0.7;
  config.lower_threshold = 0.7;
  EXPECT_FALSE(config.Valid());
}

TEST(ControllerConfigTest, EachFieldViolationNamesItsField) {
  {
    ControllerConfig config;
    config.lower_threshold = -0.1;
    EXPECT_TRUE(AnyMentions(config.Validate(), "lower_threshold"));
  }
  {
    ControllerConfig config;
    config.upper_threshold = 2.0;
    EXPECT_TRUE(AnyMentions(config.Validate(), "upper_threshold"));
  }
  {
    ControllerConfig config;
    config.sustain_duration_ns = -1;
    EXPECT_TRUE(AnyMentions(config.Validate(), "sustain_duration_ns"));
  }
  {
    ControllerConfig config;
    config.tick_period_ns = 0;
    EXPECT_TRUE(AnyMentions(config.Validate(), "tick_period_ns"));
  }
  {
    ControllerConfig config;
    config.max_missed_samples = 0;
    EXPECT_TRUE(AnyMentions(config.Validate(), "max_missed_samples"));
  }
  {
    ControllerConfig config;
    config.retry_backoff_cap_ticks = 0;
    EXPECT_TRUE(AnyMentions(config.Validate(), "retry_backoff_cap_ticks"));
  }
  {
    ControllerConfig config;
    config.max_stale_samples = 0;
    EXPECT_TRUE(AnyMentions(config.Validate(), "max_stale_samples"));
  }
  {
    ControllerConfig config;
    config.readback_period_ticks = -1;
    EXPECT_TRUE(AnyMentions(config.Validate(), "readback_period_ticks"));
  }
}

TEST(ControllerConfigTest, ErrorMessagesIncludeTheOffendingValue) {
  ControllerConfig config;
  config.max_missed_samples = -3;
  const auto errors = config.Validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("-3"), std::string::npos) << errors[0];
}

TEST(ControllerConfigTest, MultipleViolationsAreAllReported) {
  ControllerConfig config;
  config.upper_threshold = 0.4;  // inverted band
  config.tick_period_ns = -5;
  config.retry_backoff_cap_ticks = 0;
  const auto errors = config.Validate();
  EXPECT_EQ(errors.size(), 3u);
  EXPECT_TRUE(AnyMentions(errors, "upper_threshold"));
  EXPECT_TRUE(AnyMentions(errors, "tick_period_ns"));
  EXPECT_TRUE(AnyMentions(errors, "retry_backoff_cap_ticks"));
}

TEST(ControllerConfigTest, ZeroReadbackPeriodMeansDisabledAndIsValid) {
  ControllerConfig config;
  config.readback_period_ticks = 0;
  EXPECT_TRUE(config.Valid());
}

}  // namespace
}  // namespace limoncello
