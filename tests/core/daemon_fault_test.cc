// Robustness-path tests for LimoncelloDaemon: invalid/stale sample
// rejection, capped exponential actuation backoff, and reboot detection
// via MSR readback. The happy path lives in daemon_test.cc.
#include <gtest/gtest.h>

#include <deque>
#include <limits>

#include "core/daemon.h"
#include "msr/simulated_msr_device.h"

namespace limoncello {
namespace {

// Scripted telemetry; once the script is drained, returns the fallback
// with a tiny growing jitter so constant-load tests don't trip the
// frozen-exporter detector by accident.
class FakeTelemetry : public UtilizationSource {
 public:
  std::optional<double> SampleUtilization() override {
    if (!samples_.empty()) {
      const std::optional<double> s = samples_.front();
      samples_.pop_front();
      return s;
    }
    jitter_ += 1e-9;
    return fallback_ + jitter_;
  }

  void Push(std::optional<double> sample) { samples_.push_back(sample); }
  void PushN(std::optional<double> sample, int n) {
    for (int i = 0; i < n; ++i) Push(sample);
  }
  void set_fallback(double f) { fallback_ = f; }

 private:
  std::deque<std::optional<double>> samples_;
  double fallback_ = 0.7;
  double jitter_ = 0.0;
};

// Actuator with failure injection and a scriptable readback result.
class FakeActuator : public PrefetchActuator {
 public:
  bool DisablePrefetchers() override {
    ++disable_calls;
    if (fail_next > 0) {
      --fail_next;
      return false;
    }
    enabled = false;
    return true;
  }
  bool EnablePrefetchers() override {
    ++enable_calls;
    if (fail_next > 0) {
      --fail_next;
      return false;
    }
    enabled = true;
    return true;
  }
  std::optional<bool> StateMatches(bool want_enabled) override {
    ++state_match_calls;
    if (!matches.has_value()) return std::nullopt;
    (void)want_enabled;
    return matches;
  }

  int disable_calls = 0;
  int enable_calls = 0;
  int state_match_calls = 0;
  int fail_next = 0;
  bool enabled = true;
  std::optional<bool> matches;  // readback result; nullopt = unknown
};

ControllerConfig RobustConfig() {
  ControllerConfig config;
  config.upper_threshold = 0.8;
  config.lower_threshold = 0.6;
  config.sustain_duration_ns = 2 * kNsPerSec;
  config.tick_period_ns = kNsPerSec;
  config.max_missed_samples = 3;
  config.retry_backoff_cap_ticks = 8;
  config.max_stale_samples = 4;
  config.readback_period_ticks = 0;  // off unless a test enables it
  return config;
}

void RunTicks(LimoncelloDaemon& daemon, int first, int count) {
  for (int i = 0; i < count; ++i) {
    daemon.RunTick(static_cast<SimTimeNs>(first + i) * kNsPerSec);
  }
}

TEST(DaemonFaultTest, InvalidSamplesAreRejectedWithoutActuating) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(RobustConfig(), &telemetry, &actuator);
  telemetry.Push(std::numeric_limits<double>::quiet_NaN());
  telemetry.Push(0.70);
  telemetry.Push(std::numeric_limits<double>::infinity());
  telemetry.Push(0.71);
  telemetry.Push(-0.5);
  telemetry.Push(0.72);
  telemetry.Push(20.0);  // an order of magnitude past saturation
  telemetry.Push(0.73);
  RunTicks(daemon, 0, 8);
  EXPECT_EQ(daemon.stats().invalid_samples, 4u);
  EXPECT_EQ(daemon.stats().missed_samples, 4u);
  EXPECT_EQ(daemon.stats().failsafe_resets, 0u);  // never 3 in a row
  EXPECT_EQ(actuator.disable_calls, 0);
  EXPECT_EQ(actuator.enable_calls, 0);
}

TEST(DaemonFaultTest, ConsecutiveInvalidSamplesFeedTheFailsafe) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(RobustConfig(), &telemetry, &actuator);
  telemetry.Push(0.9);
  telemetry.Push(0.91);
  RunTicks(daemon, 0, 2);
  ASSERT_FALSE(actuator.enabled);  // driven to disabled

  telemetry.Push(std::numeric_limits<double>::quiet_NaN());
  telemetry.Push(std::numeric_limits<double>::infinity());
  telemetry.Push(99.0);
  RunTicks(daemon, 2, 3);
  EXPECT_EQ(daemon.stats().invalid_samples, 3u);
  EXPECT_EQ(daemon.stats().failsafe_resets, 1u);
  EXPECT_TRUE(actuator.enabled);  // failed safe back to the default
}

TEST(DaemonFaultTest, FrozenExporterIsRejectedAfterStaleThreshold) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(RobustConfig(), &telemetry, &actuator);
  telemetry.PushN(0.7, 12);  // bit-identical run
  RunTicks(daemon, 0, 12);
  // Samples 5.. are rejected (run >= max_stale_samples), so the missed
  // path accumulates and the failsafe fires.
  EXPECT_GE(daemon.stats().stale_samples, 3u);
  EXPECT_GE(daemon.stats().failsafe_resets, 1u);
}

TEST(DaemonFaultTest, JitteringTelemetryIsNeverStale) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(RobustConfig(), &telemetry, &actuator);
  RunTicks(daemon, 0, 50);  // fallback jitters on every sample
  EXPECT_EQ(daemon.stats().stale_samples, 0u);
  EXPECT_EQ(daemon.stats().missed_samples, 0u);
}

TEST(DaemonFaultTest, GapBreaksAStaleRun) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(RobustConfig(), &telemetry, &actuator);
  for (int i = 0; i < 10; ++i) {
    telemetry.PushN(0.7, 2);  // short identical runs...
    telemetry.Push(std::nullopt);  // ...separated by dropouts
  }
  RunTicks(daemon, 0, 30);
  EXPECT_EQ(daemon.stats().stale_samples, 0u);
  EXPECT_EQ(daemon.stats().missed_samples, 10u);
  EXPECT_EQ(daemon.stats().failsafe_resets, 0u);
}

TEST(DaemonFaultTest, RetryBacksOffExponentiallyUpToTheCap) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  actuator.fail_next = 1000;  // persistent actuation failure
  LimoncelloDaemon daemon(RobustConfig(), &telemetry, &actuator);
  telemetry.Push(0.9);
  telemetry.Push(0.91);
  // Attempt schedule: tick 1 (fresh), then retries at 2, 4, 8, 16, 24
  // (delays 1, 2, 4, 8, 8 — capped).
  RunTicks(daemon, 0, 25);
  EXPECT_EQ(actuator.disable_calls, 6);
  EXPECT_EQ(daemon.stats().actuation_failures, 6u);
  EXPECT_EQ(daemon.stats().retry_backoff_skips, 18u);
  EXPECT_TRUE(actuator.enabled);  // still never took effect

  // The fault clears: the next scheduled retry (tick 32) lands.
  actuator.fail_next = 0;
  RunTicks(daemon, 25, 8);
  EXPECT_EQ(actuator.disable_calls, 7);
  EXPECT_FALSE(actuator.enabled);
  // Converged: no further retries.
  RunTicks(daemon, 33, 5);
  EXPECT_EQ(actuator.disable_calls, 7);
}

TEST(DaemonFaultTest, RebootIsDetectedByReadbackAndStateReasserted) {
  SimulatedMsrDevice device(4);
  PrefetchControl control(&device, PlatformMsrLayout::kIntelStyle, 0, 4);
  MsrPrefetchActuator actuator(&control, 4);
  FakeTelemetry telemetry;
  ControllerConfig config = RobustConfig();
  config.readback_period_ticks = 4;
  LimoncelloDaemon daemon(config, &telemetry, &actuator);

  telemetry.Push(0.9);
  telemetry.Push(0.91);
  RunTicks(daemon, 0, 2);
  ASSERT_EQ(control.AllDisabled(), true);

  // A reboot silently restores the BIOS default (Intel: all enabled) —
  // no observer fires, the daemon is not told.
  device.ResetToPowerOn();
  ASSERT_EQ(control.AllEnabled(), true);

  // The next readback tick (stats.ticks % 4 == 0) catches the mismatch
  // and re-asserts the FSM's intent.
  RunTicks(daemon, 2, 2);
  EXPECT_EQ(daemon.stats().reboots_detected, 1u);
  EXPECT_EQ(daemon.stats().state_reasserts, 1u);
  EXPECT_EQ(control.AllDisabled(), true);
}

TEST(DaemonFaultTest, ReadbackIsSkippedWhileARetryIsPending) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  actuator.matches = true;
  actuator.fail_next = 1000;
  ControllerConfig config = RobustConfig();
  config.readback_period_ticks = 1;  // would otherwise fire every tick
  LimoncelloDaemon daemon(config, &telemetry, &actuator);
  telemetry.Push(0.9);
  telemetry.Push(0.91);
  RunTicks(daemon, 0, 2);  // disable fails, retry armed
  ASSERT_GT(daemon.stats().actuation_failures, 0u);

  actuator.matches = false;  // a consulted readback would cry reboot
  const int calls_before = actuator.state_match_calls;
  RunTicks(daemon, 2, 8);
  EXPECT_EQ(actuator.state_match_calls, calls_before);
  EXPECT_EQ(daemon.stats().reboots_detected, 0u);
  EXPECT_GT(daemon.stats().retry_backoff_skips, 0u);
}

TEST(DaemonFaultTest, StateListenerFiresOnlyOnSuccessfulActuation) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  actuator.fail_next = 1;
  LimoncelloDaemon daemon(RobustConfig(), &telemetry, &actuator);
  int listener_calls = 0;
  bool last_state = true;
  daemon.SetStateListener([&](bool enabled) {
    ++listener_calls;
    last_state = enabled;
  });
  telemetry.Push(0.9);
  telemetry.Push(0.91);
  RunTicks(daemon, 0, 2);
  EXPECT_EQ(listener_calls, 0);  // the failed write must not notify
  RunTicks(daemon, 2, 1);  // retry succeeds
  EXPECT_EQ(listener_calls, 1);
  EXPECT_FALSE(last_state);
}

}  // namespace
}  // namespace limoncello
