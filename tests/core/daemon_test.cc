#include "core/daemon.h"

#include <gtest/gtest.h>

#include <deque>

#include "msr/simulated_msr_device.h"

namespace limoncello {
namespace {

// Scripted telemetry source.
class FakeTelemetry : public UtilizationSource {
 public:
  std::optional<double> SampleUtilization() override {
    if (samples_.empty()) return fallback_;
    const std::optional<double> s = samples_.front();
    samples_.pop_front();
    return s;
  }

  void Push(std::optional<double> sample) { samples_.push_back(sample); }
  void PushN(std::optional<double> sample, int n) {
    for (int i = 0; i < n; ++i) Push(sample);
  }
  void set_fallback(std::optional<double> f) { fallback_ = f; }

 private:
  std::deque<std::optional<double>> samples_;
  std::optional<double> fallback_ = 0.5;
};

// Actuator recording calls, with failure injection.
class FakeActuator : public PrefetchActuator {
 public:
  bool DisablePrefetchers() override {
    ++disable_calls;
    if (fail_next > 0) {
      --fail_next;
      return false;
    }
    enabled = false;
    return true;
  }
  bool EnablePrefetchers() override {
    ++enable_calls;
    if (fail_next > 0) {
      --fail_next;
      return false;
    }
    enabled = true;
    return true;
  }

  int disable_calls = 0;
  int enable_calls = 0;
  int fail_next = 0;
  bool enabled = true;
};

ControllerConfig FastConfig() {
  ControllerConfig config;
  config.upper_threshold = 0.8;
  config.lower_threshold = 0.6;
  config.sustain_duration_ns = 2 * kNsPerSec;
  config.tick_period_ns = kNsPerSec;
  config.max_missed_samples = 3;
  // Legacy every-tick retry; exponential backoff is exercised separately
  // in daemon_fault_test.
  config.retry_backoff_cap_ticks = 1;
  return config;
}

TEST(DaemonTest, DisablesOnSustainedHighAndReenablesOnLow) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);

  telemetry.PushN(0.9, 2);
  daemon.RunTick(0);
  auto record = daemon.RunTick(kNsPerSec);
  EXPECT_EQ(record.action, ControllerAction::kDisablePrefetchers);
  EXPECT_FALSE(actuator.enabled);

  telemetry.PushN(0.5, 2);
  daemon.RunTick(2 * kNsPerSec);
  record = daemon.RunTick(3 * kNsPerSec);
  EXPECT_EQ(record.action, ControllerAction::kEnablePrefetchers);
  EXPECT_TRUE(actuator.enabled);
  EXPECT_EQ(daemon.stats().disables, 1u);
  EXPECT_EQ(daemon.stats().enables, 1u);
}

TEST(DaemonTest, SteadyModerateLoadNeverActuates) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  telemetry.set_fallback(0.7);
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  for (int i = 0; i < 100; ++i) daemon.RunTick(i * kNsPerSec);
  EXPECT_EQ(actuator.disable_calls, 0);
  EXPECT_EQ(actuator.enable_calls, 0);
}

TEST(DaemonTest, MissedTelemetryTriggersFailSafe) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);

  // Drive to disabled.
  telemetry.PushN(0.9, 2);
  daemon.RunTick(0);
  daemon.RunTick(kNsPerSec);
  ASSERT_FALSE(actuator.enabled);

  // Telemetry goes dark: after max_missed_samples, fail safe to enabled.
  telemetry.PushN(std::nullopt, 3);
  daemon.RunTick(2 * kNsPerSec);
  daemon.RunTick(3 * kNsPerSec);
  EXPECT_FALSE(actuator.enabled);  // not yet
  daemon.RunTick(4 * kNsPerSec);
  EXPECT_TRUE(actuator.enabled);  // fail-safe fired
  EXPECT_EQ(daemon.stats().failsafe_resets, 1u);
  EXPECT_EQ(daemon.controller().state(), ControllerState::kEnabledSteady);
}

TEST(DaemonTest, FailSafeWhenAlreadyEnabledDoesNotActuate) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  telemetry.PushN(std::nullopt, 3);
  daemon.RunTick(0);
  daemon.RunTick(kNsPerSec);
  daemon.RunTick(2 * kNsPerSec);
  EXPECT_EQ(daemon.stats().failsafe_resets, 1u);
  EXPECT_EQ(actuator.enable_calls, 0);  // already in the safe state
}

TEST(DaemonTest, IntermittentMissesDoNotFailSafe) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  for (int i = 0; i < 20; ++i) {
    telemetry.Push(std::nullopt);
    telemetry.Push(0.7);  // each miss followed by a good sample
  }
  for (int i = 0; i < 40; ++i) daemon.RunTick(i * kNsPerSec);
  EXPECT_EQ(daemon.stats().failsafe_resets, 0u);
  EXPECT_EQ(daemon.stats().missed_samples, 20u);
}

TEST(DaemonTest, FailedActuationIsRetriedUntilSuccess) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  actuator.fail_next = 2;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);

  telemetry.PushN(0.9, 2);
  telemetry.set_fallback(0.7);  // hold between thresholds afterwards
  daemon.RunTick(0);
  auto record = daemon.RunTick(kNsPerSec);
  EXPECT_EQ(record.action, ControllerAction::kDisablePrefetchers);
  EXPECT_FALSE(record.actuation_ok);
  EXPECT_TRUE(actuator.enabled);  // write failed

  daemon.RunTick(2 * kNsPerSec);  // retry fails again
  EXPECT_TRUE(actuator.enabled);
  daemon.RunTick(3 * kNsPerSec);  // retry succeeds
  EXPECT_FALSE(actuator.enabled);
  EXPECT_EQ(daemon.stats().actuation_failures, 2u);
}

TEST(DaemonTest, TracesRecordStateAndUtilization) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  telemetry.PushN(0.9, 2);
  telemetry.PushN(0.5, 2);
  for (int i = 0; i < 4; ++i) daemon.RunTick(i * kNsPerSec);
  ASSERT_EQ(daemon.state_trace().size(), 4u);
  EXPECT_EQ(daemon.state_trace().points()[0].value, 1.0);  // still on
  EXPECT_EQ(daemon.state_trace().points()[1].value, 0.0);  // disabled
  EXPECT_EQ(daemon.state_trace().points()[3].value, 1.0);  // re-enabled
  EXPECT_DOUBLE_EQ(daemon.utilization_trace().points()[0].value, 0.9);
}

TEST(DaemonTest, StatsCountTicks) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  for (int i = 0; i < 7; ++i) daemon.RunTick(i * kNsPerSec);
  EXPECT_EQ(daemon.stats().ticks, 7u);
}

// FakeActuator with working readback, for reconcile tests.
class ReadbackFakeActuator : public FakeActuator {
 public:
  std::optional<bool> StateMatches(bool want_enabled) override {
    return enabled == want_enabled;
  }
};

TEST(DaemonTest, ExportRestoreRoundTripsTheFullState) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  telemetry.PushN(0.9, 3);  // disable, then one steady tick
  for (int i = 0; i < 3; ++i) daemon.RunTick(i * kNsPerSec);
  ASSERT_EQ(daemon.controller().state(), ControllerState::kDisabledSteady);
  const LimoncelloDaemon::PersistentState exported = daemon.ExportState();
  EXPECT_EQ(exported.controller_state, ControllerState::kDisabledSteady);
  EXPECT_EQ(exported.toggle_count, 1u);
  EXPECT_EQ(exported.stats.ticks, 3u);

  FakeTelemetry telemetry2;
  FakeActuator actuator2;
  LimoncelloDaemon restarted(FastConfig(), &telemetry2, &actuator2);
  EXPECT_TRUE(restarted.RestoreState(exported));
  EXPECT_EQ(restarted.controller().state(),
            ControllerState::kDisabledSteady);
  EXPECT_EQ(restarted.controller().toggle_count(), 1u);
  EXPECT_EQ(restarted.stats().ticks, 3u);
  EXPECT_EQ(restarted.stats().warm_restores, 1u);
  // Round trip again: apart from the warm-restore count the snapshot is
  // unchanged.
  LimoncelloDaemon::PersistentState again = restarted.ExportState();
  again.stats.warm_restores = exported.stats.warm_restores;
  EXPECT_EQ(again, exported);
}

TEST(DaemonTest, RestoreStateFiresTheStateListener) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  std::optional<bool> heard;
  daemon.SetStateListener([&heard](bool enabled) { heard = enabled; });
  LimoncelloDaemon::PersistentState state;
  state.controller_state = ControllerState::kDisabledSteady;
  ASSERT_TRUE(daemon.RestoreState(state));
  ASSERT_TRUE(heard.has_value());
  EXPECT_FALSE(*heard);
}

TEST(DaemonTest, RestoreRejectsStatesViolatingConfigInvariants) {
  FakeTelemetry telemetry;
  FakeActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);

  LimoncelloDaemon::PersistentState bad;
  bad.controller_state = static_cast<ControllerState>(9);  // no such state
  EXPECT_FALSE(daemon.RestoreState(bad));

  bad = {};
  bad.pending_retry = static_cast<ControllerAction>(42);
  EXPECT_FALSE(daemon.RestoreState(bad));

  bad = {};
  bad.timer_ns = -1;
  EXPECT_FALSE(daemon.RestoreState(bad));

  bad = {};  // steady state must have a clear timer
  bad.controller_state = ControllerState::kEnabledSteady;
  bad.timer_ns = kNsPerSec;
  EXPECT_FALSE(daemon.RestoreState(bad));

  bad = {};  // arming timer must be inside the sustain window (2 s)
  bad.controller_state = ControllerState::kEnabledArming;
  bad.timer_ns = 5 * kNsPerSec;
  EXPECT_FALSE(daemon.RestoreState(bad));

  bad = {};  // backoff beyond the config cap (1)
  bad.retry_delay_ticks = 4;
  EXPECT_FALSE(daemon.RestoreState(bad));

  bad = {};  // missed-sample run at/past the fail-safe trip point (3)
  bad.consecutive_missed = 3;
  EXPECT_FALSE(daemon.RestoreState(bad));

  // Nothing was adopted: the daemon is still at its cold-start state.
  EXPECT_EQ(daemon.stats().warm_restores, 0u);
  EXPECT_EQ(daemon.controller().state(), ControllerState::kEnabledSteady);
}

TEST(DaemonTest, ReconcileWithoutReadbackIsUnknown) {
  FakeTelemetry telemetry;
  FakeActuator actuator;  // base fake: StateMatches returns nullopt
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  EXPECT_EQ(daemon.ReconcileHardwareState(), ReconcileStatus::kUnknown);
  EXPECT_EQ(daemon.stats().recovery_reconciles, 0u);
}

TEST(DaemonTest, ReconcileReassertsMismatchedHardware) {
  FakeTelemetry telemetry;
  ReadbackFakeActuator actuator;
  actuator.enabled = false;  // hardware disagrees with cold-start intent
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  EXPECT_EQ(daemon.ReconcileHardwareState(), ReconcileStatus::kReasserted);
  EXPECT_TRUE(actuator.enabled);
  EXPECT_EQ(daemon.stats().recovery_reconciles, 1u);

  // A second reconcile now matches and is side-effect free.
  EXPECT_EQ(daemon.ReconcileHardwareState(), ReconcileStatus::kMatched);
  EXPECT_EQ(daemon.stats().recovery_reconciles, 1u);
}

TEST(DaemonTest, MsrBackedActuatorEndToEnd) {
  // Full integration of daemon -> MsrPrefetchActuator -> PrefetchControl
  // -> SimulatedMsrDevice.
  SimulatedMsrDevice device(4);
  PrefetchControl control(&device, PlatformMsrLayout::kIntelStyle, 0, 4);
  MsrPrefetchActuator actuator(&control, 4);
  FakeTelemetry telemetry;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);

  telemetry.PushN(0.95, 2);
  daemon.RunTick(0);
  daemon.RunTick(kNsPerSec);
  EXPECT_EQ(control.AllDisabled(), true);
  EXPECT_EQ(device.PeekRaw(0, 0x1a4), 0xfu);

  telemetry.PushN(0.4, 2);
  daemon.RunTick(2 * kNsPerSec);
  daemon.RunTick(3 * kNsPerSec);
  EXPECT_EQ(control.AllEnabled(), true);
}

TEST(DaemonTest, MsrActuatorPartialFailureRetries) {
  SimulatedMsrDevice device(4);
  PrefetchControl control(&device, PlatformMsrLayout::kIntelStyle, 0, 4);
  MsrPrefetchActuator actuator(&control, 4);
  FakeTelemetry telemetry;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);

  device.FailCpu(3);  // one core's MSR interface is down
  telemetry.PushN(0.95, 2);
  telemetry.set_fallback(0.95);
  daemon.RunTick(0);
  daemon.RunTick(kNsPerSec);
  EXPECT_GT(daemon.stats().actuation_failures, 0u);
  // The core comes back; a later tick's retry completes the disable.
  device.UnfailCpu(3);
  daemon.RunTick(2 * kNsPerSec);
  EXPECT_EQ(control.AllDisabled(), true);
}

}  // namespace
}  // namespace limoncello
