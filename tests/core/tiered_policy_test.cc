#include "core/tiered_policy.h"

#include <gtest/gtest.h>

#include "msr/simulated_msr_device.h"

namespace limoncello {
namespace {

TieredPolicyConfig FastConfig() {
  TieredPolicyConfig config = TieredPolicyConfig::Default();
  config.noisy.sustain_duration_ns = 2 * kNsPerSec;
  config.all.sustain_duration_ns = 2 * kNsPerSec;
  return config;
}

class TieredPolicyTest : public ::testing::Test {
 protected:
  TieredPolicyTest()
      : device_(4),
        control_(&device_, PlatformMsrLayout::kIntelStyle, 0, 4),
        policy_(FastConfig(), &control_, 4) {}

  bool EngineOn(PrefetchEngine engine) {
    return control_.EngineEnabled(0, engine).value();
  }

  void TickN(double utilization, int n) {
    for (int i = 0; i < n; ++i) policy_.Tick(utilization);
  }

  SimulatedMsrDevice device_;
  PrefetchControl control_;
  TieredPolicy policy_;
};

TEST_F(TieredPolicyTest, StartsAtTierZero) {
  EXPECT_EQ(policy_.tier(), 0);
  TickN(0.30, 10);
  EXPECT_EQ(policy_.tier(), 0);
  EXPECT_TRUE(EngineOn(PrefetchEngine::kDcuStreamer));
  EXPECT_TRUE(EngineOn(PrefetchEngine::kDcuIpStride));
}

TEST_F(TieredPolicyTest, ModerateLoadDisablesOnlyNoisyEngines) {
  // Above the noisy upper (0.65) but below the all upper (0.80).
  TickN(0.70, 5);
  EXPECT_EQ(policy_.tier(), 1);
  EXPECT_FALSE(EngineOn(PrefetchEngine::kDcuStreamer));
  EXPECT_FALSE(EngineOn(PrefetchEngine::kL2AdjacentLine));
  EXPECT_TRUE(EngineOn(PrefetchEngine::kDcuIpStride));
  EXPECT_TRUE(EngineOn(PrefetchEngine::kL2Stream));
}

TEST_F(TieredPolicyTest, HighLoadDisablesEverything) {
  TickN(0.90, 5);
  EXPECT_EQ(policy_.tier(), 2);
  for (int e = 0; e < kNumPrefetchEngines; ++e) {
    EXPECT_FALSE(EngineOn(static_cast<PrefetchEngine>(e))) << e;
  }
}

TEST_F(TieredPolicyTest, RecoveryStepsBackThroughTiers) {
  TickN(0.90, 5);
  ASSERT_EQ(policy_.tier(), 2);
  // Between the two lower thresholds (0.45 / 0.60): the all-engines
  // controller re-enables, the noisy controller stays tripped -> tier 1.
  TickN(0.50, 5);
  EXPECT_EQ(policy_.tier(), 1);
  EXPECT_TRUE(EngineOn(PrefetchEngine::kDcuIpStride));
  EXPECT_FALSE(EngineOn(PrefetchEngine::kDcuStreamer));
  // Deep idle: everything back on.
  TickN(0.20, 5);
  EXPECT_EQ(policy_.tier(), 0);
  EXPECT_TRUE(EngineOn(PrefetchEngine::kDcuStreamer));
}

TEST_F(TieredPolicyTest, HysteresisHoldsBetweenThresholds) {
  TickN(0.70, 5);
  ASSERT_EQ(policy_.tier(), 1);
  // Dips below the noisy upper but above its lower: tier holds.
  TickN(0.55, 20);
  EXPECT_EQ(policy_.tier(), 1);
}

TEST_F(TieredPolicyTest, TransitionsCounted) {
  TickN(0.70, 5);   // -> 1
  TickN(0.90, 5);   // -> 2
  TickN(0.20, 10);  // -> 0 (may pass through 1)
  EXPECT_GE(policy_.transitions(), 3u);
  EXPECT_EQ(policy_.tier(), 0);
}

TEST_F(TieredPolicyTest, ShortBurstsDoNotChangeTier) {
  // One-tick spikes never satisfy the 2-tick sustain.
  for (int i = 0; i < 20; ++i) {
    policy_.Tick(0.95);
    policy_.Tick(0.30);
  }
  EXPECT_EQ(policy_.tier(), 0);
  EXPECT_EQ(policy_.transitions(), 0u);
}

TEST(TieredPolicyDeathTest, NonNestedThresholdsAbort) {
  SimulatedMsrDevice device(2);
  PrefetchControl control(&device, PlatformMsrLayout::kIntelStyle, 0, 2);
  TieredPolicyConfig config = TieredPolicyConfig::Default();
  config.noisy.upper_threshold = 0.95;  // above the all-engines upper
  config.noisy.lower_threshold = 0.90;
  EXPECT_DEATH(TieredPolicy(config, &control, 2), "CHECK");
}

}  // namespace
}  // namespace limoncello
