#include "core/file_utilization_source.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace limoncello {
namespace {

class FileSourceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/membw_sample.txt";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& contents) {
    std::ofstream out(path_, std::ios::binary);
    out << contents;
  }

  std::string path_;
};

TEST_F(FileSourceTest, MissingFileIsFailedSample) {
  FileUtilizationSource source(path_);
  EXPECT_FALSE(source.SampleUtilization().has_value());
}

TEST_F(FileSourceTest, ReadsLastLine) {
  WriteFile("0.10\n0.55\n0.83\n");
  FileUtilizationSource source(path_);
  const auto sample = source.SampleUtilization();
  ASSERT_TRUE(sample.has_value());
  EXPECT_DOUBLE_EQ(*sample, 0.83);
}

TEST_F(FileSourceTest, ReadsSingleLineWithoutNewline) {
  WriteFile("0.42");
  FileUtilizationSource source(path_);
  EXPECT_DOUBLE_EQ(source.SampleUtilization().value(), 0.42);
}

TEST_F(FileSourceTest, PicksUpUpdates) {
  WriteFile("0.2\n");
  FileUtilizationSource source(path_);
  EXPECT_DOUBLE_EQ(source.SampleUtilization().value(), 0.2);
  WriteFile("0.2\n0.9\n");
  EXPECT_DOUBLE_EQ(source.SampleUtilization().value(), 0.9);
}

TEST_F(FileSourceTest, EmptyFileIsFailedSample) {
  WriteFile("");
  FileUtilizationSource source(path_);
  EXPECT_FALSE(source.SampleUtilization().has_value());
}

TEST(ParseLastUtilizationLineTest, ValidForms) {
  EXPECT_DOUBLE_EQ(ParseLastUtilizationLine("0.5").value(), 0.5);
  EXPECT_DOUBLE_EQ(ParseLastUtilizationLine("1\n0.25\n").value(), 0.25);
  EXPECT_DOUBLE_EQ(ParseLastUtilizationLine("0.75  \n").value(), 0.75);
  EXPECT_DOUBLE_EQ(ParseLastUtilizationLine("a\n1.05\n").value(), 1.05);
}

TEST(ParseLastUtilizationLineTest, RejectsMalformed) {
  EXPECT_FALSE(ParseLastUtilizationLine("").has_value());
  EXPECT_FALSE(ParseLastUtilizationLine("\n\n").has_value());
  EXPECT_FALSE(ParseLastUtilizationLine("abc").has_value());
  EXPECT_FALSE(ParseLastUtilizationLine("0.5 extra words").has_value());
  EXPECT_FALSE(ParseLastUtilizationLine("-0.5").has_value());
  EXPECT_FALSE(ParseLastUtilizationLine("11.0").has_value());
}

TEST(ParseLastUtilizationLineTest, CarriageReturnsHandled) {
  EXPECT_DOUBLE_EQ(ParseLastUtilizationLine("0.3\r\n").value(), 0.3);
}

}  // namespace
}  // namespace limoncello
