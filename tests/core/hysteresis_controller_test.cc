#include "core/hysteresis_controller.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace limoncello {
namespace {

ControllerConfig TestConfig(SimTimeNs sustain_ticks = 3) {
  ControllerConfig config;
  config.upper_threshold = 0.80;
  config.lower_threshold = 0.60;
  config.tick_period_ns = kNsPerSec;
  config.sustain_duration_ns = sustain_ticks * kNsPerSec;
  return config;
}

TEST(HysteresisControllerTest, StartsEnabled) {
  HysteresisController controller(TestConfig());
  EXPECT_EQ(controller.state(), ControllerState::kEnabledSteady);
  EXPECT_TRUE(controller.PrefetchersShouldBeEnabled());
}

TEST(HysteresisControllerTest, BelowUpperThresholdNeverDisables) {
  HysteresisController controller(TestConfig());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(controller.Tick(0.79), ControllerAction::kNone);
  }
  EXPECT_TRUE(controller.PrefetchersShouldBeEnabled());
  EXPECT_EQ(controller.toggle_count(), 0u);
}

TEST(HysteresisControllerTest, SustainedHighDisablesAfterDelta) {
  HysteresisController controller(TestConfig(/*sustain_ticks=*/3));
  EXPECT_EQ(controller.Tick(0.9), ControllerAction::kNone);  // timer = 1
  EXPECT_EQ(controller.state(), ControllerState::kEnabledArming);
  EXPECT_EQ(controller.Tick(0.9), ControllerAction::kNone);  // timer = 2
  EXPECT_EQ(controller.Tick(0.9),
            ControllerAction::kDisablePrefetchers);  // timer = 3 >= Δ
  EXPECT_EQ(controller.state(), ControllerState::kDisabledSteady);
  EXPECT_FALSE(controller.PrefetchersShouldBeEnabled());
}

TEST(HysteresisControllerTest, ShortBurstDoesNotDisable) {
  HysteresisController controller(TestConfig(/*sustain_ticks=*/3));
  controller.Tick(0.9);
  controller.Tick(0.9);
  // Excursion ends one tick before Δ: timer must fully reset.
  EXPECT_EQ(controller.Tick(0.7), ControllerAction::kNone);
  EXPECT_EQ(controller.state(), ControllerState::kEnabledSteady);
  // A new excursion starts from zero.
  controller.Tick(0.9);
  controller.Tick(0.9);
  EXPECT_TRUE(controller.PrefetchersShouldBeEnabled());
  EXPECT_EQ(controller.Tick(0.9), ControllerAction::kDisablePrefetchers);
}

TEST(HysteresisControllerTest, BetweenThresholdsHoldsDisabledState) {
  // Paper Fig. 9: after disabling, utilization between LT and UT must NOT
  // re-enable (that is the two-threshold hysteresis).
  HysteresisController controller(TestConfig(1));
  controller.Tick(0.9);  // disable (Δ = 1 tick)
  EXPECT_FALSE(controller.PrefetchersShouldBeEnabled());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(controller.Tick(0.7), ControllerAction::kNone);
  }
  EXPECT_EQ(controller.state(), ControllerState::kDisabledSteady);
}

TEST(HysteresisControllerTest, SustainedLowReenables) {
  HysteresisController controller(TestConfig(3));
  controller.Tick(0.9);
  controller.Tick(0.9);
  controller.Tick(0.9);  // disabled
  EXPECT_EQ(controller.Tick(0.5), ControllerAction::kNone);  // arming 1
  EXPECT_EQ(controller.state(), ControllerState::kDisabledArming);
  EXPECT_EQ(controller.Tick(0.5), ControllerAction::kNone);  // arming 2
  EXPECT_EQ(controller.Tick(0.5), ControllerAction::kEnablePrefetchers);
  EXPECT_TRUE(controller.PrefetchersShouldBeEnabled());
  EXPECT_EQ(controller.toggle_count(), 2u);
}

TEST(HysteresisControllerTest, BounceAboveLowerThresholdResetsEnableTimer) {
  HysteresisController controller(TestConfig(3));
  controller.Tick(0.9);
  controller.Tick(0.9);
  controller.Tick(0.9);  // disabled
  controller.Tick(0.5);
  controller.Tick(0.5);
  // Bounce back above LT one tick before re-enable: full reset.
  EXPECT_EQ(controller.Tick(0.65), ControllerAction::kNone);
  EXPECT_EQ(controller.state(), ControllerState::kDisabledSteady);
  controller.Tick(0.5);
  controller.Tick(0.5);
  EXPECT_FALSE(controller.PrefetchersShouldBeEnabled());
  EXPECT_EQ(controller.Tick(0.5), ControllerAction::kEnablePrefetchers);
}

TEST(HysteresisControllerTest, ZeroSustainActsImmediately) {
  HysteresisController controller(TestConfig(0));
  EXPECT_EQ(controller.Tick(0.81), ControllerAction::kDisablePrefetchers);
  EXPECT_EQ(controller.Tick(0.59), ControllerAction::kEnablePrefetchers);
}

TEST(HysteresisControllerTest, ExactThresholdValuesDoNotTrigger) {
  HysteresisController controller(TestConfig(1));
  // Exactly at UT: not "above", no disable.
  EXPECT_EQ(controller.Tick(0.80), ControllerAction::kNone);
  EXPECT_EQ(controller.state(), ControllerState::kEnabledSteady);
  controller.Tick(0.81);  // disable
  ASSERT_FALSE(controller.PrefetchersShouldBeEnabled());
  // Exactly at LT: not "below", no enable.
  EXPECT_EQ(controller.Tick(0.60), ControllerAction::kNone);
  EXPECT_EQ(controller.state(), ControllerState::kDisabledSteady);
}

TEST(HysteresisControllerTest, ResetRestoresPowerOnState) {
  HysteresisController controller(TestConfig(1));
  controller.Tick(0.9);
  EXPECT_FALSE(controller.PrefetchersShouldBeEnabled());
  controller.Reset();
  EXPECT_EQ(controller.state(), ControllerState::kEnabledSteady);
  EXPECT_EQ(controller.timer_ns(), 0);
}

TEST(HysteresisControllerTest, Fig9Scenario) {
  // Reproduces the paper's worked example (§3): UT 80 %, LT 60 %.
  // t=0..: sustained above UT => disable; dip below UT but above LT at
  // t=7.5 => stays disabled; below LT at t=10 => enable; between LT and
  // UT before t=20 => stays enabled.
  HysteresisController controller(TestConfig(2));
  controller.Tick(0.85);
  EXPECT_EQ(controller.Tick(0.86), ControllerAction::kDisablePrefetchers);
  // Falls below UT (but not LT): remains disabled.
  controller.Tick(0.75);
  controller.Tick(0.72);
  EXPECT_FALSE(controller.PrefetchersShouldBeEnabled());
  // Falls below LT for a sustained period: re-enabled.
  controller.Tick(0.55);
  EXPECT_EQ(controller.Tick(0.52), ControllerAction::kEnablePrefetchers);
  // Exceeds LT but not UT: remains enabled.
  controller.Tick(0.7);
  controller.Tick(0.75);
  EXPECT_TRUE(controller.PrefetchersShouldBeEnabled());
  EXPECT_EQ(controller.toggle_count(), 2u);
}

TEST(HysteresisControllerDeathTest, InvalidConfigAborts) {
  ControllerConfig bad = TestConfig();
  bad.lower_threshold = 0.9;  // above upper
  EXPECT_DEATH(HysteresisController{bad}, "CHECK");
}

// ---------------------------------------------------------------------------
// Property tests over random utilization walks.

struct WalkParams {
  std::uint64_t seed;
  SimTimeNs sustain_ticks;
};

class ControllerPropertyTest
    : public ::testing::TestWithParam<WalkParams> {};

TEST_P(ControllerPropertyTest, InvariantsHoldOnRandomWalk) {
  const WalkParams params = GetParam();
  const ControllerConfig config = TestConfig(params.sustain_ticks);
  HysteresisController controller(config);
  Rng rng(params.seed);

  double u = 0.5;
  int consecutive_above_ut = 0;
  int consecutive_below_lt = 0;
  std::uint64_t last_toggles = 0;

  for (int tick = 0; tick < 20000; ++tick) {
    u = std::clamp(u + rng.NextGaussian(0.0, 0.08), 0.0, 1.2);
    const bool was_enabled = controller.PrefetchersShouldBeEnabled();
    const ControllerAction action = controller.Tick(u);
    const bool now_enabled = controller.PrefetchersShouldBeEnabled();

    if (u > config.upper_threshold) {
      ++consecutive_above_ut;
    } else {
      consecutive_above_ut = 0;
    }
    if (u < config.lower_threshold) {
      ++consecutive_below_lt;
    } else {
      consecutive_below_lt = 0;
    }

    // Invariant 1: action matches the state transition.
    if (action == ControllerAction::kDisablePrefetchers) {
      EXPECT_TRUE(was_enabled);
      EXPECT_FALSE(now_enabled);
    } else if (action == ControllerAction::kEnablePrefetchers) {
      EXPECT_FALSE(was_enabled);
      EXPECT_TRUE(now_enabled);
    } else {
      EXPECT_EQ(was_enabled, now_enabled);
    }

    // Invariant 2: a disable only fires after Δ consecutive ticks above
    // UT; an enable only after Δ consecutive ticks below LT.
    const int required =
        static_cast<int>(config.sustain_duration_ns / config.tick_period_ns);
    if (action == ControllerAction::kDisablePrefetchers) {
      EXPECT_GE(consecutive_above_ut, std::max(required, 1));
    }
    if (action == ControllerAction::kEnablePrefetchers) {
      EXPECT_GE(consecutive_below_lt, std::max(required, 1));
    }

    // Invariant 3: toggle count increments exactly on actions.
    const std::uint64_t toggles = controller.toggle_count();
    if (action == ControllerAction::kNone) {
      EXPECT_EQ(toggles, last_toggles);
    } else {
      EXPECT_EQ(toggles, last_toggles + 1);
    }
    last_toggles = toggles;

    // Invariant 4: the timer never exceeds Δ.
    EXPECT_LE(controller.timer_ns(), config.sustain_duration_ns);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWalks, ControllerPropertyTest,
    ::testing::Values(WalkParams{1, 1}, WalkParams{2, 3}, WalkParams{3, 5},
                      WalkParams{4, 10}, WalkParams{5, 3}, WalkParams{6, 0},
                      WalkParams{7, 7}, WalkParams{8, 2}));

// Hysteresis effectiveness: with wider thresholds or longer Δ, the
// controller toggles no more often on the same signal.
TEST(HysteresisControllerTest, LongerSustainTogglesNoMore) {
  auto run = [](SimTimeNs sustain_ticks) {
    HysteresisController controller(TestConfig(sustain_ticks));
    Rng rng(99);
    double u = 0.7;
    for (int i = 0; i < 50000; ++i) {
      u = std::clamp(u + rng.NextGaussian(0.0, 0.10), 0.0, 1.2);
      controller.Tick(u);
    }
    return controller.toggle_count();
  };
  const std::uint64_t fast = run(1);
  const std::uint64_t slow = run(8);
  EXPECT_LE(slow, fast);
  EXPECT_GT(fast, 0u);
}

}  // namespace
}  // namespace limoncello
