#include "workloads/generators.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace limoncello {
namespace {

TEST(SequentialStreamGeneratorTest, ProducesForwardRuns) {
  SequentialStreamGenerator::Options o;
  o.working_set_bytes = 1 * kMiB;
  o.mean_stream_bytes = 4096;
  o.stream_sigma = 0.1;  // tight: nearly fixed stream length
  SequentialStreamGenerator gen(o, Rng(1));
  MemRef prev{};
  ASSERT_TRUE(gen.Next(&prev));
  int forward_steps = 0;
  int total = 0;
  MemRef ref;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(gen.Next(&ref));
    if (ref.addr == prev.addr + kCacheLineBytes) ++forward_steps;
    prev = ref;
    ++total;
  }
  // Streams average 64 lines, so the overwhelming majority of steps are
  // +1 line.
  EXPECT_GT(forward_steps, total * 8 / 10);
}

TEST(SequentialStreamGeneratorTest, StoreFractionEmitsStores) {
  SequentialStreamGenerator::Options o;
  o.store_fraction = 1.0;
  SequentialStreamGenerator gen(o, Rng(2));
  int loads = 0;
  int stores = 0;
  MemRef ref;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(gen.Next(&ref));
    (ref.op == MemOp::kStore ? stores : loads)++;
  }
  // store_fraction=1: every load paired with one store.
  EXPECT_NEAR(static_cast<double>(stores) / loads, 1.0, 0.05);
}

TEST(SequentialStreamGeneratorTest, AttributesFunction) {
  SequentialStreamGenerator::Options o;
  o.function = 7;
  SequentialStreamGenerator gen(o, Rng(3));
  MemRef ref;
  ASSERT_TRUE(gen.Next(&ref));
  EXPECT_EQ(ref.function, 7);
}

TEST(StridedGeneratorTest, ConstantStride) {
  StridedGenerator::Options o;
  o.stride_lines = 4;
  o.working_set_bytes = 1 * kMiB;
  StridedGenerator gen(o, Rng(4));
  MemRef prev{};
  ASSERT_TRUE(gen.Next(&prev));
  int strided = 0;
  MemRef ref;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(gen.Next(&ref));
    if (ref.addr == prev.addr + 4 * kCacheLineBytes) ++strided;
    prev = ref;
  }
  EXPECT_GT(strided, 450);  // occasional wrap at the working-set end
}

TEST(RandomAccessGeneratorTest, StaysInWorkingSetAndSpreads) {
  RandomAccessGenerator::Options o;
  o.working_set_bytes = 64 * kKiB;  // 1024 lines
  RandomAccessGenerator gen(o, Rng(5));
  std::set<Addr> lines;
  MemRef ref;
  for (int i = 0; i < 4000; ++i) {
    ASSERT_TRUE(gen.Next(&ref));
    EXPECT_LT(ref.addr, o.working_set_bytes);
    lines.insert(LineAddr(ref.addr));
  }
  // Uniform over 1024 lines: nearly all lines touched after 4000 draws.
  EXPECT_GT(lines.size(), 900u);
}

TEST(MemcpyTraceGeneratorTest, CoversSourceAndDestinationExactly) {
  MemcpyTraceGenerator::Options o;
  o.src = 0;
  o.dst = 1 * kMiB;
  o.bytes = 64 * kCacheLineBytes;
  MemcpyTraceGenerator gen(o);
  std::set<Addr> loads;
  std::set<Addr> stores;
  MemRef ref;
  while (gen.Next(&ref)) {
    if (ref.op == MemOp::kLoad) loads.insert(LineAddr(ref.addr));
    if (ref.op == MemOp::kStore) stores.insert(LineAddr(ref.addr));
  }
  EXPECT_EQ(loads.size(), 64u);
  EXPECT_EQ(stores.size(), 64u);
  EXPECT_FALSE(gen.Next(&ref));  // stays exhausted
}

TEST(MemcpyTraceGeneratorTest, SoftwarePrefetchesLeadLoads) {
  MemcpyTraceGenerator::Options o;
  o.src = 0;
  o.dst = 1 * kMiB;
  o.bytes = 32 * kCacheLineBytes;
  o.sw_prefetch_distance_bytes = 4 * kCacheLineBytes;
  o.sw_prefetch_degree_bytes = 2 * kCacheLineBytes;
  MemcpyTraceGenerator gen(o);
  std::map<Addr, int> prefetch_order;
  std::map<Addr, int> load_order;
  int step = 0;
  MemRef ref;
  while (gen.Next(&ref)) {
    ++step;
    if (ref.op == MemOp::kSoftwarePrefetch) {
      prefetch_order.emplace(LineAddr(ref.addr), step);
    } else if (ref.op == MemOp::kLoad) {
      load_order.emplace(LineAddr(ref.addr), step);
    }
  }
  // Every loaded source line was software-prefetched first.
  for (const auto& [line, when] : load_order) {
    auto it = prefetch_order.find(line);
    ASSERT_NE(it, prefetch_order.end()) << "line " << line;
    EXPECT_LT(it->second, when);
  }
  // Prefetches never run past the source end.
  for (const auto& [line, when] : prefetch_order) {
    EXPECT_LT(line, LineAddr(o.src) + 32);
  }
}

TEST(MemcpyTraceGeneratorTest, MinSizeGateSuppressesPrefetch) {
  MemcpyTraceGenerator::Options o;
  o.bytes = 16 * kCacheLineBytes;
  o.dst = 1 * kMiB;
  o.sw_prefetch_distance_bytes = 256;
  o.sw_prefetch_degree_bytes = 128;
  o.sw_prefetch_min_size_bytes = 1 * kMiB;  // call too small
  MemcpyTraceGenerator gen(o);
  MemRef ref;
  while (gen.Next(&ref)) {
    EXPECT_NE(ref.op, MemOp::kSoftwarePrefetch);
  }
}

TEST(MemcpyTraceGeneratorTest, ZeroBytesYieldsEmptyTrace) {
  MemcpyTraceGenerator::Options o;
  o.bytes = 0;
  MemcpyTraceGenerator gen(o);
  MemRef ref;
  EXPECT_FALSE(gen.Next(&ref));
}

TEST(MixGeneratorTest, RespectsWeightsApproximately) {
  auto make = [](FunctionId id) {
    SequentialStreamGenerator::Options o;
    o.function = id;
    return std::make_unique<SequentialStreamGenerator>(o, Rng(id));
  };
  std::vector<MixGenerator::Element> elems;
  elems.push_back({make(1), 3.0, 16});
  elems.push_back({make(2), 1.0, 16});
  MixGenerator mix(std::move(elems), Rng(9));
  int f1 = 0;
  int f2 = 0;
  MemRef ref;
  for (int i = 0; i < 20000; ++i) {
    ASSERT_TRUE(mix.Next(&ref));
    (ref.function == 1 ? f1 : f2)++;
  }
  EXPECT_NEAR(static_cast<double>(f1) / (f1 + f2), 0.75, 0.06);
}

TEST(MixGeneratorTest, DropsExhaustedChildrenAndFinishes) {
  MemcpyTraceGenerator::Options a;
  a.bytes = 8 * kCacheLineBytes;
  a.function = 1;
  MemcpyTraceGenerator::Options b;
  b.bytes = 8 * kCacheLineBytes;
  b.function = 2;
  std::vector<MixGenerator::Element> elems;
  elems.push_back({std::make_unique<MemcpyTraceGenerator>(a), 1.0, 4});
  elems.push_back({std::make_unique<MemcpyTraceGenerator>(b), 1.0, 4});
  MixGenerator mix(std::move(elems), Rng(10));
  int count = 0;
  MemRef ref;
  while (mix.Next(&ref)) ++count;
  // Both finite children fully drained: 8 lines x (load+store) each.
  EXPECT_EQ(count, 2 * 8 * 2);
}

TEST(MemcpySizeDistributionTest, MostCopiesSmallWithHeavyTail) {
  MemcpySizeDistribution dist;
  Rng rng(11);
  int small = 0;
  int large = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t s = dist.Sample(rng);
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, dist.options().max_bytes);
    if (s <= 1024) ++small;
    if (s >= 64 * 1024) ++large;
  }
  // Paper Fig. 14: "Most copy sizes are small" with a long tail.
  EXPECT_GT(small, kN * 3 / 4);
  EXPECT_GT(large, 0);
}

TEST(MemcpySizeDistributionTest, Deterministic) {
  MemcpySizeDistribution dist;
  Rng a(1);
  Rng b(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dist.Sample(a), dist.Sample(b));
  }
}

}  // namespace
}  // namespace limoncello
