#include "workloads/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/machine/socket.h"
#include "workloads/generators.h"

namespace limoncello {
namespace {

std::vector<MemRef> SampleRefs() {
  return {
      {0x1000, 64, MemOp::kLoad, 3, 7},
      {0xdeadbeefcafe, 128, MemOp::kStore, 0, 1},
      {0x40, 64, MemOp::kSoftwarePrefetch, 65534, 255},
      {0, 1, MemOp::kLoad, 0, 0},
  };
}

TEST(TraceIoTest, RoundTripInMemory) {
  TraceWriter writer;
  for (const MemRef& ref : SampleRefs()) writer.Append(ref);
  TraceReader reader;
  ASSERT_TRUE(reader.Parse(writer.buffer())) << reader.error();
  const auto& refs = reader.refs();
  const auto expected = SampleRefs();
  ASSERT_EQ(refs.size(), expected.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(refs[i].addr, expected[i].addr) << i;
    EXPECT_EQ(refs[i].size, expected[i].size) << i;
    EXPECT_EQ(refs[i].op, expected[i].op) << i;
    EXPECT_EQ(refs[i].function, expected[i].function) << i;
    EXPECT_EQ(refs[i].gap_instructions, expected[i].gap_instructions) << i;
  }
}

TEST(TraceIoTest, RoundTripThroughFile) {
  const std::string path = ::testing::TempDir() + "/trace_test.bin";
  TraceWriter writer;
  for (const MemRef& ref : SampleRefs()) writer.Append(ref);
  ASSERT_TRUE(writer.WriteFile(path));
  TraceReader reader;
  ASSERT_TRUE(reader.ReadFile(path)) << reader.error();
  EXPECT_EQ(reader.refs().size(), SampleRefs().size());
  std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  TraceWriter writer;
  TraceReader reader;
  ASSERT_TRUE(reader.Parse(writer.buffer()));
  EXPECT_TRUE(reader.refs().empty());
}

TEST(TraceIoTest, RejectsBadMagic) {
  TraceWriter writer;
  writer.Append(SampleRefs()[0]);
  std::string corrupt = writer.buffer();
  corrupt[0] = 'X';
  TraceReader reader;
  EXPECT_FALSE(reader.Parse(corrupt));
  EXPECT_EQ(reader.error(), "bad magic");
}

TEST(TraceIoTest, RejectsWrongVersion) {
  TraceWriter writer;
  std::string corrupt = writer.buffer();
  corrupt[4] = 99;
  TraceReader reader;
  EXPECT_FALSE(reader.Parse(corrupt));
  EXPECT_EQ(reader.error(), "unsupported version");
}

TEST(TraceIoTest, RejectsTruncation) {
  TraceWriter writer;
  for (const MemRef& ref : SampleRefs()) writer.Append(ref);
  TraceReader reader;
  EXPECT_FALSE(reader.Parse(
      writer.buffer().substr(0, writer.buffer().size() - 1)));
  EXPECT_FALSE(reader.Parse(writer.buffer().substr(0, 3)));
}

TEST(TraceIoTest, RejectsInvalidOp) {
  TraceWriter writer;
  writer.Append(SampleRefs()[0]);
  std::string corrupt = writer.buffer();
  corrupt[16 + 12] = 9;  // op byte of record 0
  TraceReader reader;
  EXPECT_FALSE(reader.Parse(corrupt));
  EXPECT_EQ(reader.error(), "invalid op");
}

TEST(TraceIoTest, RecordAllCapturesGenerator) {
  SequentialStreamGenerator::Options o;
  o.function = 5;
  SequentialStreamGenerator gen(o, Rng(1));
  TraceWriter writer;
  writer.RecordAll(&gen, 1000);
  EXPECT_EQ(writer.size(), 1000u);
  TraceReader reader;
  ASSERT_TRUE(reader.Parse(writer.buffer()));
  EXPECT_EQ(reader.refs()[0].function, 5);
}

TEST(TraceReplayGeneratorTest, ReplaysExactly) {
  TraceReplayGenerator replay(SampleRefs(), /*loop=*/false);
  MemRef ref;
  for (const MemRef& expected : SampleRefs()) {
    ASSERT_TRUE(replay.Next(&ref));
    EXPECT_EQ(ref.addr, expected.addr);
  }
  EXPECT_FALSE(replay.Next(&ref));
}

TEST(TraceReplayGeneratorTest, LoopWrapsAround) {
  TraceReplayGenerator replay(SampleRefs(), /*loop=*/true);
  MemRef ref;
  for (int i = 0; i < 11; ++i) ASSERT_TRUE(replay.Next(&ref));
  // 11 = 2 full loops of 4 + 3: the 11th record is index 2.
  EXPECT_EQ(ref.addr, SampleRefs()[2].addr);
}

TEST(TraceReplayGeneratorTest, EmptyLoopTerminates) {
  TraceReplayGenerator replay({}, /*loop=*/true);
  MemRef ref;
  EXPECT_FALSE(replay.Next(&ref));
}

TEST(TraceIoTest, RecordedTraceReproducesSimulation) {
  // Record a generator, then run the live generator and its recording
  // through identical sockets: identical PMU counters.
  auto make_gen = [] {
    RandomAccessGenerator::Options o;
    o.working_set_bytes = 8 * kMiB;
    o.function = 0;
    return std::make_unique<RandomAccessGenerator>(o, Rng(3));
  };
  TraceWriter writer;
  {
    auto gen = make_gen();
    writer.RecordAll(gen.get(), 200000);
  }
  TraceReader reader;
  ASSERT_TRUE(reader.Parse(writer.buffer()));

  SocketConfig config;
  config.num_cores = 1;
  config.memory.jitter_fraction = 0.0;
  Socket live(config, 2, Rng(9));
  Socket replayed(config, 2, Rng(9));
  live.SetWorkload(0, make_gen());
  replayed.SetWorkload(0, std::make_unique<TraceReplayGenerator>(
                              reader.refs(), /*loop=*/true));
  for (int epoch = 0; epoch < 10; ++epoch) {
    live.Step(100 * kNsPerUs);
    replayed.Step(100 * kNsPerUs);
  }
  EXPECT_EQ(live.counters().instructions,
            replayed.counters().instructions);
  EXPECT_EQ(live.counters().llc_demand_misses,
            replayed.counters().llc_demand_misses);
  EXPECT_EQ(live.counters().DramTotalBytes(),
            replayed.counters().DramTotalBytes());
}

}  // namespace
}  // namespace limoncello
