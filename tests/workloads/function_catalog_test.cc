#include "workloads/function_catalog.h"

#include <gtest/gtest.h>

#include <set>

namespace limoncello {
namespace {

TEST(FunctionCatalogTest, FleetDefaultHasAllCategories) {
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  EXPECT_GE(catalog.size(), 16u);
  for (FunctionCategory cat :
       {FunctionCategory::kCompression, FunctionCategory::kDataTransmission,
        FunctionCategory::kHashing, FunctionCategory::kDataMovement,
        FunctionCategory::kNonTax}) {
    EXPECT_FALSE(catalog.InCategory(cat).empty())
        << FunctionCategoryName(cat);
  }
}

TEST(FunctionCatalogTest, TaxFunctionsAreStreamy) {
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  for (FunctionCategory cat :
       {FunctionCategory::kCompression, FunctionCategory::kDataTransmission,
        FunctionCategory::kHashing, FunctionCategory::kDataMovement}) {
    for (FunctionId id : catalog.InCategory(cat)) {
      EXPECT_EQ(catalog.spec(id).pattern, AccessPattern::kSequentialStream)
          << catalog.spec(id).name;
    }
  }
}

TEST(FunctionCatalogTest, NamesUnique) {
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  std::set<std::string> names;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    names.insert(catalog.spec(static_cast<FunctionId>(i)).name);
  }
  EXPECT_EQ(names.size(), catalog.size());
}

TEST(FunctionCatalogTest, TaxCycleWeightShareIn30To40PercentBand) {
  // Paper: data-center tax is 30-40 % of fleet cycles.
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  double tax = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const FunctionSpec& spec = catalog.spec(static_cast<FunctionId>(i));
    total += spec.fleet_cycle_weight;
    if (IsTaxCategory(spec.category)) tax += spec.fleet_cycle_weight;
  }
  const double share = tax / total;
  EXPECT_GE(share, 0.30);
  EXPECT_LE(share, 0.45);
}

TEST(FunctionCatalogTest, GeneratorsTagTheirFunction) {
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const auto id = static_cast<FunctionId>(i);
    auto gen = catalog.MakeGenerator(id, Rng(1).Fork(i));
    MemRef ref;
    ASSERT_TRUE(gen->Next(&ref));
    EXPECT_EQ(ref.function, id) << catalog.spec(id).name;
  }
}

TEST(FunctionCatalogTest, FleetMixTouchesEveryFunction) {
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  auto mix = catalog.MakeFleetMix(Rng(7));
  std::set<FunctionId> seen;
  MemRef ref;
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(mix->Next(&ref));
    seen.insert(ref.function);
  }
  EXPECT_EQ(seen.size(), catalog.size());
}

TEST(FunctionCatalogTest, AddAssignsSequentialIds) {
  FunctionCatalog catalog;
  FunctionSpec a;
  a.name = "f0";
  FunctionSpec b;
  b.name = "f1";
  EXPECT_EQ(catalog.Add(a), 0);
  EXPECT_EQ(catalog.Add(b), 1);
  EXPECT_EQ(catalog.spec(1).name, "f1");
}

TEST(FunctionCategoryTest, TaxPredicate) {
  EXPECT_TRUE(IsTaxCategory(FunctionCategory::kCompression));
  EXPECT_TRUE(IsTaxCategory(FunctionCategory::kDataMovement));
  EXPECT_TRUE(IsTaxCategory(FunctionCategory::kHashing));
  EXPECT_TRUE(IsTaxCategory(FunctionCategory::kDataTransmission));
  EXPECT_FALSE(IsTaxCategory(FunctionCategory::kNonTax));
}

}  // namespace
}  // namespace limoncello
