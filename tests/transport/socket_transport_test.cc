// Socket transport end to end, in process: SocketListener + ControlPlane
// on one side, ExporterClient on the other, real UNIX/TCP sockets in
// between — plus the FlakyProxy torturing the wire. These tests drive
// the exact objects the limoncellod/limoncello-exporter binaries run;
// only the process boundary is folded away.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "control/control_plane.h"
#include "transport/exporter_client.h"
#include "transport/flaky_proxy.h"
#include "transport/socket_addr.h"
#include "transport/socket_listener.h"

namespace limoncello {
namespace {

// Unique-enough UNIX socket path per test (sockaddr_un is short; keep
// it under /tmp, not the build tree).
SocketAddress UnixAddress(const char* tag) {
  static int counter = 0;
  char path[96];
  std::snprintf(path, sizeof(path), "/tmp/limoncello_test_%d_%s_%d.sock",
                static_cast<int>(::getpid()), tag, counter++);
  SocketAddress address;
  address.kind = SocketAddress::Kind::kUnix;
  address.path = path;
  return address;
}

ControlPlaneOptions SmallPlane(int endpoints) {
  ControlPlaneOptions options;
  options.num_endpoints = endpoints;
  options.num_shards = 2;
  options.config.tick_period_ns = 1'000'000;
  options.config.sustain_duration_ns = 2'000'000;
  options.config.max_missed_samples = 5;
  return options;
}

ExporterClient::Options ClientOptions(const SocketAddress& address,
                                      std::uint32_t endpoint_id) {
  ExporterClient::Options options;
  options.address = address;
  options.endpoint.endpoint_id = endpoint_id;
  options.endpoint.samples_per_batch = 1;  // a frame per Step
  options.tick_period_ms = 0;
  return options;
}

// One plane + listener pair wired the way RunListen wires them.
struct PlaneUnderTest {
  explicit PlaneUnderTest(const SocketAddress& address, int endpoints) {
    SocketListener::Options lo;
    lo.address = address;
    listener = std::make_unique<SocketListener>(lo);
    plane = std::make_unique<ControlPlane>(
        SmallPlane(endpoints),
        [this](std::uint32_t id, bool enable) {
          return listener->SendActuation(id, enable);
        });
    listener->BindPlane(plane.get());
  }

  // One control-loop turn: socket events, then a drain, then a tick.
  void Turn(std::uint64_t now_ns, bool tick = false) {
    listener->PollOnce(0, now_ns);
    plane->DrainAll(now_ns);
    if (tick) plane->AdvanceTick();
  }

  std::unique_ptr<SocketListener> listener;
  std::unique_ptr<ControlPlane> plane;
};

TEST(SocketTransportTest, TelemetryFlowsAndIntentIsReasserted) {
  const SocketAddress address = UnixAddress("flow");
  PlaneUnderTest pt(address, 2);
  ASSERT_TRUE(pt.listener->Start());

  ExporterClient client(ClientOptions(address, 0));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(client.Step()) << i;
    pt.Turn(static_cast<std::uint64_t>(i));
  }

  const ControlPlane::Stats stats = pt.plane->SnapshotStats();
  EXPECT_GE(stats.frames_decoded, 20u);
  EXPECT_EQ(stats.decode_failures, 0u);
  EXPECT_GE(stats.samples_accepted, 20u);

  const SocketListener::Stats wire = pt.listener->SnapshotStats();
  EXPECT_EQ(wire.accepts, 1u);
  EXPECT_GE(wire.frames_ingested, 20u);
  EXPECT_EQ(wire.corrupt_frames, 0u);
  // The first CRC-valid frame bound the route and re-asserted the
  // plane's intent down the fresh connection; the client applied it.
  EXPECT_GE(wire.reroutes, 1u);
  EXPECT_GE(wire.intent_reasserts, 1u);
  EXPECT_GE(client.stats().actuations_applied, 1u);
}

TEST(SocketTransportTest, TcpLoopbackWithAutoAssignedPort) {
  SocketAddress address;
  address.kind = SocketAddress::Kind::kTcp;
  address.host = "127.0.0.1";
  address.port = 0;  // kernel assigns
  PlaneUnderTest pt(address, 1);
  ASSERT_TRUE(pt.listener->Start());
  ASSERT_GT(pt.listener->bound_port(), 0);

  SocketAddress dial = address;
  dial.port = pt.listener->bound_port();
  ExporterClient client(ClientOptions(dial, 0));
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(client.Step()) << i;
    pt.Turn(static_cast<std::uint64_t>(i));
  }
  EXPECT_GE(pt.plane->SnapshotStats().samples_accepted, 8u);
}

TEST(SocketTransportTest, RestartedExporterIsHealedWithinStalenessWindow) {
  const SocketAddress address = UnixAddress("restart");
  PlaneUnderTest pt(address, 1);
  ASSERT_TRUE(pt.listener->Start());

  // First exporter incarnation advances the sequence watermark.
  auto client = std::make_unique<ExporterClient>(ClientOptions(address, 0));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->Step());
    pt.Turn(static_cast<std::uint64_t>(i));
  }
  const std::uint64_t accepted_before =
      pt.plane->SnapshotStats().samples_accepted;
  ASSERT_GE(accepted_before, 5u);

  // Kill it (destructor closes the socket like _exit would)...
  client.reset();
  pt.Turn(100);
  EXPECT_EQ(pt.listener->SnapshotStats().disconnects, 1u);

  // ...and restart: the new process numbers frames from 1 again, so the
  // plane rejects the stream until the staleness sweep forgets the old
  // watermark — bounded by max_missed_samples ticks, after which the
  // fresh stream is adopted and telemetry progresses again.
  ExporterClient reborn(ClientOptions(address, 0));
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(reborn.Step());
    pt.Turn(static_cast<std::uint64_t>(200 + i), /*tick=*/true);
  }
  const ControlPlane::Stats stats = pt.plane->SnapshotStats();
  EXPECT_GT(stats.sequence_rejects, 0u);          // the rejection phase
  EXPECT_GE(stats.stale_endpoint_failsafes, 1u);  // the forgetting
  EXPECT_GT(stats.samples_accepted, accepted_before);  // the healing
  EXPECT_FALSE(pt.plane->EndpointInFailsafe(0));

  const SocketListener::Stats wire = pt.listener->SnapshotStats();
  EXPECT_GE(wire.reroutes, 2u);          // route rebound to the new fd
  EXPECT_GE(wire.intent_reasserts, 2u);  // intent pushed to it again
  EXPECT_GE(reborn.stats().actuations_applied, 1u);
}

TEST(SocketTransportTest, ChaosProxyOnTheWireIsSurvived) {
  const SocketAddress plane_address = UnixAddress("chaosup");
  const SocketAddress proxy_address = UnixAddress("chaosdn");
  PlaneUnderTest pt(plane_address, 1);
  ASSERT_TRUE(pt.listener->Start());

  FlakyProxy::Options po;
  po.listen_address = proxy_address;
  po.upstream_address = plane_address;
  po.seed = 99;
  po.spec.transport_drop_rate = 0.08;
  po.spec.transport_reorder_rate = 0.05;
  po.spec.transport_duplicate_rate = 0.05;
  po.spec.transport_truncate_rate = 0.10;
  po.spec.transport_stale_rate = 0.05;
  FlakyProxy proxy(po);
  ASSERT_TRUE(proxy.Start());

  ExporterClient client(ClientOptions(proxy_address, 0));
  for (int i = 0; i < 300; ++i) {
    client.Step();
    proxy.PollOnce(0);
    pt.Turn(static_cast<std::uint64_t>(i), /*tick=*/(i % 10 == 9));
  }

  const FlakyProxy::Stats chaos = proxy.SnapshotStats();
  EXPECT_GT(chaos.frames_forwarded, 100u);
  EXPECT_GT(chaos.frames_truncated, 0u);
  EXPECT_GT(chaos.frames_dropped, 0u);

  // Truncated frames tore the upstream stream mid-frame; the listener's
  // byte-scan resync absorbed every tear and the CRC gate let only
  // intact frames through — the plane never saw a malformed byte.
  const SocketListener::Stats wire = pt.listener->SnapshotStats();
  EXPECT_GT(wire.resync_bytes, 0u);
  const ControlPlane::Stats stats = pt.plane->SnapshotStats();
  EXPECT_EQ(stats.decode_failures, 0u);
  EXPECT_GT(stats.samples_accepted, 50u);
  // Duplicates and stale re-deliveries surfaced as sequence rejects,
  // not double-applied samples.
  EXPECT_GT(stats.sequence_rejects, 0u);
}

}  // namespace
}  // namespace limoncello
