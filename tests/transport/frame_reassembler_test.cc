// FrameReassembler: the stream-to-frame boundary cases the socket
// transport lives or dies by — split deliveries, coalesced deliveries,
// torn final frames, hostile length fields, and byte-scan resync.
#include "transport/frame_reassembler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "control/telemetry_batch.h"
#include "util/rng.h"
#include "util/wire.h"

namespace limoncello {
namespace {

FrameReassembler::Options TelemetryReassembly() {
  FrameReassembler::Options options;
  options.magic = kTelemetryBatchMagic;
  options.max_payload_bytes = kTelemetryBatchFixedPayloadBytes +
                              8 * TelemetryBatch::kMaxSamples;
  options.read_chunk_bytes = 4096;
  return options;
}

std::vector<unsigned char> MakeFrame(std::uint64_t sequence,
                                     std::uint32_t num_samples = 2) {
  TelemetryBatch batch;
  batch.endpoint_id = 7;
  batch.sequence = sequence;
  batch.num_samples = num_samples;
  for (std::uint32_t i = 0; i < num_samples; ++i) {
    batch.utilization[i] = 0.5;
  }
  std::vector<unsigned char> frame(kMaxTelemetryFrameBytes);
  const std::size_t size = EncodeTelemetryBatch(batch, frame.data());
  EXPECT_GT(size, 0u);
  frame.resize(size);
  return frame;
}

// Collects delivered frames' sequence numbers (decoding proves the sink
// only ever sees intact frames).
struct Collector {
  std::vector<std::uint64_t> sequences;

  FrameReassembler::FrameSink Sink() {
    return [this](const unsigned char* frame, std::size_t size) {
      TelemetryBatch batch;
      ASSERT_EQ(DecodeTelemetryBatch(frame, size, &batch),
                BatchDecodeStatus::kOk);
      sequences.push_back(batch.sequence);
    };
  }
};

TEST(FrameReassemblerTest, WholeFrameInOneRead) {
  FrameReassembler reassembler(TelemetryReassembly());
  Collector collector;
  const auto frame = MakeFrame(1);
  EXPECT_EQ(reassembler.Ingest(frame.data(), frame.size(),
                               collector.Sink()),
            1u);
  EXPECT_EQ(collector.sequences, std::vector<std::uint64_t>{1});
  EXPECT_EQ(reassembler.buffered_bytes(), 0u);
}

TEST(FrameReassemblerTest, OneByteAtATimeDelivery) {
  FrameReassembler reassembler(TelemetryReassembly());
  Collector collector;
  const auto frame = MakeFrame(3);
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    EXPECT_EQ(reassembler.Ingest(&frame[i], 1, collector.Sink()), 0u)
        << "frame surfaced " << (frame.size() - 1 - i)
        << " bytes before its CRC arrived";
  }
  EXPECT_EQ(reassembler.Ingest(&frame[frame.size() - 1], 1,
                               collector.Sink()),
            1u);
  EXPECT_EQ(collector.sequences, std::vector<std::uint64_t>{3});
  EXPECT_EQ(reassembler.buffered_bytes(), 0u);
}

TEST(FrameReassemblerTest, TwoFramesCoalescedInOneRead) {
  FrameReassembler reassembler(TelemetryReassembly());
  Collector collector;
  auto bytes = MakeFrame(1);
  const auto second = MakeFrame(2, 5);
  bytes.insert(bytes.end(), second.begin(), second.end());
  EXPECT_EQ(reassembler.Ingest(bytes.data(), bytes.size(),
                               collector.Sink()),
            2u);
  EXPECT_EQ(collector.sequences, (std::vector<std::uint64_t>{1, 2}));
}

TEST(FrameReassemblerTest, TruncatedFinalFrameStaysBuffered) {
  // The peer dies mid-frame: the partial frame is held back, never
  // delivered. buffered_bytes() at EOF is how the owner counts the
  // drop (SocketListener::Stats::partial_frame_drops).
  FrameReassembler reassembler(TelemetryReassembly());
  Collector collector;
  auto bytes = MakeFrame(1);
  const auto torn = MakeFrame(2);
  bytes.insert(bytes.end(), torn.begin(), torn.end() - 9);
  EXPECT_EQ(reassembler.Ingest(bytes.data(), bytes.size(),
                               collector.Sink()),
            1u);
  EXPECT_EQ(collector.sequences, std::vector<std::uint64_t>{1});
  EXPECT_EQ(reassembler.buffered_bytes(), torn.size() - 9);
  reassembler.Reset();  // connection teardown
  EXPECT_EQ(reassembler.buffered_bytes(), 0u);
}

TEST(FrameReassemblerTest, OversizeLengthRejectedFromHeaderAlone) {
  // A hostile length field (4 GiB payload) must be rejected from the
  // 12-byte header, before anything buffers the claimed body; the
  // stream then resyncs to the next real frame.
  FrameReassembler reassembler(TelemetryReassembly());
  Collector collector;
  unsigned char header[12];
  StoreU32(header, kTelemetryBatchMagic);
  StoreU32(header + 4, kTelemetryBatchVersion);
  StoreU32(header + 8, 0xFFFFFF00u);
  EXPECT_EQ(reassembler.Ingest(header, sizeof(header), collector.Sink()),
            0u);
  EXPECT_EQ(reassembler.stats().oversize_rejects, 1u);
  // The 12 poison bytes cost at most themselves: a real frame following
  // them is recovered intact.
  const auto frame = MakeFrame(9);
  EXPECT_EQ(reassembler.Ingest(frame.data(), frame.size(),
                               collector.Sink()),
            1u);
  EXPECT_EQ(collector.sequences, std::vector<std::uint64_t>{9});
}

TEST(FrameReassemblerTest, CorruptFrameResyncsToNextMagic) {
  FrameReassembler reassembler(TelemetryReassembly());
  Collector collector;
  auto corrupt = MakeFrame(1);
  corrupt[corrupt.size() / 2] ^= 0x5A;  // body flip: CRC now fails
  const auto good = MakeFrame(2);
  corrupt.insert(corrupt.end(), good.begin(), good.end());
  EXPECT_EQ(reassembler.Ingest(corrupt.data(), corrupt.size(),
                               collector.Sink()),
            1u);
  EXPECT_EQ(collector.sequences, std::vector<std::uint64_t>{2});
  EXPECT_EQ(reassembler.stats().corrupt_frames, 1u);
  EXPECT_GT(reassembler.stats().resync_bytes, 0u);
}

TEST(FrameReassemblerTest, RandomSplitBoundariesDeliverEverything) {
  // 200 frames fed in random-size chunks: every frame surfaces exactly
  // once, in order, regardless of where the reads land.
  FrameReassembler reassembler(TelemetryReassembly());
  Collector collector;
  std::vector<unsigned char> stream;
  for (std::uint64_t s = 1; s <= 200; ++s) {
    const auto frame = MakeFrame(s, 1 + static_cast<std::uint32_t>(s % 8));
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  Rng rng(1234);
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const std::size_t chunk =
        1 + rng.NextBounded(97);  // 1..97 bytes per "read"
    const std::size_t n = std::min(chunk, stream.size() - offset);
    reassembler.Ingest(stream.data() + offset, n, collector.Sink());
    offset += n;
  }
  ASSERT_EQ(collector.sequences.size(), 200u);
  for (std::uint64_t s = 1; s <= 200; ++s) {
    EXPECT_EQ(collector.sequences[s - 1], s);
  }
  EXPECT_EQ(reassembler.stats().frames_extracted, 200u);
  EXPECT_EQ(reassembler.stats().corrupt_frames, 0u);
  EXPECT_EQ(reassembler.stats().resync_bytes, 0u);
}

}  // namespace
}  // namespace limoncello
