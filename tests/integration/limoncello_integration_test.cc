// Full vertical integration on the detailed simulator: telemetry sampled
// from the socket PMU -> hysteresis controller -> MSR writes -> simulated
// prefetch engines react -> traffic and latency change.
#include <gtest/gtest.h>

#include <memory>

#include "core/daemon.h"
#include "telemetry/telemetry.h"
#include "workloads/generators.h"

namespace limoncello {
namespace {

// Time scale: one controller tick == one socket epoch of 100 us. The
// controller is agnostic to absolute time, so this compresses the
// experiment without changing semantics.
constexpr SimTimeNs kTick = 100 * kNsPerUs;

SocketConfig LoadedSocket() {
  SocketConfig config;
  config.num_cores = 4;
  config.memory.peak_gbps = 6.0;  // easy to saturate with 4 cores
  config.memory.jitter_fraction = 0.0;
  return config;
}

ControllerConfig TickScaledController() {
  ControllerConfig config;
  config.upper_threshold = 0.80;
  config.lower_threshold = 0.60;
  config.tick_period_ns = kTick;
  config.sustain_duration_ns = 5 * kTick;
  return config;
}

std::unique_ptr<AccessGenerator> HeavyWorkload(std::uint64_t seed) {
  RandomAccessGenerator::Options o;
  o.working_set_bytes = 256 * kMiB;
  o.gap_instructions_mean = 2.0;
  o.function = 0;
  return std::make_unique<RandomAccessGenerator>(o, Rng(seed));
}

class LimoncelloIntegrationTest : public ::testing::Test {
 protected:
  LimoncelloIntegrationTest()
      : socket_(LoadedSocket(), 4, Rng(1)),
        control_(&socket_.msr_device(), PlatformMsrLayout::kIntelStyle, 0,
                 LoadedSocket().num_cores),
        actuator_(&control_, LoadedSocket().num_cores),
        telemetry_(&socket_),
        daemon_(TickScaledController(), &telemetry_, &actuator_) {}

  // Runs one combined socket-epoch + controller tick.
  LimoncelloDaemon::TickRecord Step() {
    socket_.Step(kTick);
    return daemon_.RunTick(socket_.now());
  }

  Socket socket_;
  PrefetchControl control_;
  MsrPrefetchActuator actuator_;
  SocketUtilizationSource telemetry_;
  LimoncelloDaemon daemon_;
};

TEST_F(LimoncelloIntegrationTest, DisablesUnderLoadReenablesWhenIdle) {
  for (int core = 0; core < 4; ++core) {
    socket_.SetWorkload(core, HeavyWorkload(10 + core));
  }
  // Phase 1: heavy load drives utilization above the upper threshold and,
  // after the sustain duration, the daemon disables the prefetchers.
  bool disabled_at = false;
  for (int t = 0; t < 60; ++t) {
    const auto record = Step();
    if (record.action == ControllerAction::kDisablePrefetchers) {
      disabled_at = true;
      break;
    }
  }
  ASSERT_TRUE(disabled_at);
  EXPECT_FALSE(socket_.AllPrefetchersEnabled());
  EXPECT_EQ(control_.AllDisabled(), true);

  // Phase 2: load vanishes; utilization falls below the lower threshold
  // and the daemon re-enables after the sustain duration.
  for (int core = 0; core < 4; ++core) socket_.SetWorkload(core, nullptr);
  bool reenabled = false;
  for (int t = 0; t < 60; ++t) {
    const auto record = Step();
    if (record.action == ControllerAction::kEnablePrefetchers) {
      reenabled = true;
      break;
    }
  }
  ASSERT_TRUE(reenabled);
  EXPECT_TRUE(socket_.AllPrefetchersEnabled());
  EXPECT_EQ(control_.AllEnabled(), true);
}

TEST_F(LimoncelloIntegrationTest, PrefetchTrafficStopsWhileDisabled) {
  for (int core = 0; core < 4; ++core) {
    socket_.SetWorkload(core, HeavyWorkload(20 + core));
  }
  // Run until disabled.
  for (int t = 0; t < 80 && socket_.AllPrefetchersEnabled(); ++t) Step();
  ASSERT_FALSE(socket_.AllPrefetchersEnabled());
  const std::uint64_t pf_bytes_at_disable =
      socket_.counters().dram_bytes[static_cast<int>(
          TrafficClass::kHwPrefetch)];
  // Keep the load high: prefetchers stay off, no prefetch traffic accrues.
  for (int t = 0; t < 30; ++t) Step();
  EXPECT_FALSE(socket_.AllPrefetchersEnabled());
  EXPECT_EQ(socket_.counters().dram_bytes[static_cast<int>(
                TrafficClass::kHwPrefetch)],
            pf_bytes_at_disable);
}

TEST_F(LimoncelloIntegrationTest, ModerateLoadNeverToggles) {
  // One core of streamy work on a 6 GB/s socket stays under threshold.
  SequentialStreamGenerator::Options o;
  o.working_set_bytes = 64 * kMiB;
  o.gap_instructions_mean = 150.0;  // compute heavy, light on memory
  socket_.SetWorkload(0, std::make_unique<SequentialStreamGenerator>(
                             o, Rng(30)));
  for (int t = 0; t < 100; ++t) Step();
  EXPECT_EQ(daemon_.controller().toggle_count(), 0u);
  EXPECT_TRUE(socket_.AllPrefetchersEnabled());
}

TEST_F(LimoncelloIntegrationTest, StateTraceReflectsSocketState) {
  for (int core = 0; core < 4; ++core) {
    socket_.SetWorkload(core, HeavyWorkload(40 + core));
  }
  for (int t = 0; t < 50; ++t) Step();
  const TimeSeries& trace = daemon_.state_trace();
  ASSERT_FALSE(trace.empty());
  // Trace ends in the off state under sustained load.
  EXPECT_EQ(trace.points().back().value, 0.0);
  // And the fraction of "on" samples is strictly between 0 and 1 (it ran
  // enabled for the warm-up, disabled afterwards).
  const double on_fraction = trace.FractionAbove(0.5);
  EXPECT_GT(on_fraction, 0.0);
  EXPECT_LT(on_fraction, 1.0);
}

}  // namespace
}  // namespace limoncello
