// End-to-end ablation study on the detailed socket simulator: the
// methodology of paper §4.1 (Figs. 11/12) — run the fleet function mix
// with hardware prefetchers on (control) and off (experiment), profile
// per function, and diff.
#include <gtest/gtest.h>

#include "profiling/profile.h"
#include "profiling/sampling_profiler.h"
#include "sim/machine/socket.h"
#include "workloads/function_catalog.h"

namespace limoncello {
namespace {

SocketConfig AblationSocket() {
  SocketConfig config;
  config.num_cores = 4;
  config.memory.peak_gbps = 32.0;  // moderate fleet-average load point
  config.memory.jitter_fraction = 0.0;
  return config;
}

// Runs `machines` simulated sockets with the fleet mix and aggregates
// their function profiles through the sampling profiler.
ProfileAggregate RunPopulation(const FunctionCatalog& catalog,
                               bool prefetchers_on, int machines,
                               std::uint64_t seed_base) {
  ProfileAggregate aggregate(catalog.size());
  SamplingProfiler::Options po;
  po.machine_sample_probability = 1.0;
  po.event_sample_fraction = 0.5;
  SamplingProfiler profiler(po, Rng(seed_base));
  for (int m = 0; m < machines; ++m) {
    Socket socket(AblationSocket(), catalog.size(),
                  Rng(seed_base + static_cast<std::uint64_t>(m)));
    socket.SetAllPrefetchersEnabled(prefetchers_on);
    for (int core = 0; core < 4; ++core) {
      socket.SetWorkload(
          core, catalog.MakeFleetMix(
                    Rng(seed_base + static_cast<std::uint64_t>(m))
                        .Fork(static_cast<std::uint64_t>(core))));
    }
    for (int epoch = 0; epoch < 40; ++epoch) {
      socket.Step(100 * kNsPerUs);
    }
    profiler.CollectFrom(socket.function_profile(), &aggregate);
  }
  return aggregate;
}

class AblationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    catalog_ = new FunctionCatalog(FunctionCatalog::FleetDefault());
    control_ = new ProfileAggregate(
        RunPopulation(*catalog_, /*prefetchers_on=*/true, 6, 1000));
    experiment_ = new ProfileAggregate(
        RunPopulation(*catalog_, /*prefetchers_on=*/false, 6, 1000));
    deltas_ = new std::vector<FunctionDelta>(
        CompareAblation(*control_, *experiment_, *catalog_));
  }

  static FunctionCatalog* catalog_;
  static ProfileAggregate* control_;
  static ProfileAggregate* experiment_;
  static std::vector<FunctionDelta>* deltas_;
};

FunctionCatalog* AblationTest::catalog_ = nullptr;
ProfileAggregate* AblationTest::control_ = nullptr;
ProfileAggregate* AblationTest::experiment_ = nullptr;
std::vector<FunctionDelta>* AblationTest::deltas_ = nullptr;

TEST_F(AblationTest, TaxFunctionsRegressWhenPrefetchersDisabled) {
  // Fig. 11: data-center tax functions lose performance (CPI up, MPKI up)
  // when hardware prefetchers are turned off.
  int tax_regressing = 0;
  int tax_total = 0;
  for (const FunctionDelta& d : *deltas_) {
    if (!IsTaxCategory(d.category)) continue;
    ++tax_total;
    if (d.cycles_change_pct > 0.0 && d.mpki_change_pct > 0.0) {
      ++tax_regressing;
    }
  }
  ASSERT_GT(tax_total, 0);
  EXPECT_GE(tax_regressing, tax_total - 1)
      << "nearly all tax functions must regress";
}

TEST_F(AblationTest, TaxMpkiIncreasesSubstantially) {
  // Streams lose their coverage: MPKI grows by a large factor.
  double worst = 0.0;
  for (const FunctionDelta& d : *deltas_) {
    if (IsTaxCategory(d.category)) worst = std::max(worst, d.mpki_change_pct);
  }
  EXPECT_GT(worst, 100.0);  // at least one tax function doubles its MPKI
}

TEST_F(AblationTest, CategoryRollupMatchesFig12Shape) {
  const auto categories = AggregateByCategory(*deltas_);
  double nontax_change = 0.0;
  bool saw_nontax = false;
  for (const CategoryDelta& c : categories) {
    if (c.category == FunctionCategory::kNonTax) {
      nontax_change = c.cycles_change_pct;
      saw_nontax = true;
    } else {
      EXPECT_GT(c.cycles_change_pct, 0.0)
          << FunctionCategoryName(c.category);
    }
  }
  ASSERT_TRUE(saw_nontax);
  // Fig. 12: non-tax functions in aggregate improve (or at worst stay
  // flat) when prefetchers are disabled.
  EXPECT_LT(nontax_change, 2.0);
}

TEST_F(AblationTest, TargetSelectionFindsTaxFunctions) {
  // Tax functions have small *control* cycle shares precisely because the
  // prefetchers serve them well, so the hotness filter sits low.
  const auto targets = SelectPrefetchTargets(*deltas_,
                                             /*min_regression_pct=*/5.0,
                                             /*min_cycle_share=*/0.002);
  ASSERT_FALSE(targets.empty());
  // The top targets must be data-center tax functions.
  int tax_in_top = 0;
  const std::size_t top_n = std::min<std::size_t>(5, targets.size());
  for (std::size_t i = 0; i < top_n; ++i) {
    if (IsTaxCategory(targets[i].category)) ++tax_in_top;
  }
  EXPECT_GE(tax_in_top, static_cast<int>(top_n) - 1);
}

TEST_F(AblationTest, DisablingPrefetchersReducesTrafficPerInstruction) {
  // Re-run two single sockets to compare traffic (the aggregate profiles
  // do not carry bandwidth).
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  auto run = [&](bool on) {
    Socket socket(AblationSocket(), catalog.size(), Rng(55));
    socket.SetAllPrefetchersEnabled(on);
    for (int core = 0; core < 4; ++core) {
      socket.SetWorkload(core, catalog.MakeFleetMix(Rng(55).Fork(
                                   static_cast<std::uint64_t>(core))));
    }
    for (int epoch = 0; epoch < 60; ++epoch) socket.Step(100 * kNsPerUs);
    return static_cast<double>(socket.counters().DramTotalBytes()) /
           static_cast<double>(socket.counters().instructions);
  };
  const double traffic_on = run(true);
  const double traffic_off = run(false);
  EXPECT_LT(traffic_off, traffic_on);
  const double reduction = 1.0 - traffic_off / traffic_on;
  // The detailed engines sit at the aggressive end of the paper's band
  // (Fig. 5 shows +30-40 % traffic from prefetching; the next-line
  // streamer wastes heavily on the random-access functions).
  EXPECT_GT(reduction, 0.05);
  EXPECT_LT(reduction, 0.55);
}

TEST_F(AblationTest, FleetMpkiRisesWhenDisabled) {
  // Paper §1: disabling prefetchers increases cache miss rates ~20 %.
  double control_misses = 0.0;
  double control_instr = 0.0;
  double experiment_misses = 0.0;
  double experiment_instr = 0.0;
  for (std::size_t i = 0; i < catalog_->size(); ++i) {
    const auto id = static_cast<FunctionId>(i);
    control_misses += static_cast<double>(control_->entry(id).llc_misses);
    control_instr +=
        static_cast<double>(control_->entry(id).instructions);
    experiment_misses +=
        static_cast<double>(experiment_->entry(id).llc_misses);
    experiment_instr +=
        static_cast<double>(experiment_->entry(id).instructions);
  }
  const double mpki_control = control_misses / control_instr;
  const double mpki_experiment = experiment_misses / experiment_instr;
  EXPECT_GT(mpki_experiment, mpki_control * 1.08);
}

}  // namespace
}  // namespace limoncello
