// Fixture-driven self-tests for limolint: every rule has at least one bad
// fixture that must be caught and one good fixture that must stay clean,
// plus the limolint:allow escape hatch and rule scoping. Fixtures live in
// limolint_fixtures/ (skipped by LintTree) and are linted here under
// synthetic repo paths so scoping rules apply as they would in the tree.
#include "limolint_lib.h"

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "limolint_callgraph.h"

#include <gtest/gtest.h>

namespace limoncello::limolint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LIMOLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<Finding> Lint(const std::string& fixture,
                          const std::string& as_path) {
  return LintFile(as_path, ReadFixture(fixture));
}

int CountRule(const std::vector<Finding>& findings, const std::string& rule) {
  int n = 0;
  for (const Finding& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// The call-graph rules never run through LintFile; program-rule fixtures
// are analyzed whole-program style, each fixture mapped to a synthetic
// repo path like real sources.
std::vector<Finding> Analyze(
    const std::vector<std::pair<std::string, std::string>>& fixtures) {
  std::vector<SourceFile> sources;
  for (const auto& fx : fixtures) {
    sources.push_back(SourceFile{fx.second, ReadFixture(fx.first)});
  }
  return AnalyzeProgram(sources);
}

bool AnyMessageContains(const std::vector<Finding>& findings,
                        const std::string& needle) {
  for (const Finding& f : findings) {
    if (f.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(LimolintRawThread, RawMutexOutsideUtilIsFlagged) {
  const auto findings = Lint("bad_raw_mutex.cc", "src/fleet/bad_raw_mutex.cc");
  EXPECT_GE(CountRule(findings, "raw-thread"), 3)
      << FormatFindings(findings);  // <mutex> include, lock_guard, member
  EXPECT_EQ(CountRule(findings, "raw-thread"),
            static_cast<int>(findings.size()))
      << "only raw-thread should fire: " << FormatFindings(findings);
}

TEST(LimolintRawThread, RawThreadInTestsIsFlagged) {
  const auto findings =
      Lint("bad_raw_thread.cc", "tests/fleet/bad_raw_thread.cc");
  EXPECT_GE(CountRule(findings, "raw-thread"), 2) << FormatFindings(findings);
}

TEST(LimolintRawThread, UtilDirectoriesAreExempt) {
  EXPECT_TRUE(Lint("bad_raw_mutex.cc", "src/util/bad_raw_mutex.cc").empty());
  EXPECT_TRUE(
      Lint("bad_raw_thread.cc", "tests/util/bad_raw_thread.cc").empty());
}

TEST(LimolintRawThread, AnnotatedWrapperIsClean) {
  const auto findings = Lint("good_wrapper.cc", "src/fleet/good_wrapper.cc");
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintAssert, NakedAssertIsFlaggedOnce) {
  const auto findings = Lint("bad_assert.cc", "src/tax/bad_assert.cc");
  ASSERT_EQ(findings.size(), 1u) << FormatFindings(findings);
  EXPECT_EQ(findings[0].rule, "no-assert");
  EXPECT_EQ(findings[0].line, 8);  // static_assert two lines later is fine
}

TEST(LimolintAssert, ChecksCommentsAndStringsAreClean) {
  const auto findings = Lint("good_check.cc", "src/tax/good_check.cc");
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintDeterminism, WallClockInSimIsFlagged) {
  const auto findings =
      Lint("bad_wallclock.cc", "src/sim/bad_wallclock.cc");
  EXPECT_EQ(CountRule(findings, "determinism"), 2)  // system_clock, time()
      << FormatFindings(findings);
}

TEST(LimolintDeterminism, AmbientRngInCoreIsFlagged) {
  const auto findings = Lint("bad_rand.cc", "src/core/bad_rand.cc");
  EXPECT_EQ(CountRule(findings, "determinism"), 3)
      << FormatFindings(findings);  // random_device, mt19937, std::rand
}

TEST(LimolintDeterminism, ScopeIsLimitedToSimFleetCore) {
  // The same wall-clock code is legitimate outside the deterministic dirs.
  EXPECT_TRUE(Lint("bad_wallclock.cc", "bench/bad_wallclock.cc").empty());
  EXPECT_TRUE(
      Lint("good_bench_clock.cc", "bench/good_bench_clock.cc").empty());
}

TEST(LimolintDeterminism, FaultsAndRecoveryAreInScope) {
  // Fault schedules and the recovery journal replay on fixed seeds; wall
  // clocks there break reproducibility just like in the simulator.
  EXPECT_EQ(CountRule(Lint("bad_wallclock.cc", "src/faults/bad_wallclock.cc"),
                      "determinism"),
            2);
  EXPECT_EQ(
      CountRule(Lint("bad_wallclock.cc", "src/recovery/bad_wallclock.cc"),
                "determinism"),
      2);
}

TEST(LimolintDeterminism, WordBoundedMatcherIgnoresSubstrings) {
  // sim_time(...) and randomize(...) contain banned words as substrings.
  const auto findings = Lint("good_rng.cc", "src/sim/good_rng.cc");
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintIostream, IostreamInSrcHeaderIsFlagged) {
  const auto findings =
      Lint("bad_iostream.h", "src/workloads/bad_iostream.h");
  ASSERT_EQ(findings.size(), 1u) << FormatFindings(findings);
  EXPECT_EQ(findings[0].rule, "iostream-header");
}

TEST(LimolintGuard, WrongGuardNameIsFlagged) {
  const auto findings = Lint("bad_guard.h", "src/sim/bad_guard.h");
  ASSERT_EQ(CountRule(findings, "include-guard"), 1)
      << FormatFindings(findings);
  EXPECT_NE(findings[0].message.find("LIMONCELLO_SIM_BAD_GUARD_H_"),
            std::string::npos)
      << findings[0].message;
}

TEST(LimolintGuard, GuardIsCheckedAgainstTheLintPath) {
  // The same header under a different name has a now-wrong guard.
  const auto findings = Lint("bad_iostream.h", "src/workloads/renamed.h");
  EXPECT_EQ(CountRule(findings, "include-guard"), 1)
      << FormatFindings(findings);
}

TEST(LimolintGuard, PragmaOnceIsFlagged) {
  const auto findings =
      Lint("bad_pragma_once.h", "src/sim/bad_pragma_once.h");
  EXPECT_EQ(CountRule(findings, "include-guard"), 1)
      << FormatFindings(findings);
}

TEST(LimolintGuard, CanonicalGuardIsClean) {
  const auto findings = Lint("good_header.h", "src/sim/good_header.h");
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintMsrWrite, DroppedActuationResultsAreFlagged) {
  const auto findings =
      Lint("bad_unchecked_write.cc", "src/fleet/bad_unchecked_write.cc");
  // Write, DisableAll, EnableAll (->), chained receiver, multi-line call.
  EXPECT_EQ(CountRule(findings, "unchecked-msr-write"), 5)
      << FormatFindings(findings);
  EXPECT_EQ(CountRule(findings, "unchecked-msr-write"),
            static_cast<int>(findings.size()))
      << "only unchecked-msr-write should fire: "
      << FormatFindings(findings);
}

TEST(LimolintMsrWrite, MultiLineCallIsFlaggedAtItsFirstLine) {
  const auto findings =
      Lint("bad_unchecked_write.cc", "src/fleet/bad_unchecked_write.cc");
  bool found_opening_line = false;
  for (const Finding& f : findings) {
    found_opening_line |= f.line == 19;  // control.SetEngine(0,
    EXPECT_NE(f.line, 20) << "continuation line is not a statement start";
    EXPECT_NE(f.line, 21) << "allow(unchecked-msr-write) must suppress";
  }
  EXPECT_TRUE(found_opening_line) << FormatFindings(findings);
}

TEST(LimolintMsrWrite, CheckedAndConsumedResultsAreClean) {
  const auto findings =
      Lint("good_checked_write.cc", "tests/msr/good_checked_write.cc");
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintRawFileIo, DroppedFileIoResultsAreFlagged) {
  const auto findings =
      Lint("bad_raw_file_io.cc", "src/fleet/bad_raw_file_io.cc");
  // fopen, write, std::fwrite, pwrite, multi-line open.
  EXPECT_EQ(CountRule(findings, "raw-file-io"), 5)
      << FormatFindings(findings);
  EXPECT_EQ(CountRule(findings, "raw-file-io"),
            static_cast<int>(findings.size()))
      << "only raw-file-io should fire: " << FormatFindings(findings);
}

TEST(LimolintRawFileIo, MultiLineCallIsFlaggedAtItsFirstLineAndAllowWorks) {
  const auto findings =
      Lint("bad_raw_file_io.cc", "src/fleet/bad_raw_file_io.cc");
  bool found_opening_line = false;
  for (const Finding& f : findings) {
    found_opening_line |= f.line == 11;  // open(path,
    EXPECT_NE(f.line, 12) << "continuation line is not a statement start";
    EXPECT_NE(f.line, 13) << "allow(raw-file-io) must suppress";
  }
  EXPECT_TRUE(found_opening_line) << FormatFindings(findings);
}

TEST(LimolintRawFileIo, CheckedAndMemberCallsAreClean) {
  const auto findings =
      Lint("good_checked_file_io.cc", "tests/msr/good_checked_file_io.cc");
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintRawFileIo, RecoveryDirectoryIsExempt) {
  // The journal implementation owns the raw-fd write path; the same code
  // linted under src/recovery/ must pass untouched.
  EXPECT_TRUE(
      Lint("bad_raw_file_io.cc", "src/recovery/bad_raw_file_io.cc").empty());
}

TEST(LimolintHotStruct, VectorMembersInMarkedStructAreFlagged) {
  const auto findings =
      Lint("bad_hot_struct.cc", "src/fleet/bad_hot_struct.cc");
  // Two direct members plus one in a nested struct (depth tracking).
  EXPECT_EQ(CountRule(findings, "hot-struct-vector"), 3)
      << FormatFindings(findings);
  EXPECT_EQ(CountRule(findings, "hot-struct-vector"),
            static_cast<int>(findings.size()))
      << "only hot-struct-vector should fire: " << FormatFindings(findings);
  for (const Finding& f : findings) {
    EXPECT_NE(f.line, 12) << "allow(hot-struct-vector) must suppress";
    EXPECT_NE(f.line, 16) << "accessor signatures are not members";
    EXPECT_NE(f.line, 21) << "unmarked structs are out of scope";
  }
}

TEST(LimolintHotStruct, ScalarsAccessorsAndUnmarkedStructsAreClean) {
  const auto findings =
      Lint("good_hot_struct.cc", "src/fleet/good_hot_struct.cc");
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintHotStruct, RegionClosesWithTheStructBody) {
  // After the marked struct's closing brace the rule must disarm: the
  // cold struct at the bottom of the bad fixture carries a vector too.
  const auto findings =
      Lint("bad_hot_struct.cc", "src/fleet/bad_hot_struct.cc");
  for (const Finding& f : findings) {
    EXPECT_LT(f.line, 18) << FormatFindings(findings);
  }
}

TEST(LimolintAllow, MatchingAllowSuppressesAndWrongRuleDoesNot) {
  const auto findings = Lint("allow_escape.cc", "src/fleet/allow_escape.cc");
  ASSERT_EQ(findings.size(), 1u) << FormatFindings(findings);
  EXPECT_EQ(findings[0].rule, "raw-thread");
  EXPECT_EQ(findings[0].line, 12);  // the allow(no-assert) line still fires
}

TEST(LimolintHotPathAlloc, ReachableAllocationsAreFlaggedWithAPath) {
  const auto findings =
      Analyze({{"bad_hot_alloc.cc", "src/fleet/bad_hot_alloc.cc"}});
  // push_back in the callee, std::string construction and new in the root.
  EXPECT_EQ(CountRule(findings, "hot-path-alloc"), 3)
      << FormatFindings(findings);
  EXPECT_EQ(CountRule(findings, "hot-path-alloc"),
            static_cast<int>(findings.size()))
      << "only hot-path-alloc should fire: " << FormatFindings(findings);
  EXPECT_TRUE(AnyMessageContains(findings, "HotLoop -> Helper"))
      << "finding in a callee must carry the call path: "
      << FormatFindings(findings);
}

TEST(LimolintHotPathAlloc, ColdCalleesAndAllowedLinesAreClean) {
  const auto findings =
      Analyze({{"good_hot_alloc.cc", "src/fleet/good_hot_alloc.cc"}});
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintHotPathBlocking, ReachableBlockingCallsAreFlagged) {
  const auto findings =
      Analyze({{"bad_hot_blocking.cc", "src/fleet/bad_hot_blocking.cc"}});
  // write + fsync through the callee, usleep in the root itself.
  EXPECT_EQ(CountRule(findings, "hot-path-blocking"), 3)
      << FormatFindings(findings);
  EXPECT_TRUE(AnyMessageContains(findings, "HotTick -> Persist"))
      << FormatFindings(findings);
}

TEST(LimolintHotPathBlocking, AllowedAppendAndUnreachableFlushAreClean) {
  const auto findings =
      Analyze({{"good_hot_blocking.cc", "src/fleet/good_hot_blocking.cc"}});
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintLockCycle, OppositeOrdersAndHeldRendezvousAreFlagged) {
  const auto findings =
      Analyze({{"bad_lock_cycle.cc", "src/fleet/bad_lock_cycle.cc"}});
  EXPECT_EQ(CountRule(findings, "lock-cycle"), 2) << FormatFindings(findings);
  EXPECT_TRUE(AnyMessageContains(findings, "lock order cycle"))
      << FormatFindings(findings);
  EXPECT_TRUE(AnyMessageContains(findings, "held across"))
      << FormatFindings(findings);
  // Lock names are qualified by their owning type.
  EXPECT_TRUE(AnyMessageContains(findings, "Engine::a_"))
      << FormatFindings(findings);
}

TEST(LimolintLockCycle, ConsistentOrderAndScopedGuardAreClean) {
  const auto findings =
      Analyze({{"good_lock_cycle.cc", "src/fleet/good_lock_cycle.cc"}});
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintProgramAllow, AllowIsPerRuleOnADualViolationLine) {
  // One line allocates AND blocks; only the alloc carries an allow, so
  // exactly the blocking finding must survive.
  const auto findings =
      Analyze({{"allow_two_rules.cc", "src/fleet/allow_two_rules.cc"}});
  ASSERT_EQ(findings.size(), 1u) << FormatFindings(findings);
  EXPECT_EQ(findings[0].rule, "hot-path-blocking");
  EXPECT_EQ(findings[0].line, 11);
}

TEST(LimolintCrossTu, ReachabilitySpansTranslationUnits) {
  // Alone, each half is clean: the caller has no constructs, the callee
  // has no hot root.
  EXPECT_TRUE(
      Analyze({{"xtu_caller.cc", "src/fleet/xtu_caller.cc"}}).empty());
  EXPECT_TRUE(
      Analyze({{"xtu_callee.cc", "src/core/xtu_callee.cc"}}).empty());
  // Together the hot root in one file reaches the allocation in the other.
  const auto findings =
      Analyze({{"xtu_caller.cc", "src/fleet/xtu_caller.cc"},
               {"xtu_callee.cc", "src/core/xtu_callee.cc"}});
  ASSERT_EQ(findings.size(), 1u) << FormatFindings(findings);
  EXPECT_EQ(findings[0].rule, "hot-path-alloc");
  EXPECT_EQ(findings[0].file, "src/core/xtu_callee.cc");
  EXPECT_TRUE(
      AnyMessageContains(findings, "XtuHot -> XtuHelper -> MakeScratch"))
      << FormatFindings(findings);
}

TEST(LimolintCallGraph, MarkersAttachToTheTaggedFunctions) {
  ProgramModel model = ProgramModel::Build(
      {SourceFile{"src/fleet/good_hot_alloc.cc",
                  ReadFixture("good_hot_alloc.cc")}});
  bool saw_hot = false, saw_cold = false, saw_plain = false;
  for (const FunctionSummary& fn : model.Functions()) {
    if (fn.qualified == "HotLoop") {
      saw_hot = true;
      EXPECT_TRUE(fn.hot_root);
      EXPECT_FALSE(fn.cold_path);
      EXPECT_GE(fn.num_calls, 2u);  // Setup and Scalar
    } else if (fn.qualified == "Setup") {
      saw_cold = true;
      EXPECT_TRUE(fn.cold_path);
      EXPECT_FALSE(fn.hot_root);
    } else if (fn.qualified == "Scalar") {
      saw_plain = true;
      EXPECT_FALSE(fn.hot_root);
      EXPECT_FALSE(fn.cold_path);
    }
  }
  EXPECT_TRUE(saw_hot && saw_cold && saw_plain);
}

TEST(LimolintJson, FindingsRoundTripThroughABaselineFile) {
  const auto findings =
      Analyze({{"bad_hot_alloc.cc", "src/fleet/bad_hot_alloc.cc"},
               {"bad_lock_cycle.cc", "src/fleet/bad_lock_cycle.cc"}});
  ASSERT_FALSE(findings.empty());
  const std::string path =
      testing::TempDir() + "/limolint_roundtrip.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << FindingsJson(findings);
  }
  std::vector<Finding> baseline;
  ASSERT_TRUE(LoadBaselineFile(path, &baseline));
  ASSERT_EQ(baseline.size(), findings.size());
  std::size_t matched = 0;
  const auto fresh = SubtractBaseline(findings, baseline, &matched);
  EXPECT_TRUE(fresh.empty())
      << "a findings file must baseline itself: " << FormatFindings(fresh);
  EXPECT_EQ(matched, findings.size());
}

TEST(LimolintJson, BaselineEntriesAbsorbAtMostOneFindingEach) {
  Finding f;
  f.file = "src/fleet/x.cc";
  f.line = 7;
  f.rule = "hot-path-alloc";
  f.message = "push_back() on a hot path";
  // Two identical findings against a one-entry baseline: one survives.
  const auto fresh = SubtractBaseline({f, f}, {f});
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].line, 7);
  // A baseline entry with a different line matches nothing.
  Finding moved = f;
  moved.line = 8;
  EXPECT_EQ(SubtractBaseline({f}, {moved}).size(), 1u);
}

TEST(LimolintJson, MalformedBaselineIsRejected) {
  const std::string path = testing::TempDir() + "/limolint_bad.json";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"version\":1,\"findings\":[{\"file\":\"a\",";  // truncated
  }
  std::vector<Finding> baseline;
  EXPECT_FALSE(LoadBaselineFile(path, &baseline));
  EXPECT_TRUE(baseline.empty());
  EXPECT_FALSE(LoadBaselineFile(testing::TempDir() + "/does_not_exist.json",
                                &baseline));
}

TEST(LimolintMeta, EveryRuleHasAFailingFixture) {
  std::set<std::string> caught;
  for (const Finding& f :
       Lint("bad_raw_mutex.cc", "src/fleet/bad_raw_mutex.cc")) {
    caught.insert(f.rule);
  }
  for (const Finding& f : Lint("bad_assert.cc", "src/tax/bad_assert.cc")) {
    caught.insert(f.rule);
  }
  for (const Finding& f :
       Lint("bad_wallclock.cc", "src/sim/bad_wallclock.cc")) {
    caught.insert(f.rule);
  }
  for (const Finding& f :
       Lint("bad_iostream.h", "src/workloads/bad_iostream.h")) {
    caught.insert(f.rule);
  }
  for (const Finding& f : Lint("bad_guard.h", "src/sim/bad_guard.h")) {
    caught.insert(f.rule);
  }
  for (const Finding& f :
       Lint("bad_unchecked_write.cc", "src/fleet/bad_unchecked_write.cc")) {
    caught.insert(f.rule);
  }
  for (const Finding& f :
       Lint("bad_raw_file_io.cc", "src/fleet/bad_raw_file_io.cc")) {
    caught.insert(f.rule);
  }
  for (const Finding& f :
       Lint("bad_hot_struct.cc", "src/fleet/bad_hot_struct.cc")) {
    caught.insert(f.rule);
  }
  // The call-graph rules only fire at program level.
  for (const Finding& f :
       Analyze({{"bad_hot_alloc.cc", "src/fleet/bad_hot_alloc.cc"},
                {"bad_hot_blocking.cc", "src/fleet/bad_hot_blocking.cc"},
                {"bad_lock_cycle.cc", "src/fleet/bad_lock_cycle.cc"}})) {
    caught.insert(f.rule);
  }
  for (const Rule& rule : Rules()) {
    EXPECT_TRUE(caught.count(rule.name) == 1)
        << "no failing fixture exercises rule " << rule.name;
  }
}

TEST(LimolintTree, RepoIsCleanAndFixturesAreSkipped) {
  const auto findings = LintTree(LIMOLINT_SOURCE_ROOT);
  EXPECT_TRUE(findings.empty()) << FormatFindings(findings);
}

TEST(LimolintSummary, TableCountsPerRule) {
  const auto findings = Lint("bad_rand.cc", "src/core/bad_rand.cc");
  const std::string table = SummaryTable(findings);
  for (const Rule& rule : Rules()) {
    EXPECT_NE(table.find(rule.name), std::string::npos) << table;
  }
  EXPECT_NE(table.find("3"), std::string::npos) << table;
}

}  // namespace
}  // namespace limoncello::limolint
