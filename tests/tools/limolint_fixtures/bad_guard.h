// Fixture: include guard does not follow LIMONCELLO_<PATH>_H_. Linted as
// if at src/sim/bad_guard.h (expected LIMONCELLO_SIM_BAD_GUARD_H_).
#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

namespace limoncello {}

#endif  // WRONG_GUARD_H
