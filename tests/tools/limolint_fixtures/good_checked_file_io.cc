// Checked / consumed file-I/O results: nothing here should fire.
#include <cstdio>
#include <fstream>

bool Save(int fd, const char* path, const void* buf) {
  FILE* f = fopen(path, "w");  // consumed: assigned
  if (f == nullptr) return false;
  if (std::fwrite(buf, 1, 8, f) != 8) return false;  // consumed: compared
  std::ofstream out(path, std::ios::binary);
  out.write(static_cast<const char*>(buf), 8);  // member call, not POSIX
  const long wrote = write(fd, buf, 8);  // consumed: assigned
  return wrote == 8;
}
