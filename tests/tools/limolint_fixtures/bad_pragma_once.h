// Fixture: #pragma once instead of the canonical include guard. Linted as
// if at src/sim/bad_pragma_once.h.
#pragma once

namespace limoncello {}
