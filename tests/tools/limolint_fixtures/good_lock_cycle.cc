// Clean: every method acquires in the one global order, and the guard is
// scoped shut before the pool rendezvous.
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace fx {

struct Engine {
  limoncello::Mutex a_;
  limoncello::Mutex b_;
  limoncello::ThreadPool* pool_ = nullptr;

  void First() {
    limoncello::MutexLock hold_a(&a_);
    limoncello::MutexLock hold_b(&b_);
  }

  void Second() {
    limoncello::MutexLock hold_a(&a_);
    limoncello::MutexLock hold_b(&b_);
  }

  void FanOut(long n) {
    {
      limoncello::MutexLock hold_a(&a_);
    }
    pool_->ParallelFor(0, n, [](long) {}, 1);
  }
};

}  // namespace fx
