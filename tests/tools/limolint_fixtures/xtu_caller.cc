// Cross-TU half 1: the hot root lives here; the allocation it reaches is
// defined in xtu_callee.cc. Only meaningful when both files are analyzed
// as one program.
namespace fx {

int XtuHelper(int x);

// limolint:hot-path
int XtuHot(int x) { return XtuHelper(x) + 1; }

}  // namespace fx
