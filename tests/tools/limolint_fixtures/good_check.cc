// Fixture: LIMONCELLO_CHECK everywhere; assert( appears only in a comment
// and a string, neither of which may fire. Linted as if at
// src/tax/good_check.cc.
#include "util/check.h"

namespace limoncello {

int Halve(int v) {
  LIMONCELLO_CHECK_EQ(v % 2, 0);
  // An old assert(v > 0) used to live here.
  const char* msg = "assert(x) is banned";
  (void)msg;
  return v / 2;
}

}  // namespace limoncello
