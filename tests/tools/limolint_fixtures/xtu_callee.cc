// Cross-TU half 2: the allocation xtu_caller.cc's hot root reaches.
#include <vector>

namespace fx {

std::vector<int> MakeScratch(int n) {
  std::vector<int> v(static_cast<unsigned long>(n), 0);  // flagged
  return v;
}

int XtuHelper(int x) {
  return static_cast<int>(MakeScratch(x).size());
}

}  // namespace fx
