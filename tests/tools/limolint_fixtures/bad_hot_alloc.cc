// Deliberate violations: allocating constructs reachable from a function
// tagged limolint:hot-path — directly and through a callee.
#include <string>
#include <vector>

namespace fx {

int Helper(std::vector<int>* out) {
  out->push_back(1);  // flagged: container growth in a hot callee
  return static_cast<int>(out->size());
}

// limolint:hot-path
int HotLoop(std::vector<int>* out) {
  std::string name = "x";  // flagged: std::string construction
  int* p = new int(7);     // flagged: new expression
  int r = Helper(out);     // pulls Helper into the hot set
  delete p;
  return r + static_cast<int>(name.size());
}

}  // namespace fx
