// Clean: the hot root stays scalar; the designed allocations are either
// behind a cold-path callee or allowed at the construct line.
#include <vector>

namespace fx {

// limolint:cold-path — setup-time only; the tick loop never lands here.
void Setup(std::vector<int>* out) {
  out->resize(64);
}

int Scalar(int x) { return x * 2 + 1; }

// limolint:hot-path
int HotLoop(std::vector<int>* out) {
  Setup(out);  // edge not traversed: the callee is cold
  // Reserved scratch: capacity survives across ticks.
  out->push_back(3);  // limolint:allow(hot-path-alloc)
  return Scalar(static_cast<int>(out->size()));
}

}  // namespace fx
