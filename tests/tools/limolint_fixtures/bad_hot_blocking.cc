// Deliberate violations: blocking calls reachable from a hot root — file
// I/O and fsync through a callee, a sleep in the root itself.
#include <unistd.h>

namespace fx {

bool Persist(int fd, const char* buf, long n) {
  if (::write(fd, buf, static_cast<unsigned long>(n)) != n) {  // flagged
    return false;
  }
  return ::fsync(fd) == 0;  // flagged
}

// limolint:hot-path
bool HotTick(int fd, const char* buf, long n) {
  usleep(10);  // flagged: sleeping on the hot path
  return Persist(fd, buf, n);
}

}  // namespace fx
