// Fixture: ambient RNG inside deterministic dirs must be flagged — all
// randomness flows from util/rng.h. Linted as if at src/core/bad_rand.cc.
#include <cstdlib>
#include <random>

namespace limoncello {

int Jitter() {
  std::random_device rd;
  std::mt19937 gen(rd());
  return static_cast<int>(gen()) + std::rand();
}

}  // namespace limoncello
