// Fixture: assert() is compiled out under NDEBUG; LIMONCELLO_CHECK is the
// repo idiom. Linted as if at src/tax/bad_assert.cc.
#include <cassert>

namespace limoncello {

int Halve(int v) {
  assert(v % 2 == 0);
  // static_assert is fine and must NOT be reported:
  static_assert(sizeof(int) >= 4, "assumed below");
  return v / 2;
}

}  // namespace limoncello
