// Fixture: wall-clock timing is legitimate in bench/ — the determinism
// rule scopes to src/{sim,fleet,core}/ only. Linted as if at
// bench/good_bench_clock.cc.
#include <chrono>

namespace limoncello {

double WallSeconds() {
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace limoncello
