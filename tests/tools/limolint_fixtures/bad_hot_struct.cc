// Deliberately bad: per-tick state regrown as vector members after the
// SoA refactor (see src/fleet/fleet_state.h).
#include <vector>

namespace limoncello {

// limolint:hot-struct — per-tick state must stay in the SoA arrays.
struct BadHotState {
  int num_machines = 0;
  std::vector<double> utilization;
  std::vector<int> controller_state;
  std::vector<double> cold_cache;  // limolint:allow(hot-struct-vector)
  struct Nested {
    std::vector<double> deep;
  };
  const std::vector<double>& util() const { return utilization; }
};

// An unmarked struct may hold whatever it likes.
struct ColdConfig {
  std::vector<double> thresholds;
};

}  // namespace limoncello
