// Clean hot-struct usage: scalar arrays only, accessor signatures that
// mention std::vector, and vectors confined to unmarked cold types.
#include <cstddef>
#include <vector>

namespace limoncello {

struct AlignedDoubles {
  double* data = nullptr;
  std::size_t size = 0;
};

// limolint:hot-struct — per-tick scalars only.
struct GoodHotState {
  AlignedDoubles utilization;
  AlignedDoubles served_qps;
  std::size_t num_machines = 0;
  // Signatures may mention the type; only members are new state.
  void CopyTo(std::vector<double>* out) const;
  std::vector<double> Snapshot() const;
};

struct ColdPlacementScratch {
  std::vector<double> shares;
};

}  // namespace limoncello
