// Fixture: canonical guard, no iostream — clean. Linted as if at
// src/sim/good_header.h.
#ifndef LIMONCELLO_SIM_GOOD_HEADER_H_
#define LIMONCELLO_SIM_GOOD_HEADER_H_

namespace limoncello {

inline int Identity(int v) { return v; }

}  // namespace limoncello

#endif  // LIMONCELLO_SIM_GOOD_HEADER_H_
