// Fixture: <iostream> in a src/ header drags static init into every TU.
// Linted as if at src/workloads/bad_iostream.h (guard is correct, so only
// iostream-header fires).
#ifndef LIMONCELLO_WORKLOADS_BAD_IOSTREAM_H_
#define LIMONCELLO_WORKLOADS_BAD_IOSTREAM_H_

#include <iostream>

namespace limoncello {

inline void Shout() { std::cout << "hi\n"; }

}  // namespace limoncello

#endif  // LIMONCELLO_WORKLOADS_BAD_IOSTREAM_H_
