// Clean: the designed append syscall is allowed at its line, and the
// flush helper is both cold and unreachable from the root.
#include <unistd.h>

namespace fx {

// limolint:cold-path — shutdown-only.
void FlushAll(int fd) {
  (void)::fsync(fd);
}

// limolint:hot-path
bool HotTick(int fd, const char* buf, long n) {
  const long wrote = ::write(  // limolint:allow(hot-path-blocking)
      fd, buf, static_cast<unsigned long>(n));
  return wrote == n;
}

}  // namespace fx
