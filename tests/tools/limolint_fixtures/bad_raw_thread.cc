// Fixture: raw std::thread outside util/ must be flagged (use ThreadPool
// or ParallelInvoke). Linted as if at tests/fleet/bad_raw_thread.cc.
#include <thread>

namespace limoncello {

void SpawnDirectly() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace limoncello
