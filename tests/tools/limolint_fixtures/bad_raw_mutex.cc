// Fixture: raw std::mutex / <mutex> include outside util/ must be flagged.
// Linted as if at src/fleet/bad_raw_mutex.cc.
#include <mutex>

namespace limoncello {

class Racy {
 public:
  void Bump() {
    std::lock_guard<std::mutex> lock(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  int count_ = 0;
};

}  // namespace limoncello
