// Every actuation result here is checked or consumed: none of these
// statements may fire unchecked-msr-write.
struct Control {
  bool Write(int cpu, unsigned reg, unsigned value);
  int DisableAll();
  int EnableAll();
  int SetEngine(int engine, bool enabled);
};

bool MustSucceed(bool ok);

bool Exercise(Control& control, Control* remote) {
  if (!control.Write(0, 0x1a4, 0xf)) return false;
  const int disabled = control.DisableAll();
  int enabled = 0;
  enabled = control.EnableAll();
  (void)control.SetEngine(0, false);
  const bool ok =
      control.Write(1, 0x1a4, 0x0);
  MustSucceed(remote->Write(2, 0x1a4, 0x0));
  if (control.SetEngine(1, true) != 4) return false;
  return ok && disabled == enabled;
}
