// Deliberate violations of unchecked-msr-write: bare call statements
// that drop MSR write / actuation results on the floor.
struct Control {
  bool Write(int cpu, unsigned reg, unsigned value);
  int DisableAll();
  int EnableAll();
  int SetEngine(int engine, bool enabled);
};

struct Machine {
  Control& control();
};

void Exercise(Control& control, Control* remote, Machine& machine) {
  control.Write(0, 0x1a4, 0xf);
  control.DisableAll();
  remote->EnableAll();
  machine.control().Write(1, 0x1a4, 0x0);
  control.SetEngine(0,
                    false);
  control.SetEngine(1, true);  // limolint:allow(unchecked-msr-write)
}
