// Deliberate violations: two methods acquire the same pair of locks in
// opposite orders (a cycle), and a third holds a lock across a ThreadPool
// rendezvous.
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace fx {

struct Engine {
  limoncello::Mutex a_;
  limoncello::Mutex b_;
  limoncello::ThreadPool* pool_ = nullptr;

  void Forward() {
    limoncello::MutexLock hold_a(&a_);
    limoncello::MutexLock hold_b(&b_);  // order a_ -> b_
  }

  void Backward() {
    limoncello::MutexLock hold_b(&b_);
    limoncello::MutexLock hold_a(&a_);  // order b_ -> a_: cycle
  }

  void FanOut(long n) {
    limoncello::MutexLock hold_a(&a_);
    pool_->ParallelFor(0, n, [](long) {}, 1);  // flagged: held across
  }
};

}  // namespace fx
