// Fixture: the seeded repo Rng is the sanctioned randomness source — no
// findings expected. Linted as if at src/sim/good_rng.cc.
#include "util/rng.h"

namespace limoncello {

// Identifiers *containing* banned words (sim_time, randomize) must not
// fire; the matcher is word-bounded.
double sim_time(Rng& rng) { return rng.NextDouble(); }

int randomize(Rng& rng) { return static_cast<int>(rng.NextU64() & 0xff); }

}  // namespace limoncello
