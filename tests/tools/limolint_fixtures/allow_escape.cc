// Fixture: the per-line escape hatch. Line A is suppressed by a matching
// allow; line B names the wrong rule, so it still fires. Linted as if at
// src/fleet/allow_escape.cc.
#include "util/mutex.h"

namespace limoncello {

struct Interop {
  // Deliberate, justified raw usage — suppressed:
  std::mutex raw_for_ffi;  // limolint:allow(raw-thread)
  // Wrong rule name in the allow — NOT suppressed:
  std::mutex still_flagged;  // limolint:allow(no-assert)
};

}  // namespace limoncello
