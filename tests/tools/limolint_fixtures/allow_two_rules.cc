// One line violates hot-path-alloc (std::string + to_string) AND
// hot-path-blocking (fsync) at once; only the alloc is allowed, so the
// blocking finding must survive — the escape hatch is per-rule.
#include <string>
#include <unistd.h>

namespace fx {

// limolint:hot-path
std::string HotStatus(int fd) {
  std::string s = std::to_string(::fsync(fd));  // limolint:allow(hot-path-alloc)
  return s;
}

}  // namespace fx
