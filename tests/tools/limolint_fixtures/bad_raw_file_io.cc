// Deliberate raw-file-io violations: bare stdio/POSIX file calls whose
// results are dropped on the floor. Linted as a src/fleet/ path by
// limolint_test; each numbered line below must be flagged.
#include <cstdio>

void Persist(int fd, const char* path, const void* buf, FILE* stream) {
  fopen(path, "w");                 // 1: dropped FILE*
  write(fd, buf, 8);                // 2: dropped byte count
  std::fwrite(buf, 1, 8, stream);   // 3: std::-qualified, still dropped
  pwrite(fd, buf, 8, 0);            // 4: dropped byte count
  open(path,                        // 5: multi-line call, flagged here
       0);
  fwrite(buf, 1, 8, stream);  // limolint:allow(raw-file-io)
  const long n = static_cast<long>(fwrite(buf, 1, 8, stream));
  (void)n;  // the assignment above consumes the result: clean
}
