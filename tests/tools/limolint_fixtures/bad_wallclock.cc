// Fixture: host clocks inside the simulator break (config, seed) ->
// results reproducibility. Linted as if at src/sim/bad_wallclock.cc.
#include <chrono>
#include <ctime>

namespace limoncello {

long StampNow() {
  const auto now = std::chrono::system_clock::now();
  (void)now;
  return static_cast<long>(time(nullptr));
}

}  // namespace limoncello
