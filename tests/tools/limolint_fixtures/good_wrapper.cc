// Fixture: the annotated wrapper is the sanctioned way to lock — no
// findings expected. Linted as if at src/fleet/good_wrapper.cc.
#include "util/mutex.h"

namespace limoncello {

class Counter {
 public:
  void Bump() {
    MutexLock lock(&mu_);
    ++count_;
  }

 private:
  Mutex mu_;
  int count_ LIMONCELLO_GUARDED_BY(mu_) = 0;
};

// Prose mentioning std::mutex in a comment must not fire, nor may the
// string literal below.
const char* Describe() { return "std::mutex is banned here"; }

}  // namespace limoncello
