#include "util/table.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

TEST(TableTest, AlignedOutputContainsHeaderAndRows) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22"});
  const std::string out = t.ToAligned();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TableTest, AlignedColumnsLineUp) {
  Table t({"col", "v"});
  t.AddRow({"longer_cell", "1"});
  t.AddRow({"x", "2"});
  const std::string out = t.ToAligned();
  // Both value cells must start at the same column.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[2].find('1'), lines[3].find('2'));
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.AddRow({"x,y", "he said \"hi\""});
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, CsvPlainCellsUnquoted) {
  Table t({"a"});
  t.AddRow({"plain"});
  EXPECT_EQ(t.ToCsv(), "a\nplain\n");
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
  EXPECT_EQ(Table::Num(static_cast<std::int64_t>(-12)), "-12");
}

TEST(TableDeathTest, RowSizeMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only_one"}), "CHECK");
}

}  // namespace
}  // namespace limoncello
