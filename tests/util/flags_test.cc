#include "util/flags.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

FlagParser MakeParser() {
  FlagParser flags;
  flags.Define("name", "a string")
      .Define("count", "an int")
      .Define("ratio", "a double")
      .Define("enable", "a bool");
  return flags;
}

TEST(FlagParserTest, EqualsForm) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--name=widget", "--count=42",
                        "--ratio=0.75"};
  ASSERT_TRUE(flags.Parse(4, argv));
  EXPECT_EQ(flags.GetString("name"), "widget");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_EQ(flags.GetDouble("ratio"), 0.75);
}

TEST(FlagParserTest, SpaceForm) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--name", "widget", "--count", "7"};
  ASSERT_TRUE(flags.Parse(5, argv));
  EXPECT_EQ(flags.GetString("name"), "widget");
  EXPECT_EQ(flags.GetInt("count"), 7);
}

TEST(FlagParserTest, BareBooleanFlag) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--enable", "--count=1"};
  ASSERT_TRUE(flags.Parse(3, argv));
  EXPECT_EQ(flags.GetBool("enable"), true);
}

TEST(FlagParserTest, ExplicitFalse) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--enable=false"};
  ASSERT_TRUE(flags.Parse(2, argv));
  EXPECT_EQ(flags.GetBool("enable"), false);
  const char* argv2[] = {"prog", "--enable=0"};
  ASSERT_TRUE(flags.Parse(2, argv2));
  EXPECT_EQ(flags.GetBool("enable"), false);
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.Parse(2, argv));
  EXPECT_NE(flags.error().find("bogus"), std::string::npos);
}

TEST(FlagParserTest, MissingFlagReturnsNullopt) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, argv));
  EXPECT_FALSE(flags.GetString("name").has_value());
  EXPECT_FALSE(flags.GetInt("count").has_value());
  EXPECT_FALSE(flags.GetBool("enable").has_value());
}

TEST(FlagParserTest, MalformedNumbersReturnNullopt) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--count=12abc", "--ratio=x"};
  ASSERT_TRUE(flags.Parse(3, argv));
  EXPECT_FALSE(flags.GetInt("count").has_value());
  EXPECT_FALSE(flags.GetDouble("ratio").has_value());
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "alpha", "--count=1", "beta"};
  ASSERT_TRUE(flags.Parse(4, argv));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "alpha");
  EXPECT_EQ(flags.positional()[1], "beta");
}

TEST(FlagParserTest, HelpListsAllFlags) {
  FlagParser flags = MakeParser();
  const std::string help = flags.Help("prog");
  for (const char* name : {"name", "count", "ratio", "enable"}) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

TEST(FlagParserTest, NegativeNumberAsValue) {
  FlagParser flags = MakeParser();
  const char* argv[] = {"prog", "--count=-5", "--ratio=-0.5"};
  ASSERT_TRUE(flags.Parse(3, argv));
  EXPECT_EQ(flags.GetInt("count"), -5);
  EXPECT_EQ(flags.GetDouble("ratio"), -0.5);
}

}  // namespace
}  // namespace limoncello
