#include "util/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace limoncello {
namespace {

struct CapturedLog {
  LogLevel level;
  std::string message;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogSink([this](LogLevel level, const std::string& message) {
      captured_.push_back({level, message});
    });
    SetLogLevel(LogLevel::kInfo);
  }
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kInfo);
  }

  std::vector<CapturedLog> captured_;
};

TEST_F(LoggingTest, FormatsMessages) {
  LIMONCELLO_LOG_INFO("value=%d name=%s", 7, "x");
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].message, "value=7 name=x");
  EXPECT_EQ(captured_[0].level, LogLevel::kInfo);
}

TEST_F(LoggingTest, LevelFiltering) {
  LIMONCELLO_LOG_DEBUG("hidden");
  LIMONCELLO_LOG_INFO("shown");
  EXPECT_EQ(captured_.size(), 1u);

  SetLogLevel(LogLevel::kError);
  LIMONCELLO_LOG_WARN("hidden too");
  LIMONCELLO_LOG_ERROR("error shown");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[1].message, "error shown");
}

TEST_F(LoggingTest, DebugLevelShowsEverything) {
  SetLogLevel(LogLevel::kDebug);
  LIMONCELLO_LOG_DEBUG("a");
  LIMONCELLO_LOG_INFO("b");
  LIMONCELLO_LOG_WARN("c");
  LIMONCELLO_LOG_ERROR("d");
  EXPECT_EQ(captured_.size(), 4u);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, GetLogLevelRoundTrips) {
  SetLogLevel(LogLevel::kWarn);
  EXPECT_EQ(GetLogLevel(), LogLevel::kWarn);
}

}  // namespace
}  // namespace limoncello
