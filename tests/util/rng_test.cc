#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace limoncello {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(RngTest, LognormalMedianMatchesMu) {
  Rng rng(19);
  std::vector<double> samples;
  constexpr int kN = 50001;
  samples.reserve(kN);
  for (int i = 0; i < kN; ++i) samples.push_back(rng.NextLognormal(3.0, 1.0));
  std::nth_element(samples.begin(), samples.begin() + kN / 2, samples.end());
  EXPECT_NEAR(samples[kN / 2], std::exp(3.0), std::exp(3.0) * 0.05);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextPareto(100.0, 1.2), 100.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(42);
  Rng fork1 = a.Fork(1);
  Rng fork1_again = Rng(42).Fork(1);
  Rng fork2 = a.Fork(2);
  EXPECT_EQ(fork1.NextU64(), fork1_again.NextU64());
  EXPECT_NE(fork1.NextU64(), fork2.NextU64());
}

TEST(RngTest, ForkDoesNotDisturbParentStream) {
  Rng a(99);
  Rng b(99);
  (void)a.Fork(123);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = SplitMix64(s);
  const std::uint64_t second = SplitMix64(s);
  EXPECT_NE(first, second);
  std::uint64_t s2 = 0;
  EXPECT_EQ(SplitMix64(s2), first);
}

}  // namespace
}  // namespace limoncello
