#include "util/thread_pool.h"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace limoncello {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    ThreadPool pool(threads);
    constexpr int kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(0, kN, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (int i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPoolTest, ParallelForRespectsGrainAndNonzeroBegin) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.ParallelFor(
      10, 50,
      [&](std::int64_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); },
      8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), i < 10 ? 0 : 1);
  }
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, [&](std::int64_t) { ++calls; });
  pool.ParallelFor(7, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleThreadRunsInlineOnCaller) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  pool.ParallelFor(0, 64, [&](std::int64_t) {
    if (std::this_thread::get_id() != caller) all_on_caller = false;
  });
  EXPECT_TRUE(all_on_caller);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  for (int job = 0; job < 100; ++job) {
    pool.ParallelFor(0, 10, [&](std::int64_t i) { sum.fetch_add(i); });
  }
  EXPECT_EQ(sum.load(), 100 * 45);
}

TEST(ThreadPoolTest, ParallelInvokeRunsAllThunks) {
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> thunks;
  for (int i = 0; i < 5; ++i) {
    thunks.push_back([&] { ran.fetch_add(1); });
  }
  ParallelInvoke(std::move(thunks));
  EXPECT_EQ(ran.load(), 5);
  ParallelInvoke({});  // empty is a no-op
}

TEST(ResolveThreadCountTest, ExplicitRequestWins) {
  SetDefaultThreadCount(3);
  setenv("LIMONCELLO_THREADS", "5", 1);
  EXPECT_EQ(ResolveThreadCount(2), 2);
  SetDefaultThreadCount(0);
  unsetenv("LIMONCELLO_THREADS");
}

TEST(ResolveThreadCountTest, ProcessDefaultBeatsEnvironment) {
  setenv("LIMONCELLO_THREADS", "5", 1);
  SetDefaultThreadCount(3);
  EXPECT_EQ(ResolveThreadCount(0), 3);
  SetDefaultThreadCount(0);
  EXPECT_EQ(ResolveThreadCount(0), 5);
  unsetenv("LIMONCELLO_THREADS");
}

TEST(ResolveThreadCountTest, BadEnvironmentFallsBackToHardware) {
  setenv("LIMONCELLO_THREADS", "not-a-number", 1);
  EXPECT_GE(ResolveThreadCount(0), 1);
  setenv("LIMONCELLO_THREADS", "-2", 1);
  EXPECT_GE(ResolveThreadCount(0), 1);
  unsetenv("LIMONCELLO_THREADS");
  EXPECT_GE(ResolveThreadCount(0), 1);
}

}  // namespace
}  // namespace limoncello
