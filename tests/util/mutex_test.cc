// Exercises the annotated Mutex / MutexLock / CondVar wrappers under real
// contention. Built with LIMONCELLO_TSAN=ON this is the ThreadSanitizer
// coverage for the wrapper itself; built with clang -Wthread-safety the
// LIMONCELLO_GUARDED_BY annotations here are compile-checked.
#include "util/mutex.h"

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace limoncello {
namespace {

class GuardedCounter {
 public:
  void Add(int delta) {
    MutexLock lock(&mu_);
    total_ += delta;
  }

  int Get() {
    MutexLock lock(&mu_);
    return total_;
  }

 private:
  Mutex mu_;
  int total_ LIMONCELLO_GUARDED_BY(mu_) = 0;
};

TEST(MutexTest, MutualExclusionUnderContention) {
  GuardedCounter counter;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::function<void()>> thunks;
  for (int t = 0; t < kThreads; ++t) {
    thunks.push_back([&counter] {
      for (int i = 0; i < kIncrements; ++i) counter.Add(1);
    });
  }
  ParallelInvoke(std::move(thunks));
  EXPECT_EQ(counter.Get(), kThreads * kIncrements);
}

TEST(MutexTest, ThreadPoolLanesShareAGuardedAccumulator) {
  // ParallelFor normally writes disjoint state; here we deliberately share
  // one guarded accumulator so pool + Mutex interact under TSAN.
  ThreadPool pool(4);
  GuardedCounter counter;
  constexpr int kN = 10000;
  pool.ParallelFor(0, kN, [&](std::int64_t) { counter.Add(1); });
  EXPECT_EQ(counter.Get(), kN);
}

// Two-party handoff: the consumer waits on the CondVar for each token the
// producer publishes, so Wait's release/reacquire cycle runs kTokens times.
TEST(CondVarTest, HandoffDeliversEveryTokenInOrder) {
  Mutex mu;
  CondVar cv;
  int published = 0;   // guarded by mu
  long consumed_sum = 0;
  constexpr int kTokens = 1000;

  std::vector<std::function<void()>> thunks;
  thunks.push_back([&] {  // consumer
    for (int expect = 1; expect <= kTokens; ++expect) {
      MutexLock lock(&mu);
      cv.Wait(&mu, [&] { return published >= expect; });
      consumed_sum += expect;
    }
  });
  thunks.push_back([&] {  // producer
    for (int i = 1; i <= kTokens; ++i) {
      {
        MutexLock lock(&mu);
        published = i;
      }
      cv.NotifyOne();
    }
  });
  ParallelInvoke(std::move(thunks));
  EXPECT_EQ(consumed_sum, static_cast<long>(kTokens) * (kTokens + 1) / 2);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;  // guarded by mu
  int awake = 0;    // guarded by mu
  constexpr int kWaiters = 6;

  std::vector<std::function<void()>> thunks;
  for (int t = 0; t < kWaiters; ++t) {
    thunks.push_back([&] {
      MutexLock lock(&mu);
      cv.Wait(&mu, [&] { return go; });
      ++awake;
    });
  }
  thunks.push_back([&] {
    {
      MutexLock lock(&mu);
      go = true;
    }
    cv.NotifyAll();
  });
  ParallelInvoke(std::move(thunks));
  MutexLock lock(&mu);
  EXPECT_EQ(awake, kWaiters);
}

}  // namespace
}  // namespace limoncello
