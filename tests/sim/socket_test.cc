#include "sim/machine/socket.h"

#include <gtest/gtest.h>

#include <memory>

#include "workloads/function_catalog.h"
#include "workloads/generators.h"

namespace limoncello {
namespace {

SocketConfig SmallSocket() {
  SocketConfig config;
  config.num_cores = 2;
  config.l1 = {32 * kKiB, 8};
  config.l2 = {256 * kKiB, 8};
  config.llc_bytes_per_core = 1 * kMiB;
  config.memory.peak_gbps = 6.0;  // 3 GB/s per core
  config.memory.jitter_fraction = 0.0;
  return config;
}

std::unique_ptr<AccessGenerator> StreamWorkload(std::uint64_t seed,
                                                FunctionId function = 0) {
  SequentialStreamGenerator::Options o;
  o.working_set_bytes = 64 * kMiB;
  o.mean_stream_bytes = 16 * 1024;
  o.function = function;
  return std::make_unique<SequentialStreamGenerator>(o, Rng(seed));
}

std::unique_ptr<AccessGenerator> RandomWorkload(std::uint64_t seed,
                                                FunctionId function = 1) {
  RandomAccessGenerator::Options o;
  o.working_set_bytes = 128 * kMiB;
  o.function = function;
  return std::make_unique<RandomAccessGenerator>(o, Rng(seed));
}

void RunEpochs(Socket& socket, int epochs,
               SimTimeNs epoch_ns = 100 * kNsPerUs) {
  for (int i = 0; i < epochs; ++i) socket.Step(epoch_ns);
}

TEST(SocketTest, StepAdvancesTimeAndRetiresInstructions) {
  Socket socket(SmallSocket(), 4, Rng(1));
  socket.SetWorkload(0, StreamWorkload(1));
  RunEpochs(socket, 10);
  EXPECT_EQ(socket.now(), 10 * 100 * kNsPerUs);
  EXPECT_GT(socket.counters().instructions, 0u);
  EXPECT_GT(socket.counters().core_cycles, 0u);
}

TEST(SocketTest, IdleCoresAccumulateIdleCycles) {
  Socket socket(SmallSocket(), 4, Rng(1));
  // No workload at all.
  RunEpochs(socket, 5);
  EXPECT_EQ(socket.counters().instructions, 0u);
  EXPECT_GT(socket.counters().idle_cycles, 0u);
}

TEST(SocketTest, PrefetchersCoverSequentialStreams) {
  Socket on(SmallSocket(), 4, Rng(2));
  Socket off(SmallSocket(), 4, Rng(2));
  off.SetAllPrefetchersEnabled(false);
  on.SetWorkload(0, StreamWorkload(7));
  off.SetWorkload(0, StreamWorkload(7));
  RunEpochs(on, 50);
  RunEpochs(off, 50);
  const double mpki_on = on.counters().LlcMpki();
  const double mpki_off = off.counters().LlcMpki();
  // Streams are nearly fully covered by the DCU streamer.
  EXPECT_LT(mpki_on, 0.5 * mpki_off);
  EXPECT_GT(mpki_off, 1.0);
}

TEST(SocketTest, DisablingPrefetchersCutsTrafficOnRandomAccess) {
  Socket on(SmallSocket(), 4, Rng(3));
  Socket off(SmallSocket(), 4, Rng(3));
  off.SetAllPrefetchersEnabled(false);
  on.SetWorkload(0, RandomWorkload(9));
  off.SetWorkload(0, RandomWorkload(9));
  RunEpochs(on, 50);
  RunEpochs(off, 50);
  // Normalize traffic per instruction: prefetchers guess wrong on random
  // access, adding pure waste.
  const double bytes_per_instr_on =
      static_cast<double>(on.counters().DramTotalBytes()) /
      static_cast<double>(on.counters().instructions);
  const double bytes_per_instr_off =
      static_cast<double>(off.counters().DramTotalBytes()) /
      static_cast<double>(off.counters().instructions);
  EXPECT_LT(bytes_per_instr_off, 0.8 * bytes_per_instr_on);
  // And with prefetchers on, a large share of traffic is prefetch.
  const auto& c = on.counters();
  EXPECT_GT(c.dram_bytes[static_cast<int>(TrafficClass::kHwPrefetch)],
            c.DramTotalBytes() / 5);
}

TEST(SocketTest, MsrWriteDisablesEngines) {
  Socket socket(SmallSocket(), 4, Rng(4));
  EXPECT_TRUE(socket.AllPrefetchersEnabled());
  // Intel-style: setting the low 4 bits of 0x1A4 disables all engines.
  for (int cpu = 0; cpu < socket.config().num_cores; ++cpu) {
    EXPECT_TRUE(socket.msr_device().Write(cpu, 0x1a4, 0xf));
  }
  EXPECT_FALSE(socket.AllPrefetchersEnabled());
  for (int cpu = 0; cpu < socket.config().num_cores; ++cpu) {
    EXPECT_TRUE(socket.msr_device().Write(cpu, 0x1a4, 0x0));
  }
  EXPECT_TRUE(socket.AllPrefetchersEnabled());
}

TEST(SocketTest, MsrPathAffectsTraffic) {
  Socket socket(SmallSocket(), 4, Rng(5));
  socket.SetWorkload(0, RandomWorkload(11));
  RunEpochs(socket, 30);
  const std::uint64_t pf_bytes_before =
      socket.counters().dram_bytes[static_cast<int>(
          TrafficClass::kHwPrefetch)];
  EXPECT_GT(pf_bytes_before, 0u);
  for (int cpu = 0; cpu < socket.config().num_cores; ++cpu) {
    ASSERT_TRUE(socket.msr_device().Write(cpu, 0x1a4, 0xf));
  }
  RunEpochs(socket, 30);
  const std::uint64_t pf_bytes_after =
      socket.counters().dram_bytes[static_cast<int>(
          TrafficClass::kHwPrefetch)];
  // No further hardware prefetch traffic accrues once disabled.
  EXPECT_EQ(pf_bytes_after, pf_bytes_before);
}

TEST(SocketTest, SoftwarePrefetchCoversMemcpyWhenHwOff) {
  auto make_trace = [](bool sw_prefetch) {
    MemcpyTraceGenerator::Options o;
    o.src = 0;
    o.dst = 512 * kMiB;
    o.bytes = 4 * kMiB;
    o.function = 0;
    if (sw_prefetch) {
      o.sw_prefetch_distance_bytes = 512;
      o.sw_prefetch_degree_bytes = 256;
    }
    return std::make_unique<MemcpyTraceGenerator>(o);
  };
  Socket plain(SmallSocket(), 4, Rng(6));
  Socket prefetched(SmallSocket(), 4, Rng(6));
  plain.SetAllPrefetchersEnabled(false);
  prefetched.SetAllPrefetchersEnabled(false);
  plain.SetWorkload(0, make_trace(false));
  prefetched.SetWorkload(0, make_trace(true));
  while (!plain.WorkloadExhausted(0)) plain.Step(100 * kNsPerUs);
  while (!prefetched.WorkloadExhausted(0)) {
    prefetched.Step(100 * kNsPerUs);
  }
  // SW prefetching converts demand misses into covered hits => fewer
  // cycles to complete the same copy.
  EXPECT_LT(prefetched.counters().LlcMpki(),
            0.7 * plain.counters().LlcMpki());
  EXPECT_LT(prefetched.core_active_cycles(0),
            plain.core_active_cycles(0));
  // And the SW prefetch traffic is visible in its own class.
  EXPECT_GT(prefetched.counters().dram_bytes[static_cast<int>(
                TrafficClass::kSwPrefetch)],
            0u);
}

TEST(SocketTest, FiniteWorkloadExhausts) {
  Socket socket(SmallSocket(), 4, Rng(7));
  MemcpyTraceGenerator::Options o;
  o.bytes = 64 * kCacheLineBytes;
  o.dst = 1 * kMiB;
  socket.SetWorkload(0, std::make_unique<MemcpyTraceGenerator>(o));
  EXPECT_FALSE(socket.WorkloadExhausted(0));
  RunEpochs(socket, 5);
  EXPECT_TRUE(socket.WorkloadExhausted(0));
  EXPECT_TRUE(socket.WorkloadExhausted(1));  // never had work
}

TEST(SocketTest, FunctionAttributionSeparatesWorkloads) {
  Socket socket(SmallSocket(), 4, Rng(8));
  socket.SetWorkload(0, StreamWorkload(1, /*function=*/2));
  socket.SetWorkload(1, RandomWorkload(2, /*function=*/3));
  RunEpochs(socket, 20);
  const auto& profile = socket.function_profile();
  EXPECT_GT(profile[2].instructions, 0u);
  EXPECT_GT(profile[3].instructions, 0u);
  EXPECT_GT(profile[3].llc_misses, 0u);
  EXPECT_EQ(profile[0].instructions, 0u);
  // Random access misses far more than covered streams (per instruction).
  const double mpki2 = 1000.0 * static_cast<double>(profile[2].llc_misses) /
                       static_cast<double>(profile[2].instructions);
  const double mpki3 = 1000.0 * static_cast<double>(profile[3].llc_misses) /
                       static_cast<double>(profile[3].instructions);
  EXPECT_GT(mpki3, mpki2);
}

TEST(SocketTest, HighLoadRaisesMemoryLatency) {
  SocketConfig config = SmallSocket();
  config.memory.peak_gbps = 2.0;  // scarce bandwidth
  Socket socket(config, 4, Rng(9));
  const double unloaded_latency = socket.memory().CurrentLatencyNs();
  socket.SetWorkload(0, RandomWorkload(1));
  socket.SetWorkload(1, RandomWorkload(2));
  RunEpochs(socket, 60);
  const double loaded_latency = socket.memory().CurrentLatencyNs();
  EXPECT_GT(loaded_latency, unloaded_latency * 1.3);
}

TEST(SocketTest, DeterministicAcrossRuns) {
  auto run = [] {
    Socket socket(SmallSocket(), 4, Rng(42));
    socket.SetWorkload(0, StreamWorkload(3));
    socket.SetWorkload(1, RandomWorkload(4));
    RunEpochs(socket, 25);
    return socket.counters();
  };
  const PmuCounters a = run();
  const PmuCounters b = run();
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.core_cycles, b.core_cycles);
  EXPECT_EQ(a.llc_demand_misses, b.llc_demand_misses);
  EXPECT_EQ(a.DramTotalBytes(), b.DramTotalBytes());
}

TEST(SocketDeathTest, InvalidCoreIndexAborts) {
  Socket socket(SmallSocket(), 4, Rng(1));
  EXPECT_DEATH(socket.SetWorkload(99, nullptr), "CHECK");
}

}  // namespace
}  // namespace limoncello
