#include "sim/prefetch/prefetcher.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace limoncello {
namespace {

TEST(DcuStreamerTest, PrefetchesNextLine) {
  DcuStreamerPrefetcher pf;
  std::vector<Addr> out;
  pf.Observe({100, 1, false, false}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 101u);
  EXPECT_EQ(pf.issued(), 1u);
}

TEST(AdjacentLineTest, OnlyTriggersOnMiss) {
  AdjacentLinePrefetcher pf;
  std::vector<Addr> out;
  pf.Observe({100, 1, /*was_hit=*/true, false}, &out);
  EXPECT_TRUE(out.empty());
  pf.Observe({100, 1, /*was_hit=*/false, false}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 101u);  // buddy of even line is +1
  out.clear();
  pf.Observe({101, 1, false, false}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 100u);  // buddy of odd line is -1
}

TEST(IpStrideTest, LearnsStrideAfterConfidenceThreshold) {
  IpStridePrefetcher::Options o;
  o.confidence_threshold = 2;
  o.degree = 2;
  IpStridePrefetcher pf(o);
  std::vector<Addr> out;
  // Stride-3 stream from one "PC" (function 5). The first delta sets the
  // candidate stride; confidence counts subsequent confirmations.
  for (Addr a : {100, 103, 106, 109}) {
    out.clear();
    pf.Observe({a, 5, false, false}, &out);
  }
  // After two confirmations of the stride, the threshold is met.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 112u);
  EXPECT_EQ(out[1], 115u);
}

TEST(IpStrideTest, RandomAccessStaysQuiet) {
  IpStridePrefetcher pf;
  Rng rng(1);
  std::vector<Addr> out;
  std::size_t total = 0;
  for (int i = 0; i < 1000; ++i) {
    out.clear();
    pf.Observe({rng.NextBounded(1 << 20), 5, false, false}, &out);
    total += out.size();
  }
  // Random strides almost never repeat: few spurious prefetches.
  EXPECT_LT(total, 40u);
}

TEST(IpStrideTest, DistinctFunctionsTrackedIndependently) {
  IpStridePrefetcher::Options o;
  o.confidence_threshold = 2;
  o.degree = 1;
  IpStridePrefetcher pf(o);
  std::vector<Addr> out;
  // Interleave two streams with different strides and PCs.
  for (int i = 0; i < 4; ++i) {
    out.clear();
    pf.Observe({static_cast<Addr>(100 + 2 * i), 1, false, false}, &out);
    out.clear();
    pf.Observe({static_cast<Addr>(5000 + 7 * i), 2, false, false}, &out);
  }
  // Function 2's last observation should prefetch with stride 7.
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 5000u + 21u + 7u);
}

TEST(IpStrideTest, ResetStateForgetsTraining) {
  IpStridePrefetcher::Options o;
  o.confidence_threshold = 1;
  IpStridePrefetcher pf(o);
  std::vector<Addr> out;
  pf.Observe({10, 1, false, false}, &out);
  pf.Observe({12, 1, false, false}, &out);
  pf.Observe({14, 1, false, false}, &out);
  EXPECT_FALSE(out.empty());
  pf.ResetState();
  out.clear();
  pf.Observe({16, 1, false, false}, &out);
  EXPECT_TRUE(out.empty());  // must retrain from scratch
}

TEST(StreamPrefetcherTest, DetectsAscendingStreamWithDistanceAndDegree) {
  StreamPrefetcher::Options o;
  o.train_threshold = 2;
  o.degree = 3;
  o.distance = 4;
  StreamPrefetcher pf(o);
  std::vector<Addr> out;
  for (Addr a : {1000, 1001, 1002}) {
    out.clear();
    pf.Observe({a, 1, false, false}, &out);
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 1002u + 4 + 1);
  EXPECT_EQ(out[1], 1002u + 4 + 2);
  EXPECT_EQ(out[2], 1002u + 4 + 3);
}

TEST(StreamPrefetcherTest, DetectsDescendingStream) {
  StreamPrefetcher::Options o;
  o.train_threshold = 2;
  o.degree = 1;
  o.distance = 2;
  StreamPrefetcher pf(o);
  std::vector<Addr> out;
  for (Addr a : {1010, 1009, 1008}) {
    out.clear();
    pf.Observe({a, 1, false, false}, &out);
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 1008u - 3);
}

TEST(StreamPrefetcherTest, DirectionFlipResetsTraining) {
  StreamPrefetcher::Options o;
  o.train_threshold = 3;
  StreamPrefetcher pf(o);
  std::vector<Addr> out;
  for (Addr a : {1000, 1001, 1000, 1001, 1000}) {
    out.clear();
    pf.Observe({a, 1, false, false}, &out);
    EXPECT_TRUE(out.empty());  // never 3 consecutive same-direction steps
  }
}

TEST(StreamPrefetcherTest, TracksMultiplePagesIndependently) {
  StreamPrefetcher::Options o;
  o.train_threshold = 2;
  o.degree = 1;
  o.distance = 0;
  o.tracker_size = 8;
  StreamPrefetcher pf(o);
  std::vector<Addr> out;
  // Pages are 64 lines; interleave streams in two distant pages.
  std::size_t hits = 0;
  for (int i = 0; i < 6; ++i) {
    out.clear();
    pf.Observe({static_cast<Addr>(0 + i), 1, false, false}, &out);
    hits += out.size();
    out.clear();
    pf.Observe({static_cast<Addr>(1 << 12) + static_cast<Addr>(i), 1,
                false, false},
               &out);
    hits += out.size();
  }
  // Both streams train (threshold 2) and keep issuing.
  EXPECT_GE(hits, 8u);
}

TEST(StreamPrefetcherTest, RandomTrafficTriggersRarely) {
  StreamPrefetcher pf;
  Rng rng(3);
  std::vector<Addr> out;
  std::size_t issued = 0;
  for (int i = 0; i < 2000; ++i) {
    out.clear();
    pf.Observe({rng.NextBounded(1 << 22), 1, false, false}, &out);
    issued += out.size();
  }
  EXPECT_LT(issued, 200u);
}

TEST(EnableDisableTest, ReenableResetsState) {
  IpStridePrefetcher::Options o;
  o.confidence_threshold = 1;
  IpStridePrefetcher pf(o);
  std::vector<Addr> out;
  pf.Observe({10, 1, false, false}, &out);
  pf.Observe({12, 1, false, false}, &out);
  pf.set_enabled(false);
  EXPECT_FALSE(pf.enabled());
  pf.set_enabled(true);  // must clear training tables (warm-up cost)
  out.clear();
  pf.Observe({14, 1, false, false}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(EnableDisableTest, EnableWhenAlreadyEnabledKeepsState) {
  StreamPrefetcher::Options o;
  o.train_threshold = 2;
  o.degree = 1;
  StreamPrefetcher pf(o);
  std::vector<Addr> out;
  pf.Observe({100, 1, false, false}, &out);
  pf.Observe({101, 1, false, false}, &out);
  pf.set_enabled(true);  // no-op: already enabled
  out.clear();
  pf.Observe({102, 1, false, false}, &out);
  EXPECT_FALSE(out.empty());  // training survived
}

}  // namespace
}  // namespace limoncello
