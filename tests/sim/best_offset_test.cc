#include "sim/prefetch/best_offset.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace limoncello {
namespace {

BestOffsetPrefetcher::Options FastOptions() {
  BestOffsetPrefetcher::Options o;
  o.score_max = 8;
  o.round_max = 40;
  o.bad_score = 4;
  return o;
}

// Feeds a stride-`stride` stream of `n` accesses; returns the engine.
void FeedStride(BestOffsetPrefetcher& pf, Addr start, int stride, int n,
                std::vector<Addr>* sink) {
  for (int i = 0; i < n; ++i) {
    sink->clear();
    pf.Observe({start + static_cast<Addr>(i * stride), 1, false, false},
               sink);
  }
}

TEST(BestOffsetTest, LearnsUnitStride) {
  BestOffsetPrefetcher pf(FastOptions());
  std::vector<Addr> out;
  FeedStride(pf, 1000, 1, 100, &out);
  EXPECT_EQ(pf.current_offset(), 1);
  // Steady state: each access prefetches line+1.
  out.clear();
  pf.Observe({5000, 1, false, false}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 5001u);
}

TEST(BestOffsetTest, LearnsLargerStride) {
  BestOffsetPrefetcher pf(FastOptions());
  std::vector<Addr> out;
  FeedStride(pf, 2000, 4, 200, &out);
  EXPECT_EQ(pf.current_offset(), 4);
  out.clear();
  pf.Observe({8000, 1, false, false}, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 8004u);
}

TEST(BestOffsetTest, AdaptsWhenStrideChanges) {
  BestOffsetPrefetcher pf(FastOptions());
  std::vector<Addr> out;
  FeedStride(pf, 0, 1, 150, &out);
  ASSERT_EQ(pf.current_offset(), 1);
  // Switch to stride 8: after a couple of learning rounds the offset
  // follows.
  FeedStride(pf, 1 << 20, 8, 300, &out);
  EXPECT_EQ(pf.current_offset(), 8);
}

TEST(BestOffsetTest, PausesOnRandomAccess) {
  BestOffsetPrefetcher pf(FastOptions());
  Rng rng(5);
  std::vector<Addr> out;
  // Enough random accesses to complete several scoring rounds.
  for (int i = 0; i < 500; ++i) {
    out.clear();
    pf.Observe({rng.NextBounded(1 << 24), 1, false, false}, &out);
  }
  EXPECT_TRUE(pf.prefetching_paused());
  out.clear();
  pf.Observe({123, 1, false, false}, &out);
  EXPECT_TRUE(out.empty());  // throttled: no speculative traffic
  EXPECT_GE(pf.rounds_completed(), 5);
}

TEST(BestOffsetTest, RecoversFromPause) {
  BestOffsetPrefetcher pf(FastOptions());
  Rng rng(6);
  std::vector<Addr> out;
  for (int i = 0; i < 300; ++i) {
    out.clear();
    pf.Observe({rng.NextBounded(1 << 24), 1, false, false}, &out);
  }
  ASSERT_TRUE(pf.prefetching_paused());
  FeedStride(pf, 1 << 22, 1, 200, &out);
  EXPECT_EQ(pf.current_offset(), 1);
}

TEST(BestOffsetTest, ResetStateRestoresDefaults) {
  BestOffsetPrefetcher pf(FastOptions());
  std::vector<Addr> out;
  FeedStride(pf, 0, 4, 200, &out);
  ASSERT_EQ(pf.current_offset(), 4);
  pf.ResetState();
  EXPECT_EQ(pf.current_offset(), 1);
}

TEST(BestOffsetTest, ReportsAsL2StreamEngine) {
  BestOffsetPrefetcher pf;
  EXPECT_EQ(pf.kind(), PrefetchEngine::kL2Stream);
}

TEST(BestOffsetTest, NonCandidateStrideFallsBackToMultiple) {
  // Stride 7 is not a candidate, but offset 'd' scores whenever line-d
  // was recently accessed — multiples of 7 hit periodically; the engine
  // should settle on *some* useful multiple or pause, never crash.
  BestOffsetPrefetcher pf(FastOptions());
  std::vector<Addr> out;
  FeedStride(pf, 0, 7, 400, &out);
  // Offsets that are not multiples of 7 can never score on this stream.
  const int offset = pf.current_offset();
  if (offset != 0) {
    EXPECT_EQ(offset % 7, 0) << offset;
  }
}

}  // namespace
}  // namespace limoncello
