#include "sim/prefetch/fdp_throttle.h"

#include <gtest/gtest.h>

#include <memory>

#include "workloads/generators.h"

namespace limoncello {
namespace {

SocketConfig SmallSocket(double peak_gbps) {
  SocketConfig config;
  config.num_cores = 2;
  config.memory.peak_gbps = peak_gbps;
  config.memory.jitter_fraction = 0.0;
  return config;
}

TEST(FdpThrottleTest, DisableBitsLadder) {
  EXPECT_EQ(FdpThrottle::DisableBitsForLevel(0), 0xfu);
  EXPECT_EQ(FdpThrottle::DisableBitsForLevel(3), 0x0u);
  // Level 2 disables only the adjacent-line engine (bit 1).
  EXPECT_EQ(FdpThrottle::DisableBitsForLevel(2), 0x2u);
  // Level 1 additionally disables the DCU streamer (bit 2).
  EXPECT_EQ(FdpThrottle::DisableBitsForLevel(1), 0x6u);
}

TEST(FdpThrottleTest, RampsUpOnAccurateStreams) {
  Socket socket(SmallSocket(24.0), 2, Rng(1));
  FdpConfig config;
  config.initial_level = 1;
  FdpThrottle throttle(config, &socket);
  SequentialStreamGenerator::Options o;
  o.working_set_bytes = 128 * kMiB;
  o.mean_stream_bytes = 64 * 1024;
  o.gap_instructions_mean = 20.0;  // light load, no pressure
  socket.SetWorkload(0, std::make_unique<SequentialStreamGenerator>(
                            o, Rng(2)));
  for (int i = 0; i < 20; ++i) {
    socket.Step(100 * kNsPerUs);
    throttle.Tick();
  }
  // Accurate prefetching + bandwidth headroom: full aggressiveness.
  EXPECT_EQ(throttle.level(), 3);
  EXPECT_GT(throttle.adjustments(), 0u);
}

TEST(FdpThrottleTest, RampsDownUnderBandwidthPressure) {
  Socket socket(SmallSocket(2.0), 2, Rng(3));  // scarce bandwidth
  FdpConfig config;
  config.initial_level = 3;
  FdpThrottle throttle(config, &socket);
  for (int core = 0; core < 2; ++core) {
    RandomAccessGenerator::Options o;
    o.working_set_bytes = 256 * kMiB;
    o.gap_instructions_mean = 2.0;
    socket.SetWorkload(core, std::make_unique<RandomAccessGenerator>(
                                 o, Rng(4 + core)));
  }
  for (int i = 0; i < 30; ++i) {
    socket.Step(100 * kNsPerUs);
    throttle.Tick();
  }
  // Random access = low accuracy, saturated channel = high pressure:
  // the ladder walks down (typically to zero).
  EXPECT_LE(throttle.level(), 1);
}

TEST(FdpThrottleTest, IdleSocketHoldsOrRises) {
  Socket socket(SmallSocket(24.0), 2, Rng(5));
  FdpConfig config;
  FdpThrottle throttle(config, &socket);
  for (int i = 0; i < 10; ++i) {
    socket.Step(100 * kNsPerUs);
    throttle.Tick();
  }
  // No fills issued => accuracy treated as perfect; never ramps down.
  EXPECT_GE(throttle.level(), config.initial_level);
}

TEST(FdpThrottleTest, ActuatesThroughMsrPath) {
  Socket socket(SmallSocket(2.0), 2, Rng(6));
  FdpConfig config;
  config.initial_level = 3;
  FdpThrottle throttle(config, &socket);
  for (int core = 0; core < 2; ++core) {
    RandomAccessGenerator::Options o;
    o.working_set_bytes = 256 * kMiB;
    o.gap_instructions_mean = 2.0;
    socket.SetWorkload(core, std::make_unique<RandomAccessGenerator>(
                                 o, Rng(7 + core)));
  }
  for (int i = 0; i < 30; ++i) {
    socket.Step(100 * kNsPerUs);
    throttle.Tick();
  }
  ASSERT_LE(throttle.level(), 1);
  // The MSR register file reflects the ladder's engine mask.
  const std::uint64_t raw = socket.msr_device().PeekRaw(0, 0x1a4);
  EXPECT_EQ(raw, FdpThrottle::DisableBitsForLevel(throttle.level()));
}

}  // namespace
}  // namespace limoncello
