#include "sim/cache/cache.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

CacheConfig SmallCache() {
  // 4 KiB, 4-way => 16 sets of 4 lines.
  return CacheConfig{4 * kKiB, 4};
}

TEST(CacheTest, MissThenFillThenHit) {
  Cache cache(SmallCache(), "test");
  EXPECT_FALSE(cache.LookupDemand(100, false));
  cache.Fill(100, /*is_prefetch=*/false, /*dirty=*/false);
  EXPECT_TRUE(cache.LookupDemand(100, false));
  EXPECT_EQ(cache.stats().demand_hits, 1u);
  EXPECT_EQ(cache.stats().demand_misses, 1u);
}

TEST(CacheTest, ContainsHasNoSideEffects) {
  Cache cache(SmallCache(), "test");
  cache.Fill(7, false, false);
  const auto before = cache.stats();
  EXPECT_TRUE(cache.Contains(7));
  EXPECT_FALSE(cache.Contains(8));
  EXPECT_EQ(cache.stats().demand_hits, before.demand_hits);
  EXPECT_EQ(cache.stats().demand_misses, before.demand_misses);
}

TEST(CacheTest, LruEvictionOrder) {
  Cache cache(SmallCache(), "test");
  const std::uint64_t sets = cache.num_sets();
  // Fill one set completely: lines mapping to set 0.
  for (int w = 0; w < 4; ++w) {
    cache.Fill(static_cast<Addr>(w) * sets, false, false);
  }
  // Touch line 0 to make it MRU; way with line sets*1 is now LRU.
  EXPECT_TRUE(cache.LookupDemand(0, false));
  const auto evicted = cache.Fill(4 * sets, false, false);
  ASSERT_TRUE(evicted.valid);
  EXPECT_EQ(evicted.line_addr, sets);  // line 1*sets was LRU
  EXPECT_TRUE(cache.Contains(0));
  EXPECT_FALSE(cache.Contains(sets));
}

TEST(CacheTest, DirtyEvictionSignalsWriteback) {
  Cache cache(SmallCache(), "test");
  const std::uint64_t sets = cache.num_sets();
  cache.Fill(0, false, /*dirty=*/true);
  for (int w = 1; w < 4; ++w) cache.Fill(static_cast<Addr>(w) * sets, false, false);
  const auto evicted = cache.Fill(4 * sets, false, false);
  ASSERT_TRUE(evicted.valid);
  EXPECT_TRUE(evicted.dirty);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheTest, StoreMarksLineDirty) {
  Cache cache(SmallCache(), "test");
  const std::uint64_t sets = cache.num_sets();
  cache.Fill(0, false, false);
  EXPECT_TRUE(cache.LookupDemand(0, /*is_store=*/true));
  for (int w = 1; w < 4; ++w) cache.Fill(static_cast<Addr>(w) * sets, false, false);
  const auto evicted = cache.Fill(4 * sets, false, false);
  ASSERT_TRUE(evicted.valid);
  EXPECT_TRUE(evicted.dirty);
}

TEST(CacheTest, PrefetchCoverageAccounting) {
  Cache cache(SmallCache(), "test");
  cache.Fill(42, /*is_prefetch=*/true, false);
  EXPECT_EQ(cache.stats().prefetch_fills, 1u);
  EXPECT_TRUE(cache.LookupDemand(42, false));
  EXPECT_EQ(cache.stats().prefetch_covered_hits, 1u);
  // Second hit no longer counts as covered (bit cleared).
  EXPECT_TRUE(cache.LookupDemand(42, false));
  EXPECT_EQ(cache.stats().prefetch_covered_hits, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().PrefetchAccuracy(), 1.0);
}

TEST(CacheTest, PollutionAccounting) {
  Cache cache(SmallCache(), "test");
  const std::uint64_t sets = cache.num_sets();
  cache.Fill(0, /*is_prefetch=*/true, false);  // never demanded
  for (int w = 1; w < 5; ++w) {
    cache.Fill(static_cast<Addr>(w) * sets, false, false);
  }
  EXPECT_EQ(cache.stats().prefetch_pollution_evictions, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().PrefetchAccuracy(), 0.0);
}

TEST(CacheTest, RefillOfPresentLineDoesNotEvict) {
  Cache cache(SmallCache(), "test");
  cache.Fill(5, false, false);
  const auto evicted = cache.Fill(5, false, /*dirty=*/true);
  EXPECT_FALSE(evicted.valid);
  // The refill merged dirtiness.
  const std::uint64_t sets = cache.num_sets();
  for (int w = 1; w < 4; ++w) {
    cache.Fill(5 + static_cast<Addr>(w) * sets, false, false);
  }
  const auto second = cache.Fill(5 + 4 * sets, false, false);
  ASSERT_TRUE(second.valid);
  EXPECT_TRUE(second.dirty);
}

TEST(CacheTest, FlushEmptiesEverything) {
  Cache cache(SmallCache(), "test");
  for (Addr line = 0; line < 32; ++line) cache.Fill(line, false, false);
  cache.Flush();
  for (Addr line = 0; line < 32; ++line) {
    EXPECT_FALSE(cache.Contains(line));
  }
}

TEST(CacheTest, MissRateMetric) {
  Cache cache(SmallCache(), "test");
  cache.LookupDemand(1, false);  // miss
  cache.Fill(1, false, false);
  cache.LookupDemand(1, false);  // hit
  cache.LookupDemand(1, false);  // hit
  cache.LookupDemand(2, false);  // miss
  EXPECT_DOUBLE_EQ(cache.stats().DemandMissRate(), 0.5);
}

TEST(CacheTest, WorkingSetBiggerThanCacheAlwaysMisses) {
  Cache cache(SmallCache(), "test");  // 64 lines
  // Cyclic sweep over 128 lines with LRU => every access misses.
  int misses = 0;
  for (int round = 0; round < 3; ++round) {
    for (Addr line = 0; line < 128; ++line) {
      if (!cache.LookupDemand(line, false)) {
        ++misses;
        cache.Fill(line, false, false);
      }
    }
  }
  EXPECT_EQ(misses, 3 * 128);
}

TEST(CacheTest, WorkingSetFittingInCacheHitsAfterWarmup) {
  Cache cache(SmallCache(), "test");  // 64 lines
  for (Addr line = 0; line < 32; ++line) {
    cache.LookupDemand(line, false);
    cache.Fill(line, false, false);
  }
  cache.ResetStats();
  for (int round = 0; round < 4; ++round) {
    for (Addr line = 0; line < 32; ++line) {
      EXPECT_TRUE(cache.LookupDemand(line, false));
    }
  }
  EXPECT_EQ(cache.stats().demand_misses, 0u);
}

TEST(CacheDeathTest, NonPowerOfTwoSetsAborts) {
  EXPECT_DEATH(Cache(CacheConfig{48 * kKiB, 5}, "bad"), "CHECK");
}

// Sweep over geometries: basic invariants hold for all of them.
class CacheGeometryTest
    : public ::testing::TestWithParam<std::pair<std::uint64_t, int>> {};

TEST_P(CacheGeometryTest, FillThenHitInvariant) {
  const auto [size, ways] = GetParam();
  Cache cache(CacheConfig{size, ways}, "geo");
  for (Addr line = 0; line < 16; ++line) {
    cache.Fill(line * 977, false, false);
    EXPECT_TRUE(cache.Contains(line * 977));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryTest,
    ::testing::Values(std::make_pair(std::uint64_t{32} * kKiB, 8),
                      std::make_pair(std::uint64_t{256} * kKiB, 8),
                      std::make_pair(std::uint64_t{1} * kMiB, 16),
                      std::make_pair(std::uint64_t{8} * kMiB, 16),
                      std::make_pair(std::uint64_t{4} * kKiB, 1),
                      std::make_pair(std::uint64_t{16} * kMiB, 32)));

}  // namespace
}  // namespace limoncello
