// Golden cache-stats snapshot: a fixed Rng-driven access trace through
// every replacement policy must reproduce every Cache::Stats counter
// exactly. The golden values below were captured from the original
// vector-of-vectors cache implementation (pre flat-layout refactor); any
// change to the access hot path must keep the simulation bit-identical,
// and this test is the guard. If a deliberate semantic change to the
// cache model is ever made, re-capture the counters and say so in the
// commit message.
#include <gtest/gtest.h>

#include "sim/cache/cache.h"
#include "util/rng.h"

namespace limoncello {
namespace {

// Socket-shaped traffic: demand lookups over a hot set (~1.5x the cache)
// plus a cold tail, miss fills, and Contains-filtered buddy-line prefetch
// fills. Exercises every counter: hits, misses, covered hits, prefetch
// and demand fills, pollution evictions, and dirty writebacks.
void DriveGoldenTrace(Cache* cache) {
  Rng rng(0xD0C5EEDULL);
  for (int i = 0; i < 60000; ++i) {
    const Addr line = rng.NextBernoulli(0.65)
                          ? rng.NextBounded(768)
                          : rng.NextBounded(std::uint64_t{1} << 14);
    const bool is_store = rng.NextBernoulli(0.2);
    if (!cache->LookupDemand(line, is_store)) {
      cache->Fill(line, /*is_prefetch=*/false, /*dirty=*/is_store);
      const Addr buddy = line ^ 1;
      if (!cache->Contains(buddy)) {
        cache->Fill(buddy, /*is_prefetch=*/true, /*dirty=*/false);
      }
    }
  }
}

struct GoldenCase {
  const char* name;
  CacheConfig config;
  Cache::Stats expected;
};

class CacheGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(CacheGoldenTest, TraceReproducesEveryCounterExactly) {
  const GoldenCase& c = GetParam();
  Cache cache(c.config, c.name);
  DriveGoldenTrace(&cache);
  const Cache::Stats& s = cache.stats();
  EXPECT_EQ(s.demand_hits, c.expected.demand_hits);
  EXPECT_EQ(s.demand_misses, c.expected.demand_misses);
  EXPECT_EQ(s.prefetch_covered_hits, c.expected.prefetch_covered_hits);
  EXPECT_EQ(s.prefetch_fills, c.expected.prefetch_fills);
  EXPECT_EQ(s.demand_fills, c.expected.demand_fills);
  EXPECT_EQ(s.prefetch_pollution_evictions,
            c.expected.prefetch_pollution_evictions);
  EXPECT_EQ(s.writebacks, c.expected.writebacks);
}

// Counter order: demand_hits, demand_misses, prefetch_covered_hits,
// prefetch_fills, demand_fills, prefetch_pollution_evictions, writebacks.
INSTANTIATE_TEST_SUITE_P(
    Policies, CacheGoldenTest,
    ::testing::Values(
        GoldenCase{"lru",
                   CacheConfig{16 * kKiB, 4, ReplacementPolicy::kLru},
                   {8723u, 51277u, 3820u, 50650u, 51277u, 46720u, 11615u}},
        GoldenCase{"random",
                   CacheConfig{16 * kKiB, 4, ReplacementPolicy::kRandom},
                   {8387u, 51613u, 3545u, 48248u, 51613u, 44583u, 11633u}},
        GoldenCase{"srrip",
                   CacheConfig{16 * kKiB, 4, ReplacementPolicy::kSrrip},
                   {9434u, 50566u, 915u, 44784u, 50566u, 43841u, 11323u}},
        GoldenCase{"lru_8way",
                   CacheConfig{32 * kKiB, 8, ReplacementPolicy::kLru},
                   {16091u, 43909u, 5806u, 41790u, 43909u, 35774u,
                    11272u}}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace limoncello
