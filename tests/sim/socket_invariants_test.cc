// Accounting invariants of the detailed socket simulator, checked across
// a parameterized sweep of workload archetypes and prefetcher states.
// These catch double-counting and leakage bugs that scenario tests miss.
#include <gtest/gtest.h>

#include <memory>

#include "sim/machine/socket.h"
#include "workloads/function_catalog.h"
#include "workloads/generators.h"

namespace limoncello {
namespace {

struct Scenario {
  const char* name;
  int pattern;  // 0 stream, 1 random, 2 strided, 3 fleet mix, 4 memcpy+sw
  bool prefetchers_on;
};

class SocketInvariantsTest : public ::testing::TestWithParam<Scenario> {
 protected:
  static std::unique_ptr<AccessGenerator> MakeWorkload(int pattern,
                                                       int core) {
    const Rng seed = Rng(1000 + pattern).Fork(static_cast<std::uint64_t>(core));
    switch (pattern) {
      case 0: {
        SequentialStreamGenerator::Options o;
        o.function = 0;
        return std::make_unique<SequentialStreamGenerator>(o, seed);
      }
      case 1: {
        RandomAccessGenerator::Options o;
        o.working_set_bytes = 128 * kMiB;
        o.function = 1;
        return std::make_unique<RandomAccessGenerator>(o, seed);
      }
      case 2: {
        StridedGenerator::Options o;
        o.stride_lines = 5;
        o.function = 2;
        return std::make_unique<StridedGenerator>(o, seed);
      }
      case 3:
        return FunctionCatalog::FleetDefault().MakeFleetMix(seed);
      default: {
        MemcpyTraceGenerator::Options o;
        o.src = 0;
        o.dst = 1ULL * kGiB;
        o.bytes = 8 * kMiB;
        o.function = 3;
        o.sw_prefetch_distance_bytes = 512;
        o.sw_prefetch_degree_bytes = 256;
        return std::make_unique<MemcpyTraceGenerator>(o);
      }
    }
  }
};

TEST_P(SocketInvariantsTest, AccountingIsConsistent) {
  const Scenario scenario = GetParam();
  SocketConfig config;
  config.num_cores = 2;
  config.memory.peak_gbps = 6.0;
  Socket socket(config, 20, Rng(5));
  socket.SetAllPrefetchersEnabled(scenario.prefetchers_on);
  for (int core = 0; core < 2; ++core) {
    socket.SetWorkload(core, MakeWorkload(scenario.pattern, core));
  }
  for (int epoch = 0; epoch < 40; ++epoch) socket.Step(100 * kNsPerUs);

  const PmuCounters& c = socket.counters();
  const Cache::Stats l1 = socket.AggregateL1Stats();
  const Cache::Stats l2 = socket.AggregateL2Stats();
  const Cache::Stats& llc = socket.LlcStats();

  // I1: instructions retired and cycles spent are positive and sane.
  ASSERT_GT(c.instructions, 0u);
  ASSERT_GT(c.core_cycles, 0u);

  // I2: every demand access touches L1: L1 demand lookups >= LLC demand
  // lookups (filtering only shrinks the stream down the hierarchy).
  const std::uint64_t l1_lookups = l1.demand_hits + l1.demand_misses;
  const std::uint64_t l2_lookups = l2.demand_hits + l2.demand_misses;
  const std::uint64_t llc_lookups = llc.demand_hits + llc.demand_misses;
  EXPECT_GE(l1_lookups, l2_lookups);
  EXPECT_GE(l2_lookups, llc_lookups);

  // I3: L2 demand lookups equal L1 demand misses (every L1 demand miss
  // goes to L2, nothing else does).
  EXPECT_EQ(l2_lookups, l1.demand_misses);
  EXPECT_EQ(llc_lookups, l2.demand_misses);

  // I4: PMU LLC counters mirror the LLC cache stats.
  EXPECT_EQ(c.llc_demand_misses, llc.demand_misses);
  EXPECT_EQ(c.llc_demand_hits, llc.demand_hits);

  // I5: demand DRAM line fetches equal LLC demand misses.
  EXPECT_EQ(c.dram_bytes[static_cast<int>(TrafficClass::kDemand)],
            llc.demand_misses * kCacheLineBytes);

  // I6: prefetch accuracy fractions are well-formed.
  for (const Cache::Stats& s : {l1, l2, llc}) {
    EXPECT_GE(s.PrefetchAccuracy(), 0.0);
    EXPECT_LE(s.PrefetchAccuracy(), 1.0);
    EXPECT_GE(s.prefetch_covered_hits + s.prefetch_pollution_evictions,
              0u);
    // Covered + polluted never exceeds fills (lines still resident make
    // up the difference).
    EXPECT_LE(s.prefetch_covered_hits + s.prefetch_pollution_evictions,
              s.prefetch_fills);
  }

  // I7: with prefetchers disabled there is no hardware prefetch traffic.
  // (Software prefetches — the memcpy scenario — still fill caches.)
  if (!scenario.prefetchers_on) {
    EXPECT_EQ(c.dram_bytes[static_cast<int>(TrafficClass::kHwPrefetch)],
              0u);
    if (scenario.pattern != 4) {
      EXPECT_EQ(l1.prefetch_fills + l2.prefetch_fills, 0u);
    }
  }

  // I8: lines touched bounds LLC demand misses (a miss requires a touch).
  EXPECT_GE(c.lines_touched, c.llc_demand_misses);

  // I9: function attribution sums to the socket totals.
  std::uint64_t profile_instructions = 0;
  std::uint64_t profile_misses = 0;
  for (const FunctionProfileEntry& e : socket.function_profile()) {
    profile_instructions += e.instructions;
    profile_misses += e.llc_misses;
  }
  EXPECT_EQ(profile_instructions, c.instructions);
  EXPECT_EQ(profile_misses, c.llc_demand_misses);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, SocketInvariantsTest,
    ::testing::Values(Scenario{"stream_on", 0, true},
                      Scenario{"stream_off", 0, false},
                      Scenario{"random_on", 1, true},
                      Scenario{"random_off", 1, false},
                      Scenario{"strided_on", 2, true},
                      Scenario{"strided_off", 2, false},
                      Scenario{"mix_on", 3, true},
                      Scenario{"mix_off", 3, false},
                      Scenario{"memcpy_sw_on", 4, true},
                      Scenario{"memcpy_sw_off", 4, false}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace limoncello
