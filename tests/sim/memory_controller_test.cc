#include "sim/memory/memory_controller.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

MemoryControllerConfig TestConfig() {
  MemoryControllerConfig config;
  config.peak_gbps = 10.0;  // 10 bytes/ns
  config.jitter_fraction = 0.0;
  return config;
}

TEST(MemoryControllerTest, UtilizationAccounting) {
  MemoryController mc(TestConfig(), Rng(1));
  mc.BeginEpoch(1000);  // capacity = 10'000 bytes
  for (int i = 0; i < 50; ++i) mc.Access(TrafficClass::kDemand);
  const auto epoch = mc.EndEpoch();
  // 50 lines * 64B = 3200 bytes of 10'000 => 32 %.
  EXPECT_NEAR(epoch.utilization, 0.32, 1e-9);
  EXPECT_EQ(epoch.requests, 50u);
  EXPECT_EQ(epoch.TotalBytes(), 3200u);
}

TEST(MemoryControllerTest, TrafficClassSeparation) {
  MemoryController mc(TestConfig(), Rng(1));
  mc.BeginEpoch(1000);
  mc.Access(TrafficClass::kDemand);
  mc.Access(TrafficClass::kHwPrefetch);
  mc.Access(TrafficClass::kHwPrefetch);
  mc.Access(TrafficClass::kSwPrefetch);
  mc.Access(TrafficClass::kWriteback);
  const auto epoch = mc.EndEpoch();
  EXPECT_EQ(epoch.bytes[static_cast<int>(TrafficClass::kDemand)], 64u);
  EXPECT_EQ(epoch.bytes[static_cast<int>(TrafficClass::kHwPrefetch)], 128u);
  EXPECT_EQ(epoch.bytes[static_cast<int>(TrafficClass::kSwPrefetch)], 64u);
  EXPECT_EQ(epoch.bytes[static_cast<int>(TrafficClass::kWriteback)], 64u);
  // Writebacks are not latency-bearing requests.
  EXPECT_EQ(epoch.requests, 4u);
}

TEST(MemoryControllerTest, FirstEpochLatencyIsUnloaded) {
  MemoryController mc(TestConfig(), Rng(1));
  mc.BeginEpoch(1000);
  const double latency = mc.Access(TrafficClass::kDemand);
  EXPECT_DOUBLE_EQ(latency, mc.config().latency.unloaded_ns);
  mc.EndEpoch();
}

TEST(MemoryControllerTest, SustainedTrafficRaisesLatency) {
  MemoryController mc(TestConfig(), Rng(1));
  double first_latency = 0.0;
  double last_latency = 0.0;
  for (int epoch = 0; epoch < 20; ++epoch) {
    mc.BeginEpoch(1000);
    // 90 % utilization: 141 requests ~ 9024 bytes of 10'000.
    double latency = 0.0;
    for (int i = 0; i < 141; ++i) latency = mc.Access(TrafficClass::kDemand);
    mc.EndEpoch();
    if (epoch == 0) first_latency = latency;
    last_latency = latency;
  }
  EXPECT_GT(last_latency, first_latency * 1.5);
}

TEST(MemoryControllerTest, EwmaSmoothsUtilization) {
  MemoryControllerConfig config = TestConfig();
  config.utilization_alpha = 0.5;
  MemoryController mc(config, Rng(1));
  mc.BeginEpoch(1000);
  for (int i = 0; i < 156; ++i) mc.Access(TrafficClass::kDemand);  // ~100 %
  mc.EndEpoch();
  // One epoch at ~100 % with alpha 0.5 => EWMA ~0.5.
  EXPECT_NEAR(mc.SmoothedUtilization(), 0.5, 0.01);
  mc.BeginEpoch(1000);
  mc.EndEpoch();  // idle epoch
  EXPECT_NEAR(mc.SmoothedUtilization(), 0.25, 0.01);
}

TEST(MemoryControllerTest, TotalsAccumulateAcrossEpochs) {
  MemoryController mc(TestConfig(), Rng(1));
  for (int e = 0; e < 3; ++e) {
    mc.BeginEpoch(1000);
    for (int i = 0; i < 10; ++i) mc.Access(TrafficClass::kDemand);
    mc.EndEpoch();
  }
  EXPECT_EQ(mc.totals().requests, 30u);
  EXPECT_EQ(mc.totals().TotalBytes(), 30u * 64u);
  EXPECT_GT(mc.totals().AvgLatencyNs(), 0.0);
}

TEST(MemoryControllerTest, JitterBoundedAndDeterministic) {
  MemoryControllerConfig config = TestConfig();
  config.jitter_fraction = 0.1;
  MemoryController a(config, Rng(9));
  MemoryController b(config, Rng(9));
  a.BeginEpoch(1000);
  b.BeginEpoch(1000);
  for (int i = 0; i < 100; ++i) {
    const double la = a.Access(TrafficClass::kDemand);
    const double lb = b.Access(TrafficClass::kDemand);
    EXPECT_DOUBLE_EQ(la, lb);  // same seed, same jitter
    EXPECT_GE(la, config.latency.unloaded_ns * 0.9);
    EXPECT_LE(la, config.latency.unloaded_ns * 1.1);
  }
  a.EndEpoch();
  b.EndEpoch();
}

TEST(MemoryControllerDeathTest, EndWithoutBeginAborts) {
  MemoryController mc(TestConfig(), Rng(1));
  EXPECT_DEATH(mc.EndEpoch(), "CHECK");
}

TEST(MemoryControllerDeathTest, DoubleBeginAborts) {
  MemoryController mc(TestConfig(), Rng(1));
  mc.BeginEpoch(1000);
  EXPECT_DEATH(mc.BeginEpoch(1000), "CHECK");
}

}  // namespace
}  // namespace limoncello
