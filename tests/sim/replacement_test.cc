// Replacement-policy tests, including a reference-model property test:
// the production set-associative cache must agree hit-for-hit with a
// brute-force LRU model over random traces.
#include <gtest/gtest.h>

#include <list>
#include <map>

#include "sim/cache/cache.h"
#include "util/rng.h"

namespace limoncello {
namespace {

// Brute-force fully-explicit LRU reference: per set, an ordered list of
// tags, most recent at the front.
class ReferenceLru {
 public:
  ReferenceLru(std::uint64_t sets, int ways) : sets_(sets), ways_(ways) {}

  bool Access(Addr line_addr) {
    auto& set = state_[line_addr % sets_];
    const Addr tag = line_addr / sets_;
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (*it == tag) {
        set.erase(it);
        set.push_front(tag);
        return true;
      }
    }
    set.push_front(tag);
    if (set.size() > static_cast<std::size_t>(ways_)) set.pop_back();
    return false;
  }

 private:
  std::uint64_t sets_;
  int ways_;
  std::map<std::uint64_t, std::list<Addr>> state_;
};

class LruReferenceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruReferenceTest, MatchesBruteForceModelOnRandomTrace) {
  CacheConfig config;
  config.size_bytes = 16 * kKiB;  // 256 lines
  config.ways = 4;                // 64 sets
  Cache cache(config, "dut");
  ReferenceLru reference(cache.num_sets(), config.ways);

  Rng rng(GetParam());
  for (int i = 0; i < 50000; ++i) {
    // Skewed address distribution: hot region + cold tail, to exercise
    // both hits and evictions heavily.
    const Addr line = rng.NextBernoulli(0.7) ? rng.NextBounded(512)
                                             : rng.NextBounded(1 << 16);
    const bool expected = reference.Access(line);
    const bool actual = cache.LookupDemand(line, false);
    ASSERT_EQ(actual, expected) << "access " << i << " line " << line;
    if (!actual) cache.Fill(line, false, false);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruReferenceTest,
                         ::testing::Values(1, 2, 3, 4, 5));

CacheConfig SmallConfig(ReplacementPolicy policy) {
  CacheConfig config;
  config.size_bytes = 4 * kKiB;
  config.ways = 4;
  config.policy = policy;
  return config;
}

TEST(SrripTest, HitPromotesLine) {
  Cache cache(SmallConfig(ReplacementPolicy::kSrrip), "srrip");
  const std::uint64_t sets = cache.num_sets();
  // Fill a set; re-reference line 0 (rrpv -> 0); insert two more lines.
  for (int w = 0; w < 4; ++w) {
    cache.Fill(static_cast<Addr>(w) * sets, false, false);
  }
  cache.LookupDemand(0, false);
  cache.Fill(4 * sets, false, false);
  cache.Fill(5 * sets, false, false);
  // The re-referenced line survives both evictions.
  EXPECT_TRUE(cache.Contains(0));
}

TEST(SrripTest, PrefetchInsertedAtDistantRrpv) {
  Cache cache(SmallConfig(ReplacementPolicy::kSrrip), "srrip");
  const std::uint64_t sets = cache.num_sets();
  // Three demand lines + one prefetched line in a set.
  cache.Fill(0 * sets, false, false);
  cache.Fill(1 * sets, false, false);
  cache.Fill(2 * sets, false, false);
  cache.Fill(3 * sets, /*is_prefetch=*/true, false);
  // Next fill evicts the unproven prefetch first.
  const auto evicted = cache.Fill(4 * sets, false, false);
  ASSERT_TRUE(evicted.valid);
  EXPECT_TRUE(evicted.unused_prefetch);
  EXPECT_EQ(evicted.line_addr, 3 * sets);
}

TEST(SrripTest, DemandedPrefetchIsProtected) {
  Cache cache(SmallConfig(ReplacementPolicy::kSrrip), "srrip");
  const std::uint64_t sets = cache.num_sets();
  cache.Fill(0 * sets, true, false);
  cache.LookupDemand(0, false);  // prefetch proven useful: rrpv -> 0
  cache.Fill(1 * sets, false, false);
  cache.Fill(2 * sets, false, false);
  cache.Fill(3 * sets, false, false);
  cache.Fill(4 * sets, false, false);  // set overflows
  EXPECT_TRUE(cache.Contains(0));      // the proven line survives
}

TEST(SrripTest, ReducesPrefetchPollutionVsLru) {
  // A demand working set that exactly fits, plus a stream of useless
  // prefetches: SRRIP keeps more of the demand set resident.
  auto run = [](ReplacementPolicy policy) {
    CacheConfig config;
    config.size_bytes = 16 * kKiB;  // 256 lines
    config.ways = 8;
    config.policy = policy;
    Cache cache(config, "pollution");
    Rng rng(4);
    // Warm a 192-line demand working set.
    for (Addr line = 0; line < 192; ++line) cache.Fill(line, false, false);
    std::uint64_t demand_hits = 0;
    for (int round = 0; round < 200; ++round) {
      for (Addr line = 0; line < 192; ++line) {
        if (cache.LookupDemand(line, false)) {
          ++demand_hits;
        } else {
          cache.Fill(line, false, false);
        }
        // Interleave junk prefetches (never demanded).
        if (rng.NextBernoulli(0.5)) {
          cache.Fill(1 << 20 | rng.NextBounded(1 << 16), true, false);
        }
      }
    }
    return demand_hits;
  };
  const std::uint64_t lru_hits = run(ReplacementPolicy::kLru);
  const std::uint64_t srrip_hits = run(ReplacementPolicy::kSrrip);
  EXPECT_GT(srrip_hits, lru_hits);
}

TEST(RandomReplacementTest, DeterministicAndFunctional) {
  auto run = [] {
    Cache cache(SmallConfig(ReplacementPolicy::kRandom), "rand");
    Rng rng(9);
    std::uint64_t hits = 0;
    for (int i = 0; i < 20000; ++i) {
      const Addr line = rng.NextBounded(256);
      if (cache.LookupDemand(line, false)) {
        ++hits;
      } else {
        cache.Fill(line, false, false);
      }
    }
    return hits;
  };
  const std::uint64_t a = run();
  const std::uint64_t b = run();
  EXPECT_EQ(a, b);        // deterministic victims
  EXPECT_GT(a, 1000u);    // still caches effectively
}

TEST(PolicyComparisonTest, CyclicSweepFavorsNonLru) {
  // The classic LRU pathology: a cyclic sweep slightly larger than the
  // cache gets zero hits under LRU; random replacement keeps some.
  auto run = [](ReplacementPolicy policy) {
    CacheConfig config;
    config.size_bytes = 4 * kKiB;  // 64 lines
    config.ways = 64;              // fully associative: pure policy test
    config.policy = policy;
    Cache cache(config, "sweep");
    for (int round = 0; round < 50; ++round) {
      for (Addr line = 0; line < 80; ++line) {
        if (!cache.LookupDemand(line, false)) {
          cache.Fill(line, false, false);
        }
      }
    }
    return cache.stats().demand_hits;
  };
  EXPECT_EQ(run(ReplacementPolicy::kLru), 0u);
  EXPECT_GT(run(ReplacementPolicy::kRandom), 500u);
}

}  // namespace
}  // namespace limoncello
