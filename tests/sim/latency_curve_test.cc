#include "sim/memory/latency_curve.h"

#include <gtest/gtest.h>

#include <cmath>

namespace limoncello {
namespace {

TEST(LatencyCurveTest, UnloadedLatencyAtZeroUtilization) {
  LatencyCurveConfig config;
  EXPECT_DOUBLE_EQ(LatencyAtUtilization(config, 0.0), config.unloaded_ns);
}

TEST(LatencyCurveTest, MonotonicallyIncreasing) {
  LatencyCurveConfig config;
  double prev = 0.0;
  for (double u = 0.0; u <= 1.2; u += 0.05) {
    const double latency = LatencyAtUtilization(config, u);
    EXPECT_GE(latency, prev) << "at utilization " << u;
    prev = latency;
  }
}

TEST(LatencyCurveTest, RoughlyDoublesNearSaturation) {
  // The paper's Fig. 1 shape: ~2x latency increase by ~90 % utilization.
  LatencyCurveConfig config;
  const double low = LatencyAtUtilization(config, 0.05);
  const double high = LatencyAtUtilization(config, 0.90);
  EXPECT_GE(high / low, 1.8);
  EXPECT_LE(high / low, 3.0);
}

TEST(LatencyCurveTest, GrowsLinearlyAboveMaxUtilization) {
  LatencyCurveConfig config;
  const double at_max = LatencyAtUtilization(config, config.max_utilization);
  // Beyond the queuing clamp latency keeps ordering operating points but
  // grows only linearly, and is bounded for any input.
  const double over = LatencyAtUtilization(config, 1.2);
  EXPECT_GT(over, at_max);
  EXPECT_LT(over, at_max * 2.5);
  EXPECT_DOUBLE_EQ(LatencyAtUtilization(config, 5.0),
                   LatencyAtUtilization(config, 2.0));
}

TEST(LatencyCurveTest, StaysFiniteEverywhere) {
  LatencyCurveConfig config;
  for (double u = 0.0; u <= 2.0; u += 0.01) {
    const double latency = LatencyAtUtilization(config, u);
    EXPECT_TRUE(std::isfinite(latency));
    EXPECT_GT(latency, 0.0);
  }
}

TEST(LatencyCurveTest, QueueCoefficientScalesQueuingOnly) {
  LatencyCurveConfig a;
  LatencyCurveConfig b = a;
  b.queue_coeff_ns = 2.0 * a.queue_coeff_ns;
  EXPECT_DOUBLE_EQ(LatencyAtUtilization(a, 0.0),
                   LatencyAtUtilization(b, 0.0));
  const double qa = LatencyAtUtilization(a, 0.8) - a.unloaded_ns;
  const double qb = LatencyAtUtilization(b, 0.8) - b.unloaded_ns;
  EXPECT_NEAR(qb, 2.0 * qa, 1e-9);
}

// Latency-curve shape across a parameter sweep: the curve knee must stay
// past 50 % utilization for every plausible exponent.
class LatencyCurveShapeTest : public ::testing::TestWithParam<double> {};

TEST_P(LatencyCurveShapeTest, GentleBelowHalfUtilization) {
  LatencyCurveConfig config;
  config.exponent = GetParam();
  const double low = LatencyAtUtilization(config, 0.0);
  const double mid = LatencyAtUtilization(config, 0.5);
  EXPECT_LE(mid / low, 1.45) << "exponent " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Exponents, LatencyCurveShapeTest,
                         ::testing::Values(1.8, 2.0, 2.2, 2.5, 3.0));

}  // namespace
}  // namespace limoncello
