#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <memory>

#include "workloads/generators.h"

namespace limoncello {
namespace {

SocketConfig SmallSocket() {
  SocketConfig config;
  config.num_cores = 2;
  config.memory.peak_gbps = 4.0;
  config.memory.jitter_fraction = 0.0;
  return config;
}

std::unique_ptr<AccessGenerator> Workload(std::uint64_t seed) {
  RandomAccessGenerator::Options o;
  o.working_set_bytes = 64 * kMiB;
  o.function = 0;
  return std::make_unique<RandomAccessGenerator>(o, Rng(seed));
}

TEST(PmuSamplerTest, DeltasMatchCounterDifferences) {
  Socket socket(SmallSocket(), 2, Rng(1));
  socket.SetWorkload(0, Workload(1));
  PmuSampler sampler(&socket);
  socket.Step(100 * kNsPerUs);
  const PmuDelta d1 = sampler.Sample();
  EXPECT_EQ(d1.interval_ns, 100 * kNsPerUs);
  EXPECT_GT(d1.instructions, 0u);
  EXPECT_GT(d1.dram_bytes, 0u);
  EXPECT_EQ(d1.instructions, socket.counters().instructions);

  // Second sample covers only the second step.
  socket.Step(100 * kNsPerUs);
  const PmuDelta d2 = sampler.Sample();
  EXPECT_EQ(d1.instructions + d2.instructions,
            socket.counters().instructions);
}

TEST(PmuSamplerTest, ZeroIntervalWhenNoStep) {
  Socket socket(SmallSocket(), 2, Rng(1));
  PmuSampler sampler(&socket);
  const PmuDelta d = sampler.Sample();
  EXPECT_EQ(d.interval_ns, 0);
  EXPECT_EQ(d.instructions, 0u);
}

TEST(PmuDeltaTest, DerivedMetrics) {
  PmuDelta d;
  d.interval_ns = 1000;
  d.dram_bytes = 5000;
  d.instructions = 2000;
  d.core_cycles = 1000;
  d.llc_demand_misses = 10;
  d.dram_requests = 4;
  d.dram_latency_ns_sum = 800.0;
  EXPECT_DOUBLE_EQ(d.BandwidthGBps(), 5.0);
  EXPECT_DOUBLE_EQ(d.Ipc(), 2.0);
  EXPECT_DOUBLE_EQ(d.LlcMpki(), 5.0);
  EXPECT_DOUBLE_EQ(d.AvgLatencyNs(), 200.0);
}

TEST(SocketUtilizationSourceTest, ReportsFractionOfSaturation) {
  Socket socket(SmallSocket(), 2, Rng(2));
  socket.SetWorkload(0, Workload(3));
  socket.SetWorkload(1, Workload(4));
  SocketUtilizationSource source(&socket);
  socket.Step(100 * kNsPerUs);
  const auto u = source.SampleUtilization();
  ASSERT_TRUE(u.has_value());
  EXPECT_GT(*u, 0.0);
  // In the first (unloaded-latency) epoch the cores can oversubscribe the
  // channel, so utilization may exceed 1 before queuing pushes back.
  EXPECT_LT(*u, 4.0);
  // Cross-check against the PMU math.
  const double gbps =
      static_cast<double>(socket.counters().DramTotalBytes()) /
      static_cast<double>(100 * kNsPerUs);
  EXPECT_NEAR(*u, gbps / 4.0, 1e-9);
}

TEST(SocketUtilizationSourceTest, CustomSaturationThreshold) {
  Socket socket(SmallSocket(), 2, Rng(2));
  socket.SetWorkload(0, Workload(3));
  SocketUtilizationSource narrow(&socket, /*saturation_gbps=*/1.0);
  SocketUtilizationSource wide(&socket, /*saturation_gbps=*/8.0);
  socket.Step(100 * kNsPerUs);
  const auto un = narrow.SampleUtilization();
  // `wide` shares the socket but has its own sampler baseline; both read
  // the same cumulative counters on their first sample.
  const auto uw = wide.SampleUtilization();
  ASSERT_TRUE(un.has_value());
  ASSERT_TRUE(uw.has_value());
  EXPECT_NEAR(*un / *uw, 8.0, 1e-6);
}

TEST(SocketUtilizationSourceTest, FailureInjectionReturnsNullopt) {
  Socket socket(SmallSocket(), 2, Rng(2));
  SocketUtilizationSource source(&socket);
  source.set_failed(true);
  socket.Step(100 * kNsPerUs);
  EXPECT_FALSE(source.SampleUtilization().has_value());
  source.set_failed(false);
  socket.Step(100 * kNsPerUs);
  EXPECT_TRUE(source.SampleUtilization().has_value());
}

TEST(SocketUtilizationSourceTest, NoTimeElapsedIsFailure) {
  Socket socket(SmallSocket(), 2, Rng(2));
  SocketUtilizationSource source(&socket);
  EXPECT_FALSE(source.SampleUtilization().has_value());
}

}  // namespace
}  // namespace limoncello
