#include "softpf/soft_prefetch_config.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

TEST(SoftPrefetchConfigTest, DisabledNeverApplies) {
  const SoftPrefetchConfig config = SoftPrefetchConfig::Disabled();
  EXPECT_FALSE(config.AppliesTo(0));
  EXPECT_FALSE(config.AppliesTo(1 << 20));
}

TEST(SoftPrefetchConfigTest, MinSizeGate) {
  SoftPrefetchConfig config;
  config.min_size_bytes = 2048;
  EXPECT_FALSE(config.AppliesTo(2047));
  EXPECT_TRUE(config.AppliesTo(2048));
  EXPECT_TRUE(config.AppliesTo(1 << 20));
}

TEST(SoftPrefetchConfigTest, ZeroDistanceOrDegreeNeverApplies) {
  SoftPrefetchConfig config;
  config.distance_bytes = 0;
  EXPECT_FALSE(config.AppliesTo(1 << 20));
  config = SoftPrefetchConfig{};
  config.degree_bytes = 0;
  EXPECT_FALSE(config.AppliesTo(1 << 20));
}

TEST(SoftPrefetchConfigTest, DeployedDefaultMatchesPaperChoice) {
  // Fig. 15 sweeps settled on distance 512 B / degree 256 B.
  const SoftPrefetchConfig config = SoftPrefetchConfig::DeployedDefault();
  EXPECT_TRUE(config.enabled);
  EXPECT_EQ(config.distance_bytes, 512u);
  EXPECT_EQ(config.degree_bytes, 256u);
  EXPECT_GT(config.min_size_bytes, 0u);
}

TEST(SweepTest, DistanceSweepVariesOnlyDistance) {
  const auto points = DistanceSweep({32, 64, 128, 256, 512}, 256);
  ASSERT_EQ(points.size(), 5u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].config.degree_bytes, 256u);
    EXPECT_EQ(points[i].config.min_size_bytes, 0u);
    EXPECT_TRUE(points[i].config.enabled);
  }
  EXPECT_EQ(points[0].config.distance_bytes, 32u);
  EXPECT_EQ(points[4].config.distance_bytes, 512u);
  EXPECT_EQ(points[4].label, "distance=512");
}

TEST(SweepTest, DegreeSweepVariesOnlyDegree) {
  const auto points = DegreeSweep(512, {64, 128, 256, 512, 1024, 2048});
  ASSERT_EQ(points.size(), 6u);
  for (const auto& p : points) {
    EXPECT_EQ(p.config.distance_bytes, 512u);
  }
  EXPECT_EQ(points[5].config.degree_bytes, 2048u);
  EXPECT_EQ(points[0].label, "degree=64");
}

}  // namespace
}  // namespace limoncello
