#include "softpf/prefetch_site_registry.h"

#include <gtest/gtest.h>

#include "workloads/function_catalog.h"

namespace limoncello {
namespace {

TEST(PrefetchSiteRegistryTest, DeployedDefaultCoversAllTaxFunctions) {
  const PrefetchSiteRegistry registry =
      PrefetchSiteRegistry::DeployedDefault();
  const FunctionCatalog catalog = FunctionCatalog::FleetDefault();
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    const FunctionSpec& spec = catalog.spec(static_cast<FunctionId>(i));
    const auto config = registry.Lookup(spec.name);
    if (IsTaxCategory(spec.category)) {
      EXPECT_TRUE(config.has_value()) << spec.name;
    } else {
      EXPECT_FALSE(config.has_value()) << spec.name;
    }
  }
}

TEST(PrefetchSiteRegistryTest, LookupMissReturnsNullopt) {
  const PrefetchSiteRegistry registry =
      PrefetchSiteRegistry::DeployedDefault();
  EXPECT_FALSE(registry.Lookup("btree_lookup").has_value());
  EXPECT_FALSE(registry.Lookup("").has_value());
}

TEST(PrefetchSiteRegistryTest, RegisterOverridesExisting) {
  PrefetchSiteRegistry registry = PrefetchSiteRegistry::DeployedDefault();
  SoftPrefetchConfig custom;
  custom.distance_bytes = 4096;
  registry.Register("memcpy", custom);
  const auto config = registry.Lookup("memcpy");
  ASSERT_TRUE(config.has_value());
  EXPECT_EQ(config->distance_bytes, 4096u);
}

TEST(PrefetchSiteRegistryTest, UnregisterRemoves) {
  PrefetchSiteRegistry registry = PrefetchSiteRegistry::DeployedDefault();
  const std::size_t before = registry.size();
  registry.Unregister("memcpy");
  EXPECT_EQ(registry.size(), before - 1);
  EXPECT_FALSE(registry.Lookup("memcpy").has_value());
  registry.Unregister("memcpy");  // idempotent
  EXPECT_EQ(registry.size(), before - 1);
}

TEST(PrefetchSiteRegistryTest, DeployedConfigsAreEnabledAndGated) {
  const PrefetchSiteRegistry registry =
      PrefetchSiteRegistry::DeployedDefault();
  for (const char* name : {"memcpy", "snappy_compress", "crc32c",
                           "proto_serialize"}) {
    const auto config = registry.Lookup(name);
    ASSERT_TRUE(config.has_value()) << name;
    EXPECT_TRUE(config->enabled);
    EXPECT_GT(config->distance_bytes, 0u);
    EXPECT_GT(config->degree_bytes, 0u);
    // Deployed sites only prefetch large calls (paper §4.3).
    EXPECT_GT(config->min_size_bytes, 0u);
  }
}

}  // namespace
}  // namespace limoncello
