#include "softpf/runtime.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

constexpr std::uint64_t kBigCall = 1 << 20;

TEST(SoftPrefetchRuntimeTest, WhenHwOffPolicyFollowsHardwareState) {
  SoftPrefetchRuntime runtime;  // deployed registry, kWhenHwOff
  // Hardware prefetchers start enabled: software prefetching idle.
  EXPECT_TRUE(runtime.hw_prefetchers_enabled());
  EXPECT_FALSE(runtime.ConfigFor("memcpy", kBigCall).AppliesTo(kBigCall));

  // Daemon disables the hardware: software prefetching activates.
  runtime.SetHwPrefetchersEnabled(false);
  const SoftPrefetchConfig active = runtime.ConfigFor("memcpy", kBigCall);
  EXPECT_TRUE(active.AppliesTo(kBigCall));
  EXPECT_EQ(active.distance_bytes, 512u);

  // Hardware comes back: software prefetching stands down.
  runtime.SetHwPrefetchersEnabled(true);
  EXPECT_FALSE(runtime.ConfigFor("memcpy", kBigCall).AppliesTo(kBigCall));
}

TEST(SoftPrefetchRuntimeTest, AlwaysPolicyIgnoresHardwareState) {
  SoftPrefetchRuntime runtime(PrefetchSiteRegistry::DeployedDefault(),
                              SoftPrefetchActivation::kAlways);
  EXPECT_TRUE(runtime.ConfigFor("memcpy", kBigCall).AppliesTo(kBigCall));
  runtime.SetHwPrefetchersEnabled(false);
  EXPECT_TRUE(runtime.ConfigFor("memcpy", kBigCall).AppliesTo(kBigCall));
}

TEST(SoftPrefetchRuntimeTest, NeverPolicyIsAKillSwitch) {
  SoftPrefetchRuntime runtime(PrefetchSiteRegistry::DeployedDefault(),
                              SoftPrefetchActivation::kNever);
  runtime.SetHwPrefetchersEnabled(false);
  EXPECT_FALSE(runtime.ConfigFor("memcpy", kBigCall).AppliesTo(kBigCall));
}

TEST(SoftPrefetchRuntimeTest, UnregisteredSiteNeverPrefetches) {
  SoftPrefetchRuntime runtime(PrefetchSiteRegistry::DeployedDefault(),
                              SoftPrefetchActivation::kAlways);
  EXPECT_FALSE(
      runtime.ConfigFor("btree_lookup", kBigCall).AppliesTo(kBigCall));
}

TEST(SoftPrefetchRuntimeTest, SizeGateApplies) {
  SoftPrefetchRuntime runtime(PrefetchSiteRegistry::DeployedDefault(),
                              SoftPrefetchActivation::kAlways);
  // memcpy's deployed min size is 2 KiB.
  EXPECT_FALSE(runtime.ConfigFor("memcpy", 100).AppliesTo(100));
  EXPECT_TRUE(runtime.ConfigFor("memcpy", 4096).AppliesTo(4096));
}

TEST(SoftPrefetchRuntimeTest, ActivationCanBeChangedAtRuntime) {
  SoftPrefetchRuntime runtime;
  runtime.SetHwPrefetchersEnabled(false);
  ASSERT_TRUE(runtime.ConfigFor("memcpy", kBigCall).AppliesTo(kBigCall));
  runtime.SetActivation(SoftPrefetchActivation::kNever);
  EXPECT_FALSE(runtime.ConfigFor("memcpy", kBigCall).AppliesTo(kBigCall));
  EXPECT_EQ(runtime.activation(), SoftPrefetchActivation::kNever);
}

TEST(SoftPrefetchRuntimeTest, GlobalInstanceIsStable) {
  SoftPrefetchRuntime& a = SoftPrefetchRuntime::Global();
  SoftPrefetchRuntime& b = SoftPrefetchRuntime::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace limoncello
