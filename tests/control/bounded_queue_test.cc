// Bounded MPSC ingest queue: shed policy, backpressure, FIFO ordering,
// counter accounting, and producer races (run under TSAN in CI).
#include "control/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <vector>

#include "control/telemetry_batch.h"
#include "util/thread_pool.h"
#include "util/wire.h"

namespace limoncello {
namespace {

BoundedControlQueue::Options SmallQueue(int capacity,
                                        double watermark = 0.75) {
  BoundedControlQueue::Options options;
  options.capacity = capacity;
  options.backpressure_watermark = watermark;
  return options;
}

// A distinguishable fake frame: 8 bytes carrying a tag. The queue is
// transport, not parser — it never inspects the bytes.
std::vector<unsigned char> TaggedFrame(std::uint64_t tag) {
  std::vector<unsigned char> frame(8);
  StoreU64(frame.data(), tag);
  return frame;
}

std::uint64_t FrameTag(const ControlMessage& message) {
  EXPECT_EQ(message.kind, ControlMessage::Kind::kTelemetryFrame);
  EXPECT_EQ(message.frame_bytes, 8u);
  return LoadU64(message.frame.data());
}

PushResult PushTagged(BoundedControlQueue& queue, std::uint64_t tag,
                      std::uint64_t enqueue_time_ns = 0) {
  const std::vector<unsigned char> frame = TaggedFrame(tag);
  return queue.PushTelemetry(frame.data(), frame.size(), enqueue_time_ns);
}

TEST(BoundedControlQueueTest, FifoWithinTelemetry) {
  BoundedControlQueue queue(SmallQueue(8));
  for (std::uint64_t tag = 0; tag < 5; ++tag) {
    EXPECT_EQ(PushTagged(queue, tag), PushResult::kOk);
  }
  ControlMessage message;
  for (std::uint64_t tag = 0; tag < 5; ++tag) {
    ASSERT_TRUE(queue.Pop(&message));
    EXPECT_EQ(FrameTag(message), tag);
  }
  EXPECT_FALSE(queue.Pop(&message));
}

TEST(BoundedControlQueueTest, CommandsDrainBeforeTelemetry) {
  BoundedControlQueue queue(SmallQueue(8));
  ASSERT_EQ(PushTagged(queue, 1), PushResult::kOk);
  ControlCommand command;
  command.endpoint_id = 9;
  command.kind = CommandKind::kForceDisable;
  ASSERT_EQ(queue.PushCommand(command, 0), PushResult::kOk);
  ASSERT_EQ(PushTagged(queue, 2), PushResult::kOk);

  ControlMessage message;
  ASSERT_TRUE(queue.Pop(&message));
  EXPECT_EQ(message.kind, ControlMessage::Kind::kCommand);
  EXPECT_EQ(message.command.endpoint_id, 9u);
  EXPECT_EQ(message.command.kind, CommandKind::kForceDisable);
  ASSERT_TRUE(queue.Pop(&message));
  EXPECT_EQ(FrameTag(message), 1u);
  ASSERT_TRUE(queue.Pop(&message));
  EXPECT_EQ(FrameTag(message), 2u);
}

TEST(BoundedControlQueueTest, FullQueueShedsOldestTelemetryFirst) {
  BoundedControlQueue queue(SmallQueue(4, /*watermark=*/1.0));
  for (std::uint64_t tag = 0; tag < 3; ++tag) {
    ASSERT_EQ(PushTagged(queue, tag), PushResult::kOk);
  }
  // The push that fills the queue is accepted but signals backpressure.
  ASSERT_EQ(PushTagged(queue, 3), PushResult::kOkBackpressure);
  // Queue full: the push is accepted by dropping tag 0 (the oldest).
  EXPECT_EQ(PushTagged(queue, 4), PushResult::kShedOldest);
  EXPECT_EQ(PushTagged(queue, 5), PushResult::kShedOldest);
  EXPECT_EQ(queue.Depth(), 4);

  ControlMessage message;
  std::vector<std::uint64_t> popped;
  while (queue.Pop(&message)) popped.push_back(FrameTag(message));
  EXPECT_EQ(popped, (std::vector<std::uint64_t>{2, 3, 4, 5}));

  const BoundedControlQueue::Counters counters = queue.SnapshotCounters();
  EXPECT_EQ(counters.telemetry_pushed, 6u);
  EXPECT_EQ(counters.telemetry_shed, 2u);
  EXPECT_EQ(counters.telemetry_popped, 4u);
}

TEST(BoundedControlQueueTest, CommandShedsTelemetryButNeverLosesToIt) {
  BoundedControlQueue queue(SmallQueue(4, /*watermark=*/1.0));
  for (std::uint64_t tag = 0; tag < 3; ++tag) {
    ASSERT_EQ(PushTagged(queue, tag), PushResult::kOk);
  }
  ASSERT_EQ(PushTagged(queue, 3), PushResult::kOkBackpressure);
  // A command into a full queue evicts the oldest telemetry.
  ControlCommand command;
  command.kind = CommandKind::kForceEnable;
  EXPECT_EQ(queue.PushCommand(command, 0), PushResult::kShedOldest);
  EXPECT_EQ(queue.Depth(), 4);

  ControlMessage message;
  ASSERT_TRUE(queue.Pop(&message));
  EXPECT_EQ(message.kind, ControlMessage::Kind::kCommand);
  ASSERT_TRUE(queue.Pop(&message));
  EXPECT_EQ(FrameTag(message), 1u);  // tag 0 was shed
}

TEST(BoundedControlQueueTest, CommandRejectedOnlyWhenQueueIsAllCommands) {
  BoundedControlQueue queue(SmallQueue(2, /*watermark=*/1.0));
  ControlCommand command;
  EXPECT_EQ(queue.PushCommand(command, 0), PushResult::kOk);
  EXPECT_EQ(queue.PushCommand(command, 0), PushResult::kOkBackpressure);
  // No telemetry left to shed: the overflow is counted, not silent.
  EXPECT_EQ(queue.PushCommand(command, 0), PushResult::kRejected);
  EXPECT_EQ(queue.SnapshotCounters().command_overflows, 1u);
  // Telemetry into an all-command queue is likewise rejected.
  EXPECT_EQ(PushTagged(queue, 7), PushResult::kRejected);
  EXPECT_EQ(queue.SnapshotCounters().telemetry_rejected, 1u);
}

TEST(BoundedControlQueueTest, OversizedAndEmptyFramesRejected) {
  BoundedControlQueue queue(SmallQueue(4));
  std::vector<unsigned char> huge(kMaxTelemetryFrameBytes + 1);
  EXPECT_EQ(queue.PushTelemetry(huge.data(), huge.size(), 0),
            PushResult::kRejected);
  EXPECT_EQ(queue.PushTelemetry(huge.data(), 0, 0), PushResult::kRejected);
  EXPECT_EQ(queue.Depth(), 0);
  EXPECT_EQ(queue.SnapshotCounters().telemetry_rejected, 2u);
}

TEST(BoundedControlQueueTest, BackpressureSignalsAtWatermark) {
  // Capacity 8, watermark 0.5 -> pushes landing depth >= 4 signal.
  BoundedControlQueue queue(SmallQueue(8, 0.5));
  EXPECT_EQ(PushTagged(queue, 0), PushResult::kOk);
  EXPECT_EQ(PushTagged(queue, 1), PushResult::kOk);
  EXPECT_EQ(PushTagged(queue, 2), PushResult::kOk);
  EXPECT_FALSE(queue.UnderBackpressure());
  EXPECT_EQ(PushTagged(queue, 3), PushResult::kOkBackpressure);
  EXPECT_TRUE(queue.UnderBackpressure());

  // Popping below the watermark clears the signal.
  ControlMessage message;
  ASSERT_TRUE(queue.Pop(&message));
  EXPECT_FALSE(queue.UnderBackpressure());
  EXPECT_EQ(queue.SnapshotCounters().backpressure_signals, 1u);
}

TEST(BoundedControlQueueTest, EnqueueTimePlumbedThroughUntouched) {
  BoundedControlQueue queue(SmallQueue(4));
  ASSERT_EQ(PushTagged(queue, 1, /*enqueue_time_ns=*/987654321),
            PushResult::kOk);
  ControlMessage message;
  ASSERT_TRUE(queue.Pop(&message));
  EXPECT_EQ(message.enqueue_time_ns, 987654321u);
}

// ---------------------------------------------------------------------------
// Races: many producers, one consumer, live under TSAN. Every pushed
// message is either popped or accounted shed/rejected — no event lost,
// none double-counted.

TEST(BoundedControlQueueTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  BoundedControlQueue queue(SmallQueue(64));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> popped{0};
  std::vector<std::function<void()>> thunks;
  // Consumer drains until every producer finished and the queue is dry.
  thunks.push_back([&queue, &done, &popped] {
    ControlMessage message;
    for (;;) {
      if (queue.Pop(&message)) {
        popped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (done.load(std::memory_order_acquire)) break;
    }
    // done was set before the last push completed its accounting only if
    // the producer finished; one final sweep drains any stragglers.
    while (queue.Pop(&message)) {
      popped.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::atomic<int> finished{0};
  for (int p = 0; p < kProducers; ++p) {
    thunks.push_back([&queue, &done, &finished, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        PushTagged(queue, (static_cast<std::uint64_t>(p) << 32) | i);
        if ((i & 63) == 0) {
          ControlCommand command;
          command.endpoint_id = static_cast<std::uint32_t>(p);
          queue.PushCommand(command, 0);
        }
      }
      if (finished.fetch_add(1) + 1 == kProducers) {
        done.store(true, std::memory_order_release);
      }
    });
  }
  ParallelInvoke(std::move(thunks));

  const BoundedControlQueue::Counters counters = queue.SnapshotCounters();
  // Consumer-side pops observed == counter pops (popped counts both
  // telemetry and commands).
  EXPECT_EQ(counters.telemetry_popped.value() +
                counters.commands_popped.value(),
            popped.load());
  // Conservation: accepted == popped + shed (queue is empty).
  EXPECT_EQ(queue.Depth(), 0);
  EXPECT_EQ(counters.telemetry_pushed.value() +
                counters.commands_pushed.value(),
            popped.load() + counters.telemetry_shed.value());
  // All pushes were accounted one way or another.
  constexpr std::uint64_t kCommandsPerProducer = (kPerProducer + 63) / 64;
  EXPECT_EQ(counters.telemetry_pushed.value() +
                counters.telemetry_rejected.value(),
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(counters.commands_pushed.value() +
                counters.command_overflows.value(),
            kProducers * kCommandsPerProducer);
}

TEST(BoundedControlQueueTest, ConcurrentShedStormStaysBounded) {
  // Tiny queue, no consumer until the end: a storm must shed, never
  // grow, and the counters must balance exactly.
  BoundedControlQueue queue(SmallQueue(8, /*watermark=*/1.0));
  std::vector<std::function<void()>> thunks;
  for (int p = 0; p < 4; ++p) {
    thunks.push_back([&queue, p] {
      for (std::uint64_t i = 0; i < 2000; ++i) {
        PushTagged(queue, (static_cast<std::uint64_t>(p) << 32) | i);
      }
    });
  }
  ParallelInvoke(std::move(thunks));

  EXPECT_LE(queue.Depth(), 8);
  const BoundedControlQueue::Counters counters = queue.SnapshotCounters();
  EXPECT_EQ(counters.telemetry_pushed, 8000u);
  EXPECT_EQ(counters.telemetry_shed.value(),
            8000u - static_cast<std::uint64_t>(queue.Depth()));
}

}  // namespace
}  // namespace limoncello
