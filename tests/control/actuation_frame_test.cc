// LAC1 actuation frame codec: round trips, and the decode trust
// boundary against truncated, corrupt, foreign, and semantically
// invalid frames.
#include "control/actuation_frame.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "util/wire.h"

namespace limoncello {
namespace {

TEST(ActuationFrameTest, RoundTripsBothLevels) {
  for (const bool enable : {true, false}) {
    ActuationCommandFrame command;
    command.endpoint_id = 0xABCD1234u;
    command.enable = enable;
    unsigned char frame[kActuationFrameBytes];
    ASSERT_EQ(EncodeActuationCommand(command, frame),
              kActuationFrameBytes);

    ActuationCommandFrame decoded;
    ASSERT_EQ(DecodeActuationCommand(frame, sizeof(frame), &decoded),
              ActuationDecodeStatus::kOk);
    EXPECT_EQ(decoded.endpoint_id, command.endpoint_id);
    EXPECT_EQ(decoded.enable, enable);
  }
}

TEST(ActuationFrameTest, TruncationAtEveryLengthRejected) {
  ActuationCommandFrame command;
  command.endpoint_id = 7;
  unsigned char frame[kActuationFrameBytes];
  ASSERT_EQ(EncodeActuationCommand(command, frame), kActuationFrameBytes);
  ActuationCommandFrame out;
  for (std::size_t n = 0; n < kActuationFrameBytes; ++n) {
    EXPECT_NE(DecodeActuationCommand(frame, n, &out),
              ActuationDecodeStatus::kOk)
        << "accepted a " << n << "-byte prefix";
  }
}

TEST(ActuationFrameTest, EveryFlippedBitRejected) {
  // 24 bytes, 192 single-bit corruptions: each must fail magic,
  // version, length, CRC, or value validation — never decode as a
  // different command.
  ActuationCommandFrame command;
  command.endpoint_id = 3;
  command.enable = false;
  unsigned char frame[kActuationFrameBytes];
  ASSERT_EQ(EncodeActuationCommand(command, frame), kActuationFrameBytes);
  for (std::size_t byte = 0; byte < kActuationFrameBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      unsigned char mutated[kActuationFrameBytes];
      for (std::size_t i = 0; i < kActuationFrameBytes; ++i) {
        mutated[i] = frame[i];
      }
      mutated[byte] ^= static_cast<unsigned char>(1u << bit);
      ActuationCommandFrame out;
      EXPECT_NE(DecodeActuationCommand(mutated, sizeof(mutated), &out),
                ActuationDecodeStatus::kOk)
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(ActuationFrameTest, ForeignMagicAndBadValueNamed) {
  ActuationCommandFrame command;
  unsigned char frame[kActuationFrameBytes];
  ASSERT_EQ(EncodeActuationCommand(command, frame), kActuationFrameBytes);
  ActuationCommandFrame out;

  unsigned char foreign[kActuationFrameBytes];
  for (std::size_t i = 0; i < kActuationFrameBytes; ++i) {
    foreign[i] = frame[i];
  }
  StoreU32(foreign, 0x4C544231u);  // LTB1: telemetry magic on this leg
  EXPECT_EQ(DecodeActuationCommand(foreign, sizeof(foreign), &out),
            ActuationDecodeStatus::kBadMagic);

  EXPECT_STREQ(ActuationDecodeStatusName(ActuationDecodeStatus::kBadValue),
               "bad_value");
}

}  // namespace
}  // namespace limoncello
