// Chaos-hardened transport: the control plane must reconverge to the
// correct per-endpoint state after every fault the transport layer can
// throw at it — drop, reorder, duplicate, truncate, stale re-delivery —
// and after a daemon kill + warm restart in the middle of the storm.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "control/control_plane.h"
#include "control/endpoint_sim.h"
#include "control/telemetry_batch.h"
#include "faults/fault_plan.h"
#include "faults/transport_chaos.h"
#include "util/rng.h"

namespace limoncello {
namespace {

ControlPlaneOptions ChaosPlane(int endpoints, int samples_per_batch) {
  ControlPlaneOptions options;
  options.num_endpoints = endpoints;
  options.num_shards = 4;
  options.config.tick_period_ns = 1'000'000;
  options.config.sustain_duration_ns = 4'000'000;
  // Budget staleness for batch cadence: one whole missed batch is
  // recoverable, two consecutive losses trip the fail-safe.
  options.config.max_missed_samples = 2 * samples_per_batch;
  return options;
}

FaultSpec AggressiveTransport() {
  FaultSpec spec;
  spec.transport_drop_rate = 0.10;
  spec.transport_reorder_rate = 0.06;
  spec.transport_duplicate_rate = 0.05;
  spec.transport_truncate_rate = 0.06;
  spec.transport_stale_rate = 0.04;
  return spec;
}

// One harness: a fleet of simulated endpoints wired to a plane through
// per-endpoint ChaosTransports. Frames faulted per the plans.
struct ChaosHarness {
  static constexpr int kSamplesPerBatch = 4;

  int endpoints;
  std::vector<std::unique_ptr<SimulatedEndpoint>> fleet;
  std::unique_ptr<ControlPlane> plane;
  std::vector<FaultPlan> plans;
  std::vector<std::unique_ptr<ChaosTransport>> wires;
  int tick = 0;

  ChaosHarness(int num_endpoints, const FaultSpec& spec, int chaos_frames)
      : endpoints(num_endpoints) {
    const Rng root(42);
    for (int e = 0; e < endpoints; ++e) {
      SimulatedEndpoint::Options eo;
      eo.endpoint_id = static_cast<std::uint32_t>(e);
      eo.samples_per_batch = kSamplesPerBatch;
      eo.diurnal_period_ticks = 128;
      fleet.push_back(std::make_unique<SimulatedEndpoint>(
          eo, root.Fork(static_cast<std::uint64_t>(e))));
    }
    RebuildPlane();
    const Rng chaos_root(7);
    for (int e = 0; e < endpoints; ++e) {
      plans.push_back(FaultPlan::Generate(
          spec, chaos_frames,
          chaos_root.Fork(static_cast<std::uint64_t>(e))));
    }
    RebuildWires();
  }

  // Fresh plane against the same fleet (daemon kill: all queue contents
  // and in-memory state lost; hardware state survives in the fleet).
  void RebuildPlane() {
    plane = std::make_unique<ControlPlane>(
        ChaosPlane(endpoints, kSamplesPerBatch),
        [this](std::uint32_t id, bool enable) {
          return fleet[id]->Actuate(enable);
        });
  }

  void RebuildWires() {
    wires.clear();
    for (int e = 0; e < endpoints; ++e) {
      wires.push_back(std::make_unique<ChaosTransport>(
          &plans[static_cast<std::size_t>(e)],
          [this](const unsigned char* data, std::size_t size) {
            plane->IngestFrame(data, size, 0);
          }));
    }
  }

  void RunTicks(int n) {
    unsigned char frame[kMaxTelemetryFrameBytes];
    for (int i = 0; i < n; ++i, ++tick) {
      for (int e = 0; e < endpoints; ++e) {
        const std::size_t size =
            fleet[static_cast<std::size_t>(e)]->Tick(frame);
        if (size > 0) {
          wires[static_cast<std::size_t>(e)]->Send(frame, size);
        }
      }
      plane->DrainAll(0);
      plane->AdvanceTick();
    }
  }

  void FlushWires() {
    for (auto& wire : wires) wire->Flush();
  }

  // True when endpoint e's plane intent matches its hardware and the
  // endpoint is out of fail-safe.
  bool Converged(int e) {
    const auto id = static_cast<std::uint32_t>(e);
    return !plane->EndpointInFailsafe(id) &&
           plane->EndpointIntentEnabled(id) ==
               fleet[static_cast<std::size_t>(e)]->prefetchers_enabled();
  }
};

TEST(ControlChaosTest, PlaneSurvivesAggressiveTransportChaos) {
  // 512 chaos-window ticks -> 128 frames per endpoint, ~30% faulted.
  ChaosHarness harness(24, AggressiveTransport(), /*chaos_frames=*/128);
  harness.RunTicks(512);
  harness.FlushWires();

  // The storm must be real: every fault category exercised.
  ChaosTransport::Stats totals;
  for (const auto& wire : harness.wires) {
    const ChaosTransport::Stats& s = wire->stats();
    totals.sent += s.sent.value();
    totals.delivered += s.delivered.value();
    totals.dropped += s.dropped.value();
    totals.reordered += s.reordered.value();
    totals.duplicated += s.duplicated.value();
    totals.truncated += s.truncated.value();
    totals.staled += s.staled.value();
  }
  EXPECT_GT(totals.dropped, 0u);
  EXPECT_GT(totals.reordered, 0u);
  EXPECT_GT(totals.duplicated, 0u);
  EXPECT_GT(totals.truncated, 0u);
  EXPECT_GT(totals.staled, 0u);

  // The trust boundary held: truncated frames failed decode, duplicated
  // and stale frames were sequence-rejected; nothing crashed, and no
  // sample was double-applied (accepted <= sent * samples_per_batch).
  const ControlPlane::Stats stats = harness.plane->SnapshotStats();
  EXPECT_GT(stats.decode_failures, 0u);
  EXPECT_GT(stats.sequence_rejects, 0u);
  EXPECT_LE(stats.samples_accepted.value(),
            totals.sent.value() * ChaosHarness::kSamplesPerBatch);

  // Clean traffic resumes (plans exhausted): every endpoint reconverges
  // within a few batch periods.
  harness.RunTicks(8 * ChaosHarness::kSamplesPerBatch);
  for (int e = 0; e < harness.endpoints; ++e) {
    EXPECT_TRUE(harness.Converged(e)) << "endpoint " << e;
    EXPECT_FALSE(harness.plane->EndpointInFailsafe(
        static_cast<std::uint32_t>(e)))
        << e;
  }
}

TEST(ControlChaosTest, DroppedFramesTripFailsafeThenRecover) {
  // A transport that drops EVERY frame: endpoints go silent from the
  // plane's view, so every endpoint must land in the prefetchers-ON
  // fail-safe (the paper's safe default), then recover once frames flow.
  FaultSpec black_hole;
  black_hole.transport_drop_rate = 1.0;
  ChaosHarness harness(8, black_hole, /*chaos_frames=*/64);
  harness.RunTicks(64 * ChaosHarness::kSamplesPerBatch);
  for (int e = 0; e < harness.endpoints; ++e) {
    const auto id = static_cast<std::uint32_t>(e);
    EXPECT_TRUE(harness.plane->EndpointInFailsafe(id)) << e;
    EXPECT_TRUE(harness.plane->EndpointIntentEnabled(id)) << e;
    EXPECT_TRUE(harness.fleet[static_cast<std::size_t>(e)]
                    ->prefetchers_enabled())
        << e;
  }
  const std::uint64_t failsafes =
      harness.plane->SnapshotStats().stale_endpoint_failsafes.value();
  EXPECT_GE(failsafes, 8u);

  harness.RunTicks(4 * ChaosHarness::kSamplesPerBatch);
  for (int e = 0; e < harness.endpoints; ++e) {
    EXPECT_FALSE(harness.plane->EndpointInFailsafe(
        static_cast<std::uint32_t>(e)))
        << e;
  }
}

TEST(ControlChaosTest, DaemonKillWarmRestartMidStorm) {
  ChaosHarness harness(16, AggressiveTransport(), /*chaos_frames=*/64);
  harness.RunTicks(192);

  // Kill: export what a journal would hold, rebuild the plane cold,
  // adopt the records, rewire the (still chaotic) transport.
  const std::vector<EndpointPersistentState> journal =
      harness.plane->ExportAllEndpoints();
  const ControlPlane::Stats before = harness.plane->SnapshotStats();
  harness.RebuildPlane();
  EXPECT_EQ(harness.plane->RestoreEndpoints(journal), 16);
  harness.RebuildWires();

  // Restored sequence tracking keeps at-most-once across the restart:
  // replays of pre-kill frames are still rejected (the wires were
  // rebuilt, so plans restart at frame 0 — harmless; sequences only
  // ever grow on the endpoint side).
  for (int e = 0; e < 16; ++e) {
    const EndpointPersistentState exported =
        harness.plane->ExportEndpoint(static_cast<std::uint32_t>(e));
    EXPECT_EQ(exported.last_sequence, journal[e].last_sequence) << e;
    EXPECT_EQ(exported.have_sequence, journal[e].have_sequence) << e;
  }

  // Ride out the rebuilt wires' full fault schedule (they replay the
  // plan from frame 0) plus a clean tail; all endpoints reconverge.
  harness.RunTicks(64 * ChaosHarness::kSamplesPerBatch);
  harness.FlushWires();
  harness.RunTicks(8 * ChaosHarness::kSamplesPerBatch);
  for (int e = 0; e < harness.endpoints; ++e) {
    EXPECT_TRUE(harness.Converged(e)) << "endpoint " << e;
  }
  // Fresh plane, fresh counters: warm restores visible, and progress
  // continued (samples accepted after the restart).
  const ControlPlane::Stats after = harness.plane->SnapshotStats();
  EXPECT_EQ(after.warm_restores, 16u);
  EXPECT_GT(after.samples_accepted, 0u);
  (void)before;
}

TEST(ControlChaosTest, ChaosRunsAreDeterministic) {
  auto run = [] {
    ChaosHarness harness(8, AggressiveTransport(), /*chaos_frames=*/64);
    harness.RunTicks(300);
    struct Outcome {
      ControlPlane::Stats stats;
      std::vector<EndpointPersistentState> states;
    };
    return Outcome{harness.plane->SnapshotStats(),
                   harness.plane->ExportAllEndpoints()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_TRUE(a.stats == b.stats);
  EXPECT_TRUE(a.states == b.states);
}

}  // namespace
}  // namespace limoncello
