// The wire format is a trust boundary: decode must round-trip every
// valid batch and reject every mutated frame without crashing.
#include "control/telemetry_batch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/rng.h"
#include "util/wire.h"

namespace limoncello {
namespace {

TelemetryBatch MakeBatch(std::uint32_t num_samples, std::uint64_t seed = 7) {
  TelemetryBatch batch;
  batch.endpoint_id = 42;
  batch.sequence = 1234567;
  batch.base_tick = 99;
  batch.num_samples = num_samples;
  Rng rng(seed);
  for (std::uint32_t i = 0; i < num_samples; ++i) {
    batch.utilization[i] = rng.NextDouble();
  }
  return batch;
}

TEST(TelemetryBatchTest, RoundTripsEverySampleCount) {
  unsigned char frame[kMaxTelemetryFrameBytes];
  for (std::uint32_t n = 1; n <= TelemetryBatch::kMaxSamples; ++n) {
    const TelemetryBatch batch = MakeBatch(n, /*seed=*/n);
    const std::size_t size = EncodeTelemetryBatch(batch, frame);
    ASSERT_EQ(size, TelemetryFrameBytes(n));

    TelemetryBatch decoded;
    ASSERT_EQ(DecodeTelemetryBatch(frame, size, &decoded),
              BatchDecodeStatus::kOk);
    EXPECT_EQ(decoded.endpoint_id, batch.endpoint_id);
    EXPECT_EQ(decoded.sequence, batch.sequence);
    EXPECT_EQ(decoded.base_tick, batch.base_tick);
    ASSERT_EQ(decoded.num_samples, n);
    for (std::uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(decoded.utilization[i], batch.utilization[i]) << i;
    }
  }
}

TEST(TelemetryBatchTest, EncodeRejectsUnencodableBatches) {
  unsigned char frame[kMaxTelemetryFrameBytes];
  TelemetryBatch batch = MakeBatch(1);
  batch.num_samples = 0;
  EXPECT_EQ(EncodeTelemetryBatch(batch, frame), 0u);
  batch.num_samples = TelemetryBatch::kMaxSamples + 1;
  EXPECT_EQ(EncodeTelemetryBatch(batch, frame), 0u);
}

TEST(TelemetryBatchTest, BoundarySampleValuesSurvive) {
  unsigned char frame[kMaxTelemetryFrameBytes];
  TelemetryBatch batch = MakeBatch(3);
  batch.utilization[0] = 0.0;
  batch.utilization[1] = kMaxPlausibleBatchUtilization;
  batch.utilization[2] = std::nextafter(kMaxPlausibleBatchUtilization, 0.0);
  const std::size_t size = EncodeTelemetryBatch(batch, frame);
  TelemetryBatch decoded;
  ASSERT_EQ(DecodeTelemetryBatch(frame, size, &decoded),
            BatchDecodeStatus::kOk);
  EXPECT_EQ(decoded.utilization[1], kMaxPlausibleBatchUtilization);
}

// ---------------------------------------------------------------------------
// Fuzz-style mutation table: each row corrupts one aspect of an
// otherwise valid frame and names the exact status decode must return.

struct MutationCase {
  std::string name;
  std::function<void(std::vector<unsigned char>&)> mutate;
  BatchDecodeStatus want;
};

std::vector<unsigned char> ValidFrame(std::uint32_t num_samples = 8) {
  std::vector<unsigned char> frame(kMaxTelemetryFrameBytes);
  const std::size_t size =
      EncodeTelemetryBatch(MakeBatch(num_samples), frame.data());
  frame.resize(size);
  return frame;
}

TEST(TelemetryBatchTest, MutatedFramesRejectedWithNamedStatus) {
  const std::vector<MutationCase> cases = {
      {"empty", [](std::vector<unsigned char>& f) { f.clear(); },
       BatchDecodeStatus::kTruncated},
      {"header_only",
       [](std::vector<unsigned char>& f) {
         f.resize(kTelemetryBatchHeaderBytes);
       },
       BatchDecodeStatus::kTruncated},
      {"cut_mid_payload",
       [](std::vector<unsigned char>& f) { f.resize(f.size() / 2); },
       BatchDecodeStatus::kTruncated},
      {"cut_one_byte",
       [](std::vector<unsigned char>& f) { f.resize(f.size() - 1); },
       BatchDecodeStatus::kTruncated},
      {"wrong_magic",
       [](std::vector<unsigned char>& f) { StoreU32(f.data(), 0xDEADBEEF); },
       BatchDecodeStatus::kBadMagic},
      {"zeroed_magic",
       [](std::vector<unsigned char>& f) { StoreU32(f.data(), 0); },
       BatchDecodeStatus::kBadMagic},
      {"future_version",
       [](std::vector<unsigned char>& f) {
         StoreU32(f.data() + 4, kTelemetryBatchVersion + 1);
       },
       BatchDecodeStatus::kBadVersion},
      {"size_field_grown",
       [](std::vector<unsigned char>& f) {
         StoreU32(f.data() + 8, LoadU32(f.data() + 8) + 8);
       },
       BatchDecodeStatus::kTruncated},
      {"size_field_shrunk_within_range",
       // Still a plausible payload size, so the CRC (computed over the
       // claimed range) is what catches the inconsistency.
       [](std::vector<unsigned char>& f) {
         StoreU32(f.data() + 8, LoadU32(f.data() + 8) - 8);
       },
       BatchDecodeStatus::kBadCrc},
      {"size_field_below_minimum",
       [](std::vector<unsigned char>& f) {
         StoreU32(f.data() + 8, kTelemetryBatchFixedPayloadBytes);
       },
       BatchDecodeStatus::kBadLength},
      {"size_field_above_maximum",
       [](std::vector<unsigned char>& f) {
         StoreU32(f.data() + 8,
                  kTelemetryBatchFixedPayloadBytes +
                      8 * (TelemetryBatch::kMaxSamples + 1));
       },
       BatchDecodeStatus::kBadLength},
      {"payload_bit_flip",
       [](std::vector<unsigned char>& f) {
         f[kTelemetryBatchHeaderBytes + 2] ^= 0x10;
       },
       BatchDecodeStatus::kBadCrc},
      {"crc_bit_flip",
       [](std::vector<unsigned char>& f) { f[f.size() - 1] ^= 0x01; },
       BatchDecodeStatus::kBadCrc},
      {"trailing_garbage_beyond_claimed_frame_ignored",
       // `size` is an upper bound: the frame is self-delimiting, so
       // extra bytes after the CRC do not invalidate it.
       [](std::vector<unsigned char>& f) { f.push_back(0xAB); },
       BatchDecodeStatus::kOk},
  };

  for (const MutationCase& c : cases) {
    std::vector<unsigned char> frame = ValidFrame();
    c.mutate(frame);
    TelemetryBatch out;
    EXPECT_EQ(DecodeTelemetryBatch(frame.data(), frame.size(), &out), c.want)
        << c.name;
  }
}

// Sample-count and sample-value corruption must be re-CRC'd to reach
// their dedicated checks (otherwise kBadCrc masks them) — that is the
// point: a *consistent* frame carrying garbage is still rejected.
std::vector<unsigned char> ReframedMutation(
    std::uint32_t num_samples,
    const std::function<void(TelemetryBatch&)>& mutate) {
  TelemetryBatch batch = MakeBatch(num_samples);
  mutate(batch);
  // Encode by hand so invalid batches (which EncodeTelemetryBatch
  // refuses) still produce a well-framed byte stream.
  const std::uint32_t claimed = batch.num_samples;
  // Keep the size field inside its valid range (at least one sample
  // slot) so a garbage count reaches the dedicated sample-count check
  // instead of the earlier length-range check.
  const std::uint32_t slots =
      std::min(std::max(claimed, 1u), TelemetryBatch::kMaxSamples);
  const std::size_t payload =
      kTelemetryBatchFixedPayloadBytes + 8 * static_cast<std::size_t>(slots);
  std::vector<unsigned char> f(kTelemetryBatchHeaderBytes + payload + 4);
  StoreU32(f.data(), kTelemetryBatchMagic);
  StoreU32(f.data() + 4, kTelemetryBatchVersion);
  StoreU32(f.data() + 8, static_cast<std::uint32_t>(payload));
  unsigned char* p = f.data() + kTelemetryBatchHeaderBytes;
  StoreU32(p, batch.endpoint_id);
  StoreU64(p + 4, batch.sequence);
  StoreU32(p + 12, batch.base_tick);
  StoreU32(p + 16, claimed);
  for (std::uint32_t i = 0; i < slots; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &batch.utilization[i], sizeof(bits));
    StoreU64(p + 20 + 8 * i, bits);
  }
  StoreU32(f.data() + f.size() - 4,
           Crc32(f.data() + 4, 8 + payload));
  return f;
}

TEST(TelemetryBatchTest, ConsistentFramesWithGarbageContentRejected) {
  struct Row {
    std::string name;
    std::function<void(TelemetryBatch&)> mutate;
    BatchDecodeStatus want;
  };
  const std::vector<Row> rows = {
      {"zero_samples",
       [](TelemetryBatch& b) { b.num_samples = 0; },
       BatchDecodeStatus::kBadSampleCount},
      {"too_many_samples",
       [](TelemetryBatch& b) {
         b.num_samples = TelemetryBatch::kMaxSamples + 1;
       },
       BatchDecodeStatus::kBadSampleCount},
      {"nan_sample",
       [](TelemetryBatch& b) {
         b.utilization[3] = std::numeric_limits<double>::quiet_NaN();
       },
       BatchDecodeStatus::kInvalidSample},
      {"inf_sample",
       [](TelemetryBatch& b) {
         b.utilization[0] = std::numeric_limits<double>::infinity();
       },
       BatchDecodeStatus::kInvalidSample},
      {"negative_sample",
       [](TelemetryBatch& b) { b.utilization[7] = -0.25; },
       BatchDecodeStatus::kInvalidSample},
      {"implausible_sample",
       [](TelemetryBatch& b) {
         b.utilization[5] = kMaxPlausibleBatchUtilization * 2;
       },
       BatchDecodeStatus::kInvalidSample},
  };
  for (const Row& row : rows) {
    const std::vector<unsigned char> frame = ReframedMutation(8, row.mutate);
    TelemetryBatch out;
    EXPECT_EQ(DecodeTelemetryBatch(frame.data(), frame.size(), &out),
              row.want)
        << row.name;
  }
}

// Random byte-level fuzz: arbitrary mutations of valid frames (and pure
// noise) must never crash or be accepted with a corrupted payload that
// passes CRC by luck (2^-32 per trial; 0 expected over 10k trials).
TEST(TelemetryBatchTest, RandomMutationsNeverCrashDecode) {
  Rng rng(2026);
  const std::vector<unsigned char> base = ValidFrame(16);
  int accepted = 0;
  for (int trial = 0; trial < 10000; ++trial) {
    std::vector<unsigned char> frame = base;
    const int flips = 1 + static_cast<int>(rng.NextU64() % 8);
    for (int i = 0; i < flips; ++i) {
      frame[rng.NextU64() % frame.size()] ^=
          static_cast<unsigned char>(1u << (rng.NextU64() % 8));
    }
    if (rng.NextBernoulli(0.25)) {
      frame.resize(rng.NextU64() % (frame.size() + 1));
    }
    TelemetryBatch out;
    if (DecodeTelemetryBatch(frame.data(), frame.size(), &out) ==
        BatchDecodeStatus::kOk) {
      // Only mutations that happen to leave the covered bytes intact may
      // be accepted (e.g. the resize landed exactly at full size and all
      // flips hit... nothing — impossible with >= 1 flip unless the flip
      // hit the unused tail). Count them; they must be vanishingly rare.
      ++accepted;
    }
  }
  EXPECT_LE(accepted, 1);
}

TEST(TelemetryBatchTest, StatusNamesAreStable) {
  EXPECT_STREQ(BatchDecodeStatusName(BatchDecodeStatus::kOk), "ok");
  EXPECT_STREQ(BatchDecodeStatusName(BatchDecodeStatus::kBadCrc), "bad_crc");
}

}  // namespace
}  // namespace limoncello
