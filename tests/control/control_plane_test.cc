// ControlPlane semantics: routing, sequence rejection, staleness
// fail-safe, actuation retry, force commands, warm restart, and the
// bit-identical-across-thread-counts drain contract.
#include "control/control_plane.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "control/telemetry_batch.h"
#include "core/hysteresis_controller.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace limoncello {
namespace {

// Tick-scaled config: one sample == one plane tick == 1 ms; two sustained
// samples beyond a threshold toggle the FSM. Keeps tests short.
ControllerConfig FastConfig() {
  ControllerConfig config;
  config.tick_period_ns = 1'000'000;
  config.sustain_duration_ns = 2'000'000;
  config.max_missed_samples = 5;
  config.retry_backoff_cap_ticks = 8;
  return config;
}

ControlPlaneOptions SmallPlane(int endpoints, int shards = 4) {
  ControlPlaneOptions options;
  options.num_endpoints = endpoints;
  options.num_shards = shards;
  options.config = FastConfig();
  return options;
}

// Records every actuation; programmable to fail per endpoint.
struct FakeFleet {
  struct Call {
    std::uint32_t endpoint_id;
    bool enable;
  };
  std::vector<Call> calls;
  std::vector<bool> enabled;
  std::vector<bool> faulty;

  explicit FakeFleet(int endpoints)
      : enabled(static_cast<std::size_t>(endpoints), true),
        faulty(static_cast<std::size_t>(endpoints), false) {}

  ControlPlane::ActuateFn Hook() {
    return [this](std::uint32_t id, bool enable) {
      calls.push_back({id, enable});
      if (faulty[id]) return false;
      enabled[id] = enable;
      return true;
    };
  }
};

// Sends one batch of identical samples and drains it.
PushResult SendBatch(ControlPlane& plane, std::uint32_t endpoint_id,
                     std::uint64_t sequence, double utilization,
                     std::uint32_t num_samples = 1,
                     std::uint64_t enqueue_ns = 0) {
  TelemetryBatch batch;
  batch.endpoint_id = endpoint_id;
  batch.sequence = sequence;
  batch.num_samples = num_samples;
  for (std::uint32_t i = 0; i < num_samples; ++i) {
    batch.utilization[i] = utilization;
  }
  unsigned char frame[kMaxTelemetryFrameBytes];
  const std::size_t size = EncodeTelemetryBatch(batch, frame);
  return plane.IngestFrame(frame, size, enqueue_ns);
}

TEST(ControlPlaneTest, HighUtilizationDisablesLowReenables) {
  FakeFleet fleet(1);
  ControlPlane plane(SmallPlane(1), fleet.Hook());
  ASSERT_TRUE(plane.EndpointIntentEnabled(0));

  // sustain = 2 ticks: 3 high samples arm + fire the disable.
  SendBatch(plane, 0, 1, 0.95, 3);
  plane.DrainAll(0);
  EXPECT_FALSE(plane.EndpointIntentEnabled(0));
  EXPECT_FALSE(fleet.enabled[0]);
  EXPECT_EQ(plane.SnapshotStats().disables, 1u);

  SendBatch(plane, 0, 2, 0.30, 3);
  plane.DrainAll(0);
  EXPECT_TRUE(plane.EndpointIntentEnabled(0));
  EXPECT_TRUE(fleet.enabled[0]);
  EXPECT_EQ(plane.SnapshotStats().enables, 1u);
}

TEST(ControlPlaneTest, EndpointsAreIndependent) {
  FakeFleet fleet(16);
  ControlPlane plane(SmallPlane(16), fleet.Hook());
  // Only endpoint 5 sees high utilization.
  for (std::uint32_t e = 0; e < 16; ++e) {
    SendBatch(plane, e, 1, e == 5 ? 0.95 : 0.40, 3);
  }
  plane.DrainAll(0);
  for (std::uint32_t e = 0; e < 16; ++e) {
    EXPECT_EQ(plane.EndpointIntentEnabled(e), e != 5) << e;
  }
}

TEST(ControlPlaneTest, SequenceRegressionsRejected) {
  FakeFleet fleet(1);
  ControlPlane plane(SmallPlane(1), fleet.Hook());
  EXPECT_EQ(SendBatch(plane, 0, 5, 0.5), PushResult::kOk);
  plane.DrainAll(0);
  ASSERT_EQ(plane.SnapshotStats().samples_accepted, 1u);

  // Duplicate (same sequence) and stale (lower sequence) replays are
  // dropped at the plane, not double-applied.
  SendBatch(plane, 0, 5, 0.5);
  SendBatch(plane, 0, 3, 0.5);
  plane.DrainAll(0);
  EXPECT_EQ(plane.SnapshotStats().samples_accepted, 1u);
  EXPECT_EQ(plane.SnapshotStats().sequence_rejects, 2u);

  // Progress resumes on the next fresh sequence; gaps are fine (frames
  // may legitimately be lost in transport).
  SendBatch(plane, 0, 9, 0.5);
  plane.DrainAll(0);
  EXPECT_EQ(plane.SnapshotStats().samples_accepted, 2u);
}

TEST(ControlPlaneTest, GarbageAndForeignFramesCounted) {
  FakeFleet fleet(2);
  ControlPlane plane(SmallPlane(2), fleet.Hook());
  unsigned char junk[32] = {0xDE, 0xAD};
  plane.IngestFrame(junk, sizeof(junk), 0);
  // Valid frame for an endpoint this plane does not manage.
  SendBatch(plane, 77, 1, 0.5);
  plane.DrainAll(0);
  const ControlPlane::Stats stats = plane.SnapshotStats();
  EXPECT_EQ(stats.decode_failures, 1u);
  EXPECT_EQ(stats.unknown_endpoints, 1u);
  EXPECT_EQ(stats.samples_accepted, 0u);
}

TEST(ControlPlaneTest, StaleEndpointFailsSafeToPrefetchersOn) {
  FakeFleet fleet(1);
  ControlPlane plane(SmallPlane(1), fleet.Hook());
  // Drive the endpoint into the disabled state...
  SendBatch(plane, 0, 1, 0.95, 3);
  plane.DrainAll(0);
  plane.AdvanceTick();
  ASSERT_FALSE(plane.EndpointIntentEnabled(0));

  // ...then go silent past max_missed_samples ticks: the fail-safe
  // forces prefetchers back ON and resets the FSM.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(plane.EndpointInFailsafe(0)) << i;
    plane.AdvanceTick();
  }
  EXPECT_TRUE(plane.EndpointInFailsafe(0));
  EXPECT_TRUE(plane.EndpointIntentEnabled(0));
  EXPECT_TRUE(fleet.enabled[0]);
  EXPECT_EQ(plane.EndpointControllerState(0),
            ControllerState::kEnabledSteady);
  EXPECT_EQ(plane.SnapshotStats().stale_endpoint_failsafes, 1u);

  // Telemetry resuming clears the fail-safe.
  SendBatch(plane, 0, 2, 0.40);
  plane.DrainAll(0);
  EXPECT_FALSE(plane.EndpointInFailsafe(0));
}

TEST(ControlPlaneTest, StalenessFailsafeForgetsSequenceWatermark) {
  // A restarted exporter process numbers its frames from 1 again. Until
  // the staleness window expires, those frames look like replays of
  // long-consumed sequences and are rejected; the fail-safe must reset
  // the watermark along with the FSM or the endpoint is rejected
  // forever — reconvergence would be unbounded.
  FakeFleet fleet(1);
  ControlPlane plane(SmallPlane(1), fleet.Hook());
  SendBatch(plane, 0, 900, 0.5);
  plane.DrainAll(0);
  ASSERT_EQ(plane.SnapshotStats().samples_accepted, 1u);

  // The exporter dies and restarts: its fresh stream is rejected while
  // the plane still holds the old watermark...
  SendBatch(plane, 0, 1, 0.5);
  plane.DrainAll(0);
  EXPECT_EQ(plane.SnapshotStats().sequence_rejects, 1u);
  EXPECT_EQ(plane.SnapshotStats().samples_accepted, 1u);

  // ...and rejected frames do not count as liveness, so the staleness
  // sweep fires within max_missed_samples ticks and forgets the
  // watermark.
  for (int i = 0; i < 6; ++i) {
    SendBatch(plane, 0, static_cast<std::uint64_t>(2 + i), 0.5);
    plane.DrainAll(0);
    plane.AdvanceTick();
  }
  EXPECT_EQ(plane.SnapshotStats().stale_endpoint_failsafes, 1u);

  // The restarted stream is now adopted: its next frame is accepted and
  // clears the fail-safe. Bounded reconvergence.
  SendBatch(plane, 0, 10, 0.5);
  plane.DrainAll(0);
  EXPECT_FALSE(plane.EndpointInFailsafe(0));
  EXPECT_GE(plane.SnapshotStats().samples_accepted, 2u);
}

TEST(ControlPlaneTest, ActuationFailureRetriesWithCappedBackoff) {
  FakeFleet fleet(1);
  fleet.faulty[0] = true;
  ControlPlane plane(SmallPlane(1), fleet.Hook());
  SendBatch(plane, 0, 1, 0.95, 3);
  plane.DrainAll(0);
  // Intent committed, hardware unchanged.
  EXPECT_FALSE(plane.EndpointIntentEnabled(0));
  EXPECT_TRUE(fleet.enabled[0]);
  ASSERT_EQ(plane.SnapshotStats().actuation_failures, 1u);
  const std::size_t calls_after_first = fleet.calls.size();

  // Backoff doubles per failed retry: waits of 1, 2, 4... ticks. Feed
  // fresh telemetry each tick so the staleness fail-safe stays out of
  // the picture (utilization mid-band: no new FSM action).
  std::uint64_t sequence = 2;
  auto run_ticks = [&](int n) {
    for (int i = 0; i < n; ++i) {
      SendBatch(plane, 0, sequence++, 0.70);
      plane.DrainAll(0);
      plane.AdvanceTick();
    }
  };
  run_ticks(1);  // wait 1 -> retry #1 fires (fails)
  EXPECT_EQ(fleet.calls.size(), calls_after_first + 1);
  run_ticks(2);  // wait 2 -> retry #2
  EXPECT_EQ(fleet.calls.size(), calls_after_first + 2);
  run_ticks(4);  // wait 4 -> retry #3
  EXPECT_EQ(fleet.calls.size(), calls_after_first + 3);

  // Repair the actuator: the next retry lands the disable.
  fleet.faulty[0] = false;
  run_ticks(8);
  EXPECT_FALSE(fleet.enabled[0]);
  EXPECT_GE(plane.SnapshotStats().retry_backoff_skips, 1u);
}

TEST(ControlPlaneTest, ForceCommandsPinAndRelease) {
  FakeFleet fleet(1);
  ControlPlane plane(SmallPlane(1), fleet.Hook());
  ControlCommand force;
  force.endpoint_id = 0;
  force.kind = CommandKind::kForceDisable;
  plane.SubmitCommand(force, 0);
  plane.DrainAll(0);
  EXPECT_TRUE(plane.EndpointForced(0));
  EXPECT_FALSE(plane.EndpointIntentEnabled(0));
  EXPECT_FALSE(fleet.enabled[0]);

  // Telemetry keeps ticking the FSM but cannot actuate a pinned
  // endpoint: low utilization would re-enable, the pin holds.
  SendBatch(plane, 0, 1, 0.30, 3);
  plane.DrainAll(0);
  EXPECT_FALSE(fleet.enabled[0]);
  EXPECT_FALSE(plane.EndpointIntentEnabled(0));

  // A pinned endpoint is exempt from the staleness fail-safe: the
  // operator's decision is not starved of data, it overrides data.
  for (int i = 0; i < 10; ++i) plane.AdvanceTick();
  EXPECT_FALSE(plane.EndpointInFailsafe(0));
  EXPECT_FALSE(fleet.enabled[0]);

  // kClearForce hands control back to the FSM (which, having seen low
  // utilization, wants prefetchers on).
  force.kind = CommandKind::kClearForce;
  plane.SubmitCommand(force, 0);
  plane.DrainAll(0);
  EXPECT_FALSE(plane.EndpointForced(0));
  EXPECT_TRUE(plane.EndpointIntentEnabled(0));
  EXPECT_TRUE(fleet.enabled[0]);
  EXPECT_EQ(plane.SnapshotStats().commands_applied, 2u);
}

TEST(ControlPlaneTest, ShardingIsDeterministicAndInRange) {
  ControlPlaneOptions options = SmallPlane(1000, 8);
  FakeFleet fleet(1000);
  ControlPlane plane(options, fleet.Hook());
  ControlPlane plane2(options, fleet.Hook());
  std::vector<int> per_shard(8, 0);
  for (std::uint32_t e = 0; e < 1000; ++e) {
    const int shard = plane.ShardOf(e);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    EXPECT_EQ(shard, plane2.ShardOf(e));
    ++per_shard[static_cast<std::size_t>(shard)];
  }
  // The multiplicative hash spreads endpoints roughly evenly: no shard
  // is empty or holds more than a third of the fleet.
  for (int shard = 0; shard < 8; ++shard) {
    EXPECT_GT(per_shard[static_cast<std::size_t>(shard)], 0) << shard;
    EXPECT_LT(per_shard[static_cast<std::size_t>(shard)], 334) << shard;
  }
}

TEST(ControlPlaneTest, DrainsAreBitIdenticalAcrossThreadCounts) {
  // Same frame stream, serial canonical pushes; drain with 1 vs 4
  // threads; every counter and every endpoint's final state must match.
  auto run = [](int threads) {
    FakeFleet fleet(64);
    ControlPlane plane(SmallPlane(64, 8), fleet.Hook());
    ThreadPool pool(threads);
    std::uint64_t sequence = 1;
    for (int round = 0; round < 50; ++round) {
      for (std::uint32_t e = 0; e < 64; ++e) {
        const double util = ((round + e) % 7 < 3) ? 0.95 : 0.30;
        SendBatch(plane, e, sequence, util, 2);
      }
      ++sequence;
      pool.ParallelFor(0, plane.num_shards(), [&plane](std::int64_t shard) {
        plane.DrainShard(static_cast<int>(shard), 0);
      });
      plane.AdvanceTick();
    }
    struct Outcome {
      ControlPlane::Stats stats;
      std::vector<EndpointPersistentState> states;
    };
    return Outcome{plane.SnapshotStats(), plane.ExportAllEndpoints()};
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_TRUE(serial.stats == parallel.stats);
  EXPECT_TRUE(serial.states == parallel.states);
  EXPECT_GT(serial.stats.disables.value(), 0u);
}

TEST(ControlPlaneTest, WarmRestartRestoresAndReassertsIntent) {
  FakeFleet fleet(8);
  std::vector<EndpointPersistentState> journal;
  {
    ControlPlane plane(SmallPlane(8), fleet.Hook());
    SendBatch(plane, 3, 1, 0.95, 3);  // endpoint 3 -> disabled
    ControlCommand force;
    force.endpoint_id = 6;
    force.kind = CommandKind::kForceDisable;
    plane.SubmitCommand(force, 0);
    plane.DrainAll(0);
    journal = plane.ExportAllEndpoints();
  }
  ASSERT_EQ(journal.size(), 8u);
  EXPECT_FALSE(journal[3].intent_enabled);
  EXPECT_TRUE(journal[6].force_active);

  // Hardware rebooted to BIOS default (all on) while the plane was down.
  fleet.enabled.assign(8, true);
  fleet.calls.clear();
  ControlPlane plane(SmallPlane(8), fleet.Hook());
  EXPECT_EQ(plane.RestoreEndpoints(journal), 8);
  // The journal's intent wins over the hardware: 3 and 6 re-disabled.
  EXPECT_FALSE(fleet.enabled[3]);
  EXPECT_FALSE(fleet.enabled[6]);
  EXPECT_TRUE(fleet.enabled[0]);
  EXPECT_FALSE(plane.EndpointIntentEnabled(3));
  EXPECT_TRUE(plane.EndpointForced(6));
  EXPECT_EQ(plane.SnapshotStats().warm_restores, 8u);
  // Sequence tracking survives: the pre-crash sequence is still rejected.
  SendBatch(plane, 3, 1, 0.40);
  plane.DrainAll(0);
  EXPECT_EQ(plane.SnapshotStats().sequence_rejects, 1u);
}

TEST(ControlPlaneTest, CorruptJournalRecordsColdStartTheirEndpoint) {
  FakeFleet fleet(4);
  ControlPlane plane(SmallPlane(4), fleet.Hook());
  std::vector<EndpointPersistentState> journal(3);
  journal[0].endpoint_id = 1;
  journal[0].intent_enabled = false;
  journal[1].endpoint_id = 99;  // out of range
  journal[2].endpoint_id = 2;   // inconsistent force pin
  journal[2].force_active = true;
  journal[2].force_enabled = true;
  journal[2].intent_enabled = false;
  EXPECT_EQ(plane.RestoreEndpoints(journal), 1);
  EXPECT_FALSE(plane.EndpointIntentEnabled(1));
  EXPECT_TRUE(plane.EndpointIntentEnabled(2));   // cold start
  EXPECT_FALSE(plane.EndpointForced(2));
}

TEST(ControlPlaneTest, CollectDirtyEndpointsTracksCommittedChanges) {
  FakeFleet fleet(8);
  ControlPlane plane(SmallPlane(8), fleet.Hook());
  std::vector<EndpointPersistentState> dirty;
  plane.CollectDirtyEndpoints(&dirty);
  EXPECT_TRUE(dirty.empty());

  SendBatch(plane, 2, 1, 0.95, 3);  // toggles endpoint 2
  SendBatch(plane, 5, 1, 0.40, 3);  // no toggle, but sequence moved
  plane.DrainAll(0);
  plane.CollectDirtyEndpoints(&dirty);
  ASSERT_FALSE(dirty.empty());
  bool saw2 = false;
  for (const EndpointPersistentState& s : dirty) {
    if (s.endpoint_id == 2) {
      saw2 = true;
      EXPECT_FALSE(s.intent_enabled);
    }
  }
  EXPECT_TRUE(saw2);

  // Marks are cleared by collection.
  dirty.clear();
  plane.CollectDirtyEndpoints(&dirty);
  EXPECT_TRUE(dirty.empty());
}

// The single-endpoint plane must make exactly the decisions a bare
// HysteresisController makes on the same sample stream — the
// contract behind `limoncellod --endpoints=1` staying bit-identical
// to the pre-control-plane daemon path.
TEST(ControlPlaneTest, SingleEndpointMatchesBareController) {
  const ControllerConfig config = FastConfig();
  FakeFleet fleet(1);
  ControlPlane plane(SmallPlane(1), fleet.Hook());
  HysteresisController reference(config);

  std::uint64_t sequence = 1;
  Rng rng(11);
  for (int tick = 0; tick < 400; ++tick) {
    const double util = rng.NextDouble();
    reference.Tick(util);
    SendBatch(plane, 0, sequence++, util);
    plane.DrainAll(0);
    plane.AdvanceTick();
    ASSERT_EQ(plane.EndpointControllerState(0), reference.state()) << tick;
    ASSERT_EQ(plane.EndpointIntentEnabled(0),
              reference.PrefetchersShouldBeEnabled())
        << tick;
  }
  const EndpointPersistentState exported = plane.ExportEndpoint(0);
  EXPECT_EQ(exported.toggle_count, reference.toggle_count());
  EXPECT_EQ(exported.timer_ns, reference.timer_ns());
}

TEST(ControlPlaneTest, LatencyHistogramRecordsAndQuantiles) {
  IngestLatencyHistogram histogram;
  EXPECT_EQ(histogram.ApproxQuantileNs(0.99), 0u);
  for (int i = 0; i < 90; ++i) histogram.Record(1000);  // bucket [512,1024)
  for (int i = 0; i < 10; ++i) histogram.Record(1'000'000);
  EXPECT_EQ(histogram.count(), 100u);
  // p50 lands in 1000's bucket, p99 in the slow tail's.
  EXPECT_LT(histogram.ApproxQuantileNs(0.50), 2048u);
  EXPECT_GT(histogram.ApproxQuantileNs(0.99), 500'000u);

  IngestLatencyHistogram other;
  other.Record(1000);
  histogram.Merge(other);
  EXPECT_EQ(histogram.count(), 101u);
}

}  // namespace
}  // namespace limoncello
