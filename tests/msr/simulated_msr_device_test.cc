#include "msr/simulated_msr_device.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

constexpr MsrRegister kReg = 0x1a4;

TEST(SimulatedMsrDeviceTest, UnwrittenRegisterReadsZero) {
  SimulatedMsrDevice dev(4);
  EXPECT_EQ(dev.Read(0, kReg), 0u);
  EXPECT_EQ(dev.Read(3, 0xdead), 0u);
}

TEST(SimulatedMsrDeviceTest, WriteThenRead) {
  SimulatedMsrDevice dev(2);
  EXPECT_TRUE(dev.Write(1, kReg, 0xf));
  EXPECT_EQ(dev.Read(1, kReg), 0xfu);
  EXPECT_EQ(dev.Read(0, kReg), 0u);  // per-CPU isolation
}

TEST(SimulatedMsrDeviceTest, OutOfRangeCpuFails) {
  SimulatedMsrDevice dev(2);
  EXPECT_FALSE(dev.Read(2, kReg).has_value());
  EXPECT_FALSE(dev.Read(-1, kReg).has_value());
  EXPECT_FALSE(dev.Write(2, kReg, 1));
}

TEST(SimulatedMsrDeviceTest, FailureInjectionBlocksAccess) {
  SimulatedMsrDevice dev(2);
  dev.FailCpu(0);
  EXPECT_FALSE(dev.Read(0, kReg).has_value());
  EXPECT_FALSE(dev.Write(0, kReg, 1));
  EXPECT_TRUE(dev.Write(1, kReg, 1));
  dev.UnfailCpu(0);
  EXPECT_TRUE(dev.Write(0, kReg, 1));
}

TEST(SimulatedMsrDeviceTest, ObserverSeesWrites) {
  SimulatedMsrDevice dev(2);
  int calls = 0;
  int last_cpu = -1;
  std::uint64_t last_value = 0;
  dev.AddWriteObserver([&](int cpu, MsrRegister reg, std::uint64_t value) {
    ++calls;
    last_cpu = cpu;
    last_value = value;
    EXPECT_EQ(reg, kReg);
  });
  EXPECT_TRUE(dev.Write(1, kReg, 0xa));
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(last_cpu, 1);
  EXPECT_EQ(last_value, 0xau);
}

TEST(SimulatedMsrDeviceTest, ObserverNotCalledOnFailedWrite) {
  SimulatedMsrDevice dev(1);
  int calls = 0;
  dev.AddWriteObserver([&](int, MsrRegister, std::uint64_t) { ++calls; });
  dev.FailCpu(0);
  EXPECT_FALSE(dev.Write(0, kReg, 1));
  EXPECT_EQ(calls, 0);
}

TEST(SimulatedMsrDeviceTest, WriteCountTracksSuccesses) {
  SimulatedMsrDevice dev(2);
  EXPECT_TRUE(dev.Write(0, kReg, 1));
  EXPECT_TRUE(dev.Write(1, kReg, 1));
  dev.FailCpu(0);
  EXPECT_FALSE(dev.Write(0, kReg, 2));
  EXPECT_EQ(dev.write_count(), 2u);
}

}  // namespace
}  // namespace limoncello
