#include "msr/prefetch_control.h"

#include <gtest/gtest.h>

#include "msr/simulated_msr_device.h"

namespace limoncello {
namespace {

class PrefetchControlTest
    : public ::testing::TestWithParam<PlatformMsrLayout> {
 protected:
  PrefetchControlTest() : dev_(4), control_(&dev_, GetParam(), 0, 4) {}

  SimulatedMsrDevice dev_;
  PrefetchControl control_;
};

TEST_P(PrefetchControlTest, PowerOnDefaultIsAllEnabled) {
  // Intel-style: zero register means enabled. Alt-style: zero means
  // disabled, so the power-on default check only holds for Intel.
  if (GetParam() == PlatformMsrLayout::kIntelStyle) {
    EXPECT_EQ(control_.AllEnabled(), true);
  }
}

TEST_P(PrefetchControlTest, DisableAllThenAllDisabled) {
  EXPECT_EQ(control_.DisableAll(), 4);
  EXPECT_EQ(control_.AllDisabled(), true);
  EXPECT_EQ(control_.AllEnabled(), false);
}

TEST_P(PrefetchControlTest, EnableAllAfterDisable) {
  ASSERT_EQ(control_.DisableAll(), 4);
  EXPECT_EQ(control_.EnableAll(), 4);
  EXPECT_EQ(control_.AllEnabled(), true);
  EXPECT_EQ(control_.AllDisabled(), false);
}

TEST_P(PrefetchControlTest, ToggleIsIdempotent) {
  ASSERT_EQ(control_.DisableAll(), 4);
  const std::uint64_t writes_after_first = dev_.write_count();
  EXPECT_EQ(control_.DisableAll(), 4);
  // Second disable changes nothing: no further writes needed.
  EXPECT_EQ(dev_.write_count(), writes_after_first);
}

TEST_P(PrefetchControlTest, PerEngineToggle) {
  ASSERT_EQ(control_.EnableAll(), 4);
  ASSERT_EQ(control_.SetEngine(PrefetchEngine::kL2Stream, false), 4);
  EXPECT_EQ(control_.EngineEnabled(0, PrefetchEngine::kL2Stream), false);
  EXPECT_EQ(control_.EngineEnabled(0, PrefetchEngine::kL2AdjacentLine),
            true);
  EXPECT_EQ(control_.EngineEnabled(0, PrefetchEngine::kDcuStreamer), true);
  EXPECT_EQ(control_.AllEnabled(), false);
  EXPECT_EQ(control_.AllDisabled(), false);

  ASSERT_EQ(control_.SetEngine(PrefetchEngine::kL2Stream, true), 4);
  EXPECT_EQ(control_.AllEnabled(), true);
}

TEST_P(PrefetchControlTest, PartialCpuFailureReported) {
  dev_.FailCpu(2);
  EXPECT_EQ(control_.DisableAll(), 3);
  // The healthy CPUs are disabled.
  EXPECT_EQ(control_.EngineEnabled(0, PrefetchEngine::kDcuIpStride), false);
  // The failed CPU is unreadable.
  EXPECT_FALSE(
      control_.EngineEnabled(2, PrefetchEngine::kDcuIpStride).has_value());
}

TEST_P(PrefetchControlTest, AllCpusFailedReturnsNullopt) {
  for (int c = 0; c < 4; ++c) dev_.FailCpu(c);
  EXPECT_FALSE(control_.AllEnabled().has_value());
  EXPECT_FALSE(control_.AllDisabled().has_value());
  EXPECT_EQ(control_.DisableAll(), 0);
}

TEST_P(PrefetchControlTest, PreservesUnrelatedRegisterBits) {
  // Other feature bits in the same register must survive the toggles.
  const MsrRegister reg = control_.msr_map().reg;
  ASSERT_TRUE(dev_.Write(0, reg, 0xabcd0000u));
  ASSERT_EQ(control_.DisableAll(), 4);
  ASSERT_EQ(control_.EnableAll(), 4);
  EXPECT_EQ(dev_.PeekRaw(0, reg) & 0xffff0000u, 0xabcd0000u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, PrefetchControlTest,
                         ::testing::Values(PlatformMsrLayout::kIntelStyle,
                                           PlatformMsrLayout::kAltStyle));

TEST(PrefetchMsrMapTest, IntelLayoutUses0x1A4DisableBits) {
  const PrefetchMsrMap map =
      PrefetchMsrMap::For(PlatformMsrLayout::kIntelStyle);
  EXPECT_EQ(map.reg, 0x1a4u);
  EXPECT_TRUE(map.set_bit_disables);
  EXPECT_EQ(map.engine_mask, 0xfu);
}

TEST(PrefetchMsrMapTest, AltLayoutUsesEnableBits) {
  const PrefetchMsrMap map =
      PrefetchMsrMap::For(PlatformMsrLayout::kAltStyle);
  EXPECT_NE(map.reg, 0x1a4u);
  EXPECT_FALSE(map.set_bit_disables);
}

TEST(PrefetchControlTest, SubsetOfCpusOnly) {
  SimulatedMsrDevice dev(8);
  PrefetchControl control(&dev, PlatformMsrLayout::kIntelStyle, 4, 4);
  EXPECT_EQ(control.DisableAll(), 4);
  // CPUs outside the socket range are untouched.
  EXPECT_EQ(dev.PeekRaw(0, 0x1a4), 0u);
  EXPECT_EQ(dev.PeekRaw(4, 0x1a4), 0xfu);
}

TEST(PrefetchEngineNameTest, AllNamesDistinct) {
  EXPECT_STREQ(PrefetchEngineName(PrefetchEngine::kL2Stream), "l2_stream");
  EXPECT_STREQ(PrefetchEngineName(PrefetchEngine::kL2AdjacentLine),
               "l2_adjacent_line");
  EXPECT_STREQ(PrefetchEngineName(PrefetchEngine::kDcuStreamer),
               "dcu_streamer");
  EXPECT_STREQ(PrefetchEngineName(PrefetchEngine::kDcuIpStride),
               "dcu_ip_stride");
}

}  // namespace
}  // namespace limoncello
