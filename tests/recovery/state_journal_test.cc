// StateJournal framing tests: CRC correctness, append/replay round trips,
// compaction bounds, and — the point of the subsystem — graceful
// degradation on every flavour of damaged file. Corrupt fixtures are
// hand-crafted with the exposed EncodeRecord/Crc32 so they stay in sync
// with the real on-disk layout.
#include "recovery/state_journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace limoncello {
namespace {

using PersistentState = LimoncelloDaemon::PersistentState;

std::string TempPath(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::error_code ec;
  std::filesystem::remove(path, ec);  // a fresh file per test
  return path;
}

void WriteBytes(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void StoreLe32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

// A snapshot with every field distinctive, so a round trip that drops or
// swaps a field cannot pass by accident.
PersistentState DistinctiveState() {
  PersistentState state;
  state.controller_state = ControllerState::kDisabledArming;
  state.timer_ns = 3 * kNsPerSec;
  state.toggle_count = 7;
  state.pending_retry = ControllerAction::kEnablePrefetchers;
  state.retry_delay_ticks = 4;
  state.retry_wait_ticks = 2;
  state.consecutive_missed = 1;
  state.last_sample_bits = 0x3FE6666666666666ull;  // bits of 0.7
  state.have_last_sample = true;
  state.stale_run = 3;
  state.stats.ticks = 1234;
  state.stats.missed_samples = 5;
  state.stats.disables = 8;
  state.stats.enables = 7;
  state.stats.warm_restores = 2;
  state.stats.recovery_reconciles = 1;
  return state;
}

std::vector<unsigned char> EncodeOne(const PersistentState& state) {
  std::vector<unsigned char> record(StateJournal::kRecordBytes);
  StateJournal::EncodeRecord(state, record.data());
  return record;
}

TEST(StateJournalTest, Crc32MatchesTheIeeeCheckValue) {
  // The standard check value for CRC-32/ISO-HDLC.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0x00000000u);
}

TEST(StateJournalTest, AppendReplayRoundTripsEveryField) {
  const std::string path = TempPath("round_trip.journal");
  const PersistentState state = DistinctiveState();
  {
    StateJournal journal({.path = path});
    EXPECT_TRUE(journal.Append(state));
  }
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_TRUE(replay.file_found);
  EXPECT_TRUE(replay.Clean());
  EXPECT_EQ(replay.valid_records, 1u);
  ASSERT_TRUE(replay.state.has_value());
  EXPECT_EQ(*replay.state, state);
}

TEST(StateJournalTest, ReplayKeepsTheNewestRecord) {
  const std::string path = TempPath("newest_wins.journal");
  StateJournal journal({.path = path});
  PersistentState state = DistinctiveState();
  for (std::uint64_t i = 0; i < 5; ++i) {
    state.stats.ticks = 100 + i;
    EXPECT_TRUE(journal.Append(state));
  }
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_EQ(replay.valid_records, 5u);
  ASSERT_TRUE(replay.state.has_value());
  EXPECT_EQ(replay.state->stats.ticks, 104u);
}

TEST(StateJournalTest, CompactionBoundsFileSizeAndKeepsNewestState) {
  const std::string path = TempPath("compaction.journal");
  StateJournal journal({.path = path, .compact_every_appends = 4});
  PersistentState state = DistinctiveState();
  for (std::uint64_t i = 0; i < 40; ++i) {
    state.stats.ticks = i;
    EXPECT_TRUE(journal.Append(state));
  }
  EXPECT_GT(journal.stats().compactions, 0u);
  EXPECT_LE(std::filesystem::file_size(path),
            5u * StateJournal::kRecordBytes);
  const JournalReplay replay = StateJournal::Replay(path);
  ASSERT_TRUE(replay.state.has_value());
  EXPECT_EQ(replay.state->stats.ticks, 39u);
}

TEST(StateJournalTest, WriteSnapshotLeavesExactlyOneRecord) {
  const std::string path = TempPath("snapshot.journal");
  StateJournal journal({.path = path});
  const PersistentState state = DistinctiveState();
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(journal.Append(state));
  EXPECT_TRUE(journal.WriteSnapshot(state));
  EXPECT_EQ(std::filesystem::file_size(path), StateJournal::kRecordBytes);
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_EQ(replay.valid_records, 1u);
  ASSERT_TRUE(replay.state.has_value());
  EXPECT_EQ(*replay.state, state);
}

TEST(StateJournalTest, AppendsAfterSnapshotLandInTheRenamedFile) {
  // WriteSnapshot replaces the journal's inode; a stale append descriptor
  // would keep writing into the orphaned old file.
  const std::string path = TempPath("post_snapshot.journal");
  StateJournal journal({.path = path});
  PersistentState state = DistinctiveState();
  EXPECT_TRUE(journal.Append(state));
  EXPECT_TRUE(journal.WriteSnapshot(state));
  state.stats.ticks = 777;
  EXPECT_TRUE(journal.Append(state));
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_EQ(replay.valid_records, 2u);
  ASSERT_TRUE(replay.state.has_value());
  EXPECT_EQ(replay.state->stats.ticks, 777u);
}

TEST(StateJournalTest, MissingFileIsACleanColdStart) {
  const JournalReplay replay =
      StateJournal::Replay(TempPath("never_written.journal"));
  EXPECT_FALSE(replay.file_found);
  EXPECT_FALSE(replay.state.has_value());
  EXPECT_TRUE(replay.Clean());
}

TEST(StateJournalTest, EmptyFileIsACleanColdStart) {
  const std::string path = TempPath("empty.journal");
  WriteBytes(path, {});
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_TRUE(replay.file_found);
  EXPECT_FALSE(replay.state.has_value());
  EXPECT_TRUE(replay.Clean());
}

TEST(StateJournalTest, TornFinalRecordKeepsTheLastGoodOne) {
  const std::string path = TempPath("torn.journal");
  PersistentState first = DistinctiveState();
  first.stats.ticks = 1;
  PersistentState second = DistinctiveState();
  second.stats.ticks = 2;
  std::vector<unsigned char> bytes = EncodeOne(first);
  const std::vector<unsigned char> tail = EncodeOne(second);
  // The crash happened mid-append: only half of the second record hit
  // the disk.
  bytes.insert(bytes.end(), tail.begin(),
               tail.begin() + StateJournal::kRecordBytes / 2);
  WriteBytes(path, bytes);
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_EQ(replay.valid_records, 1u);
  EXPECT_EQ(replay.torn_records, 1u);
  EXPECT_FALSE(replay.Clean());
  ASSERT_TRUE(replay.state.has_value());
  EXPECT_EQ(replay.state->stats.ticks, 1u);
}

TEST(StateJournalTest, BadCrcStopsTheScanWithoutAState) {
  const std::string path = TempPath("bad_crc.journal");
  std::vector<unsigned char> bytes = EncodeOne(DistinctiveState());
  bytes[StateJournal::kHeaderBytes + 5] ^= 0xFF;  // flip a payload byte
  WriteBytes(path, bytes);
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_EQ(replay.corrupt_records, 1u);
  EXPECT_FALSE(replay.state.has_value());
}

TEST(StateJournalTest, GarbageFileNeverCrashesReplay) {
  const std::string path = TempPath("garbage.journal");
  std::vector<unsigned char> bytes(300);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<unsigned char>(i * 37 + 11);
  }
  WriteBytes(path, bytes);
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_FALSE(replay.state.has_value());
  EXPECT_FALSE(replay.Clean());
}

TEST(StateJournalTest, OversizedSizeFieldIsCorruptNotACrash) {
  const std::string path = TempPath("oversized.journal");
  std::vector<unsigned char> bytes = EncodeOne(DistinctiveState());
  // A size field pointing gigabytes past the file must not be trusted.
  StoreLe32(&bytes[8], 0x7FFFFFFFu);
  WriteBytes(path, bytes);
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_EQ(replay.corrupt_records, 1u);
  EXPECT_FALSE(replay.state.has_value());
}

TEST(StateJournalTest, ForeignVersionWithIntactCrcIsSkippedNotFatal) {
  const std::string path = TempPath("foreign_version.journal");
  std::vector<unsigned char> foreign = EncodeOne(DistinctiveState());
  StoreLe32(&foreign[4], StateJournal::kVersion + 1);
  // Re-seal the tampered header so the frame is intact, just foreign.
  StoreLe32(&foreign[StateJournal::kHeaderBytes + StateJournal::kPayloadBytes],
            Crc32(foreign.data() + 4, 8 + StateJournal::kPayloadBytes));
  PersistentState current = DistinctiveState();
  current.stats.ticks = 42;
  const std::vector<unsigned char> good = EncodeOne(current);
  std::vector<unsigned char> bytes = foreign;
  bytes.insert(bytes.end(), good.begin(), good.end());
  WriteBytes(path, bytes);
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_EQ(replay.version_mismatches, 1u);
  EXPECT_EQ(replay.valid_records, 1u);
  ASSERT_TRUE(replay.state.has_value());
  EXPECT_EQ(replay.state->stats.ticks, 42u);
}

TEST(StateJournalTest, ReservedPayloadByteMustBeZero) {
  const std::string path = TempPath("reserved_byte.journal");
  std::vector<unsigned char> bytes = EncodeOne(DistinctiveState());
  bytes[StateJournal::kHeaderBytes + 3] = 1;  // reserved byte
  StoreLe32(&bytes[StateJournal::kHeaderBytes + StateJournal::kPayloadBytes],
            Crc32(bytes.data() + 4, 8 + StateJournal::kPayloadBytes));
  WriteBytes(path, bytes);
  const JournalReplay replay = StateJournal::Replay(path);
  EXPECT_EQ(replay.corrupt_records, 1u);
  EXPECT_FALSE(replay.state.has_value());
}

TEST(StateJournalTest, AppendToUnwritablePathCountsIoErrorsAndReturnsFalse) {
  StateJournal journal({.path = "/nonexistent-dir/limo.journal"});
  EXPECT_FALSE(journal.Append(DistinctiveState()));
  EXPECT_FALSE(journal.WriteSnapshot(DistinctiveState()));
  EXPECT_EQ(journal.stats().io_errors, 2u);
}

}  // namespace
}  // namespace limoncello
