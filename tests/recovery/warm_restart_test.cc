// End-to-end warm-restart acceptance: a daemon killed mid-run and
// restarted from its journal must reconverge with a never-killed control
// daemon fed the identical telemetry — same FSM state, same toggle
// count, same hardware state, same cumulative stats. Also covers the
// reboot-while-down race: the hardware reset under the dead daemon, and
// the restarted one must notice and re-assert its journaled intent.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/daemon.h"
#include "recovery/recovery_manager.h"

namespace limoncello {
namespace {

class FakeTelemetry : public UtilizationSource {
 public:
  std::optional<double> SampleUtilization() override {
    if (next_ < script_.size()) return script_[next_++];
    return 0.7;  // quiet fallback between the thresholds
  }
  void Load(const std::vector<double>& script) {
    script_ = script;
    next_ = 0;
  }

 private:
  std::vector<double> script_;
  std::size_t next_ = 0;
};

class ReadbackActuator : public PrefetchActuator {
 public:
  bool DisablePrefetchers() override {
    if (fail_next > 0) {
      --fail_next;
      return false;
    }
    enabled = false;
    return true;
  }
  bool EnablePrefetchers() override {
    if (fail_next > 0) {
      --fail_next;
      return false;
    }
    enabled = true;
    return true;
  }
  std::optional<bool> StateMatches(bool want_enabled) override {
    return enabled == want_enabled;
  }

  bool enabled = true;
  int fail_next = 0;
};

ControllerConfig FastConfig() {
  ControllerConfig config;
  config.upper_threshold = 0.8;
  config.lower_threshold = 0.6;
  config.sustain_duration_ns = 2 * kNsPerSec;
  config.tick_period_ns = kNsPerSec;
  config.max_missed_samples = 3;
  config.retry_backoff_cap_ticks = 1;
  return config;
}

std::string TempPath(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return path;
}

// A telemetry story that toggles the prefetchers twice: a sustained
// burst (disable), a lull (re-enable), and a second burst in the tail
// the restarted daemon must handle on its own.
const std::vector<double> kScript = {
    0.9, 0.9, 0.9, 0.7, 0.5, 0.5, 0.7, 0.7,   // ticks 1-8
    0.9, 0.9, 0.9, 0.7, 0.7, 0.5, 0.5, 0.7};  // ticks 9-16

std::vector<double> Slice(std::size_t begin, std::size_t end) {
  return {kScript.begin() + begin, kScript.begin() + end};
}

TEST(WarmRestartTest, KilledDaemonReconvergesWithTheControlArm) {
  // Control arm: one daemon, never killed, runs the whole script.
  FakeTelemetry control_telemetry;
  control_telemetry.Load(kScript);
  ReadbackActuator control_actuator;
  LimoncelloDaemon control(FastConfig(), &control_telemetry,
                           &control_actuator);
  for (std::size_t i = 0; i < kScript.size(); ++i) {
    control.RunTick(static_cast<SimTimeNs>(i) * kNsPerSec);
  }

  // Victim arm: identical telemetry, same hardware, but the process dies
  // (no shutdown flush — the journal's periodic appends are all it left)
  // after tick 8, a tick the cadence journals.
  const std::string path = TempPath("reconverge.journal");
  ReadbackActuator actuator;
  FakeTelemetry first_half;
  first_half.Load(Slice(0, 8));
  {
    LimoncelloDaemon victim(FastConfig(), &first_half, &actuator);
    RecoveryManager manager({.state_file = path, .snapshot_period_ticks = 4},
                            &victim);
    ASSERT_FALSE(manager.RecoverAndReconcile().warm);
    for (std::size_t i = 0; i < 8; ++i) {
      manager.OnTickComplete(
          victim.RunTick(static_cast<SimTimeNs>(i) * kNsPerSec));
    }
  }  // SIGKILL: daemon and manager destroyed, no FlushSnapshot

  FakeTelemetry second_half;
  second_half.Load(Slice(8, kScript.size()));
  LimoncelloDaemon restarted(FastConfig(), &second_half, &actuator);
  RecoveryManager manager({.state_file = path, .snapshot_period_ticks = 4},
                          &restarted);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_TRUE(result.warm);
  EXPECT_EQ(result.reconcile, ReconcileStatus::kMatched);
  EXPECT_EQ(restarted.stats().ticks, 8u);
  for (std::size_t i = 8; i < kScript.size(); ++i) {
    manager.OnTickComplete(
        restarted.RunTick(static_cast<SimTimeNs>(i) * kNsPerSec));
  }

  // Reconvergence invariant: the restarted daemon is indistinguishable
  // from the control arm on everything the journal carries.
  EXPECT_EQ(restarted.controller().state(), control.controller().state());
  EXPECT_EQ(restarted.controller().timer_ns(),
            control.controller().timer_ns());
  EXPECT_EQ(restarted.controller().toggle_count(),
            control.controller().toggle_count());
  EXPECT_EQ(actuator.enabled, control_actuator.enabled);
  EXPECT_EQ(restarted.stats().ticks, control.stats().ticks);
  EXPECT_EQ(restarted.stats().disables, control.stats().disables);
  EXPECT_EQ(restarted.stats().enables, control.stats().enables);
  EXPECT_EQ(restarted.stats().warm_restores, 1u);  // the one delta
}

TEST(WarmRestartTest, RebootWhileDownIsDetectedAndReasserted) {
  const std::string path = TempPath("reboot_reassert.journal");
  ReadbackActuator actuator;
  FakeTelemetry burst;
  burst.Load(Slice(0, 3));  // enough to disable
  {
    LimoncelloDaemon victim(FastConfig(), &burst, &actuator);
    RecoveryManager manager({.state_file = path}, &victim);
    for (int i = 0; i < 3; ++i) {
      manager.OnTickComplete(
          victim.RunTick(static_cast<SimTimeNs>(i) * kNsPerSec));
    }
    ASSERT_FALSE(actuator.enabled);
  }
  // While the daemon was dead the machine rebooted: BIOS default is on.
  actuator.enabled = true;

  FakeTelemetry quiet;
  LimoncelloDaemon restarted(FastConfig(), &quiet, &actuator);
  RecoveryManager manager({.state_file = path}, &restarted);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_TRUE(result.warm);
  EXPECT_EQ(result.reconcile, ReconcileStatus::kReasserted);
  EXPECT_FALSE(actuator.enabled);  // journaled intent wins
  EXPECT_EQ(restarted.stats().recovery_reconciles, 1u);
}

TEST(WarmRestartTest, FailedReassertArmsTheStandardRetry) {
  const std::string path = TempPath("reassert_retry.journal");
  ReadbackActuator actuator;
  FakeTelemetry burst;
  burst.Load(Slice(0, 3));
  {
    LimoncelloDaemon victim(FastConfig(), &burst, &actuator);
    RecoveryManager manager({.state_file = path}, &victim);
    for (int i = 0; i < 3; ++i) {
      manager.OnTickComplete(
          victim.RunTick(static_cast<SimTimeNs>(i) * kNsPerSec));
    }
  }
  actuator.enabled = true;
  actuator.fail_next = 1;  // the re-assert write fails once

  FakeTelemetry quiet;
  LimoncelloDaemon restarted(FastConfig(), &quiet, &actuator);
  RecoveryManager manager({.state_file = path}, &restarted);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_EQ(result.reconcile, ReconcileStatus::kRetryArmed);
  EXPECT_TRUE(actuator.enabled);  // still wrong...
  // ...until the normal tick loop's backoff retry lands it.
  restarted.RunTick(100 * kNsPerSec);
  restarted.RunTick(101 * kNsPerSec);
  EXPECT_FALSE(actuator.enabled);
}

}  // namespace
}  // namespace limoncello
