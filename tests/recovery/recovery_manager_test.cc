// RecoveryManager corruption fixtures: every flavour of damaged journal
// (torn final record, flipped CRC byte, truncated file, stale version,
// empty file, missing file, CRC-valid-but-impossible state) must degrade
// to a cold start — never a crash, never a daemon running invalid state —
// and the daemon must keep ticking afterwards. Also covers the journal
// cadence (actuation ticks + every Nth tick) and the startup reconcile.
#include "recovery/recovery_manager.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "core/daemon.h"

namespace limoncello {
namespace {

using PersistentState = LimoncelloDaemon::PersistentState;

// Telemetry returning a scripted sequence, then a fallback forever.
class FakeTelemetry : public UtilizationSource {
 public:
  std::optional<double> SampleUtilization() override {
    if (next_ < script_.size()) return script_[next_++];
    return fallback_;
  }
  void Push(double sample) { script_.push_back(sample); }
  void set_fallback(std::optional<double> f) { fallback_ = f; }

 private:
  std::vector<double> script_;
  std::size_t next_ = 0;
  std::optional<double> fallback_ = 0.7;
};

// Actuator with working readback, so reconcile outcomes are observable.
class ReadbackActuator : public PrefetchActuator {
 public:
  bool DisablePrefetchers() override {
    if (fail_next > 0) {
      --fail_next;
      return false;
    }
    enabled = false;
    return true;
  }
  bool EnablePrefetchers() override {
    if (fail_next > 0) {
      --fail_next;
      return false;
    }
    enabled = true;
    return true;
  }
  std::optional<bool> StateMatches(bool want_enabled) override {
    return enabled == want_enabled;
  }

  bool enabled = true;
  int fail_next = 0;
};

ControllerConfig FastConfig() {
  ControllerConfig config;
  config.upper_threshold = 0.8;
  config.lower_threshold = 0.6;
  config.sustain_duration_ns = 2 * kNsPerSec;
  config.tick_period_ns = kNsPerSec;
  config.max_missed_samples = 3;
  config.retry_backoff_cap_ticks = 1;
  return config;
}

std::string TempPath(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::error_code ec;
  std::filesystem::remove(path, ec);
  return path;
}

void WriteBytes(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

void StoreLe32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

std::vector<unsigned char> EncodeOne(const PersistentState& state) {
  std::vector<unsigned char> record(StateJournal::kRecordBytes);
  StateJournal::EncodeRecord(state, record.data());
  return record;
}

PersistentState DisabledSnapshot() {
  PersistentState state;
  state.controller_state = ControllerState::kDisabledSteady;
  state.toggle_count = 1;
  state.stats.ticks = 10;
  state.stats.disables = 1;
  return state;
}

// A cold start must leave the daemon fully operational: run a few quiet
// ticks and make sure the FSM is at power-on state and counting.
void ExpectDaemonStillTicks(LimoncelloDaemon* daemon) {
  const std::uint64_t before = daemon->stats().ticks;
  for (int i = 0; i < 3; ++i) {
    daemon->RunTick(static_cast<SimTimeNs>(i) * kNsPerSec);
  }
  EXPECT_EQ(daemon->stats().ticks, before + 3);
}

TEST(RecoveryManagerTest, MissingJournalIsAColdStart) {
  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = TempPath("missing.journal")},
                          &daemon);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_FALSE(result.warm);
  EXPECT_FALSE(result.rejected_state);
  EXPECT_FALSE(result.replay.file_found);
  EXPECT_EQ(result.reconcile, ReconcileStatus::kMatched);
  ExpectDaemonStillTicks(&daemon);
}

TEST(RecoveryManagerTest, EmptyJournalIsAColdStart) {
  const std::string path = TempPath("empty.journal");
  WriteBytes(path, {});
  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = path}, &daemon);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_FALSE(result.warm);
  EXPECT_TRUE(result.replay.file_found);
  EXPECT_EQ(result.replay.valid_records, 0u);
  ExpectDaemonStillTicks(&daemon);
}

TEST(RecoveryManagerTest, TornFinalRecordFallsBackToThePreviousOne) {
  const std::string path = TempPath("torn.journal");
  PersistentState good = DisabledSnapshot();
  PersistentState newer = DisabledSnapshot();
  newer.stats.ticks = 11;
  std::vector<unsigned char> bytes = EncodeOne(good);
  const std::vector<unsigned char> tail = EncodeOne(newer);
  bytes.insert(bytes.end(), tail.begin(), tail.begin() + 40);
  WriteBytes(path, bytes);

  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  actuator.enabled = false;  // hardware still as the snapshot left it
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = path}, &daemon);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_TRUE(result.warm);
  EXPECT_EQ(result.replay.torn_records, 1u);
  EXPECT_EQ(daemon.stats().ticks, 10u);  // the older record won
  EXPECT_EQ(result.reconcile, ReconcileStatus::kMatched);
  EXPECT_EQ(daemon.controller().state(), ControllerState::kDisabledSteady);
}

TEST(RecoveryManagerTest, CorruptCrcIsAColdStart) {
  const std::string path = TempPath("bad_crc.journal");
  std::vector<unsigned char> bytes = EncodeOne(DisabledSnapshot());
  bytes[StateJournal::kHeaderBytes + 7] ^= 0x40;
  WriteBytes(path, bytes);

  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = path}, &daemon);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_FALSE(result.warm);
  EXPECT_EQ(result.replay.corrupt_records, 1u);
  EXPECT_EQ(daemon.controller().state(), ControllerState::kEnabledSteady);
  ExpectDaemonStillTicks(&daemon);
}

TEST(RecoveryManagerTest, TruncatedJournalIsAColdStart) {
  const std::string path = TempPath("truncated.journal");
  std::vector<unsigned char> bytes = EncodeOne(DisabledSnapshot());
  bytes.resize(StateJournal::kRecordBytes / 3);
  WriteBytes(path, bytes);

  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = path}, &daemon);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_FALSE(result.warm);
  EXPECT_EQ(result.replay.torn_records, 1u);
  ExpectDaemonStillTicks(&daemon);
}

TEST(RecoveryManagerTest, StaleVersionIsAColdStart) {
  const std::string path = TempPath("stale_version.journal");
  std::vector<unsigned char> bytes = EncodeOne(DisabledSnapshot());
  StoreLe32(&bytes[4], StateJournal::kVersion + 7);
  StoreLe32(&bytes[StateJournal::kHeaderBytes + StateJournal::kPayloadBytes],
            Crc32(bytes.data() + 4, 8 + StateJournal::kPayloadBytes));
  WriteBytes(path, bytes);

  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = path}, &daemon);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_FALSE(result.warm);
  EXPECT_EQ(result.replay.version_mismatches, 1u);
  EXPECT_EQ(result.replay.valid_records, 0u);
  ExpectDaemonStillTicks(&daemon);
}

TEST(RecoveryManagerTest, CrcValidButImpossibleStateIsRejected) {
  // The CRC only proves the bytes survived the disk; the values can still
  // violate the daemon's invariants (here: a backoff delay beyond the
  // config cap of 1). The daemon must refuse the record, not run it.
  const std::string path = TempPath("impossible_state.journal");
  PersistentState state = DisabledSnapshot();
  state.pending_retry = ControllerAction::kDisablePrefetchers;
  state.retry_delay_ticks = 5;
  WriteBytes(path, EncodeOne(state));

  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = path}, &daemon);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_FALSE(result.warm);
  EXPECT_TRUE(result.rejected_state);
  EXPECT_TRUE(result.replay.Clean());
  EXPECT_EQ(daemon.stats().warm_restores, 0u);
  EXPECT_EQ(daemon.controller().state(), ControllerState::kEnabledSteady);
  ExpectDaemonStillTicks(&daemon);
}

TEST(RecoveryManagerTest, ColdStartStillReconcilesTheHardware) {
  // A predecessor disabled the prefetchers and died losing its journal:
  // the fresh daemon's power-on intent (enabled) must win.
  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  actuator.enabled = false;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = TempPath("lost.journal")}, &daemon);
  const RecoveryResult result = manager.RecoverAndReconcile();
  EXPECT_FALSE(result.warm);
  EXPECT_EQ(result.reconcile, ReconcileStatus::kReasserted);
  EXPECT_TRUE(actuator.enabled);
  EXPECT_EQ(daemon.stats().recovery_reconciles, 1u);
}

TEST(RecoveryManagerTest, OnTickCompleteJournalsActuationsAndPeriod) {
  const std::string path = TempPath("cadence.journal");
  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = path, .snapshot_period_ticks = 4},
                          &daemon);

  // Eight quiet ticks between the thresholds: only ticks 4 and 8 journal.
  for (int i = 0; i < 8; ++i) {
    manager.OnTickComplete(daemon.RunTick(static_cast<SimTimeNs>(i)));
  }
  EXPECT_EQ(manager.journal().stats().appends, 2u);

  // A sustained burst actuates on its second tick (off-period): the
  // actuation itself must be journaled immediately.
  telemetry.Push(0.9);
  telemetry.Push(0.9);
  manager.OnTickComplete(daemon.RunTick(8 * kNsPerSec));
  manager.OnTickComplete(daemon.RunTick(9 * kNsPerSec));
  EXPECT_FALSE(actuator.enabled);
  EXPECT_EQ(manager.journal().stats().appends, 3u);

  const JournalReplay replay = StateJournal::Replay(path);
  ASSERT_TRUE(replay.state.has_value());
  EXPECT_EQ(replay.state->controller_state,
            ControllerState::kDisabledSteady);
  EXPECT_EQ(replay.state->stats.ticks, 10u);
}

TEST(RecoveryManagerTest, FlushSnapshotCompactsToOneRecord) {
  const std::string path = TempPath("flush.journal");
  FakeTelemetry telemetry;
  ReadbackActuator actuator;
  LimoncelloDaemon daemon(FastConfig(), &telemetry, &actuator);
  RecoveryManager manager({.state_file = path, .snapshot_period_ticks = 1},
                          &daemon);
  for (int i = 0; i < 6; ++i) {
    manager.OnTickComplete(daemon.RunTick(static_cast<SimTimeNs>(i)));
  }
  EXPECT_TRUE(manager.FlushSnapshot());
  EXPECT_EQ(std::filesystem::file_size(path), StateJournal::kRecordBytes);
  const JournalReplay replay = StateJournal::Replay(path);
  ASSERT_TRUE(replay.state.has_value());
  EXPECT_EQ(replay.state->stats.ticks, 6u);
}

}  // namespace
}  // namespace limoncello
