// EndpointStateJournal: append/snapshot/replay round trips and graceful
// degradation on every flavour of damaged file, plus the end-to-end
// RecoverEndpointStates path into a ControlPlane.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "control/control_plane.h"
#include "recovery/recovery_manager.h"
#include "recovery/state_journal.h"
#include "util/crc32.h"
#include "util/wire.h"

namespace limoncello {
namespace {

std::string TempPath(const std::string& name) {
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / name).string();
  std::error_code ec;
  std::filesystem::remove(path, ec);  // a fresh file per test
  return path;
}

void WriteBytes(const std::string& path,
                const std::vector<unsigned char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

EndpointPersistentState SampleState(std::uint32_t endpoint_id,
                                    std::uint64_t sequence) {
  EndpointPersistentState state;
  state.endpoint_id = endpoint_id;
  state.controller_state = ControllerState::kDisabledSteady;
  state.timer_ns = 0;
  state.toggle_count = 3;
  state.intent_enabled = false;
  state.force_active = false;
  state.force_enabled = true;
  state.last_sequence = sequence;
  state.have_sequence = true;
  state.last_update_tick = 77;
  return state;
}

std::vector<unsigned char> EncodedRecord(const EndpointPersistentState& s) {
  std::vector<unsigned char> record(EndpointStateJournal::kRecordBytes);
  EndpointStateJournal::EncodeRecord(s, record.data());
  return record;
}

TEST(EndpointStateJournalTest, MissingFileReplaysEmpty) {
  const EndpointJournalReplay replay =
      EndpointStateJournal::Replay(TempPath("missing.lej"));
  EXPECT_FALSE(replay.file_found);
  EXPECT_TRUE(replay.states.empty());
  EXPECT_TRUE(replay.Clean());
}

TEST(EndpointStateJournalTest, AppendReplayRoundTrip) {
  const std::string path = TempPath("round_trip.lej");
  EndpointStateJournal journal({path});
  std::vector<EndpointPersistentState> written;
  for (std::uint32_t e = 0; e < 5; ++e) {
    written.push_back(SampleState(e, 100 + e));
    ASSERT_TRUE(journal.Append(written.back()));
  }
  EXPECT_EQ(journal.stats().appends, 5u);

  const EndpointJournalReplay replay = EndpointStateJournal::Replay(path);
  EXPECT_TRUE(replay.file_found);
  EXPECT_TRUE(replay.Clean());
  EXPECT_EQ(replay.valid_records, 5u);
  ASSERT_EQ(replay.states.size(), 5u);
  for (std::uint32_t e = 0; e < 5; ++e) {
    EXPECT_TRUE(replay.states[e] == written[e]) << e;
  }
}

TEST(EndpointStateJournalTest, NewestRecordPerEndpointWins) {
  const std::string path = TempPath("newest_wins.lej");
  EndpointStateJournal journal({path});
  ASSERT_TRUE(journal.Append(SampleState(4, 10)));
  ASSERT_TRUE(journal.Append(SampleState(2, 20)));
  EndpointPersistentState newer = SampleState(4, 55);
  newer.intent_enabled = true;
  newer.controller_state = ControllerState::kEnabledSteady;
  ASSERT_TRUE(journal.Append(newer));

  const EndpointJournalReplay replay = EndpointStateJournal::Replay(path);
  ASSERT_EQ(replay.states.size(), 2u);  // ascending id order
  EXPECT_EQ(replay.states[0].endpoint_id, 2u);
  EXPECT_EQ(replay.states[1].endpoint_id, 4u);
  EXPECT_EQ(replay.states[1].last_sequence, 55u);
  EXPECT_TRUE(replay.states[1].intent_enabled);
  EXPECT_EQ(replay.valid_records, 3u);
}

TEST(EndpointStateJournalTest, SnapshotAtomicallyReplacesJournal) {
  const std::string path = TempPath("snapshot.lej");
  EndpointStateJournal journal({path});
  // A long history...
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(journal.Append(SampleState(0, 1 + i)));
  }
  // ...folded down to one record per endpoint.
  ASSERT_TRUE(
      journal.WriteSnapshot({SampleState(0, 50), SampleState(1, 9)}));
  EXPECT_EQ(journal.stats().snapshots, 1u);
  EXPECT_EQ(std::filesystem::file_size(path),
            2 * EndpointStateJournal::kRecordBytes);

  const EndpointJournalReplay replay = EndpointStateJournal::Replay(path);
  EXPECT_TRUE(replay.Clean());
  ASSERT_EQ(replay.states.size(), 2u);
  EXPECT_EQ(replay.states[0].last_sequence, 50u);

  // Appends continue cleanly after a snapshot.
  ASSERT_TRUE(journal.Append(SampleState(1, 11)));
  EXPECT_EQ(EndpointStateJournal::Replay(path).states[1].last_sequence, 11u);
}

TEST(EndpointStateJournalTest, TornTailTolerated) {
  const std::string path = TempPath("torn.lej");
  std::vector<unsigned char> bytes = EncodedRecord(SampleState(1, 5));
  const std::vector<unsigned char> second = EncodedRecord(SampleState(2, 6));
  // Second record cut mid-write (crash during append).
  bytes.insert(bytes.end(), second.begin(), second.begin() + 17);
  WriteBytes(path, bytes);

  const EndpointJournalReplay replay = EndpointStateJournal::Replay(path);
  EXPECT_EQ(replay.valid_records, 1u);
  EXPECT_EQ(replay.torn_records, 1u);
  EXPECT_EQ(replay.corrupt_records, 0u);
  ASSERT_EQ(replay.states.size(), 1u);
  EXPECT_EQ(replay.states[0].endpoint_id, 1u);
}

TEST(EndpointStateJournalTest, CorruptRecordStopsScanKeepsPrefix) {
  const std::string path = TempPath("corrupt.lej");
  std::vector<unsigned char> bytes = EncodedRecord(SampleState(1, 5));
  std::vector<unsigned char> bad = EncodedRecord(SampleState(2, 6));
  bad[EndpointStateJournal::kHeaderBytes + 3] ^= 0x40;  // payload bit rot
  bytes.insert(bytes.end(), bad.begin(), bad.end());
  const std::vector<unsigned char> after = EncodedRecord(SampleState(3, 7));
  bytes.insert(bytes.end(), after.begin(), after.end());
  WriteBytes(path, bytes);

  const EndpointJournalReplay replay = EndpointStateJournal::Replay(path);
  EXPECT_FALSE(replay.Clean());
  EXPECT_EQ(replay.valid_records, 1u);
  EXPECT_EQ(replay.corrupt_records, 1u);
  // The scan cannot trust anything after unframed bytes.
  ASSERT_EQ(replay.states.size(), 1u);
  EXPECT_EQ(replay.states[0].endpoint_id, 1u);
}

TEST(EndpointStateJournalTest, ForeignVersionSkippedFrameIntact) {
  const std::string path = TempPath("version.lej");
  std::vector<unsigned char> record = EncodedRecord(SampleState(1, 5));
  // Bump the version and re-CRC so the frame is intact but foreign.
  StoreU32(record.data() + 4, EndpointStateJournal::kVersion + 1);
  StoreU32(record.data() + record.size() - 4,
           Crc32(record.data() + 4,
                 8 + EndpointStateJournal::kPayloadBytes));
  std::vector<unsigned char> bytes = record;
  const std::vector<unsigned char> good = EncodedRecord(SampleState(2, 6));
  bytes.insert(bytes.end(), good.begin(), good.end());
  WriteBytes(path, bytes);

  const EndpointJournalReplay replay = EndpointStateJournal::Replay(path);
  EXPECT_EQ(replay.version_mismatches, 1u);
  // An intact foreign-version frame is skippable: the scan continues.
  EXPECT_EQ(replay.valid_records, 1u);
  ASSERT_EQ(replay.states.size(), 1u);
  EXPECT_EQ(replay.states[0].endpoint_id, 2u);
}

TEST(EndpointStateJournalTest, GarbageFlagBitsRejected) {
  std::vector<unsigned char> record = EncodedRecord(SampleState(1, 5));
  // Set an undefined flag bit and re-CRC: DecodePayload must reject —
  // future flags change meaning, guessing would corrupt state.
  record[EndpointStateJournal::kHeaderBytes + 24] |= 0x80;
  StoreU32(record.data() + record.size() - 4,
           Crc32(record.data() + 4,
                 8 + EndpointStateJournal::kPayloadBytes));
  EndpointPersistentState out;
  EXPECT_FALSE(EndpointStateJournal::DecodePayload(
      record.data() + EndpointStateJournal::kHeaderBytes, &out));
}

TEST(EndpointRecoveryTest, ColdStartWhenNoJournal) {
  ControlPlaneOptions options;
  options.num_endpoints = 4;
  ControlPlane plane(options, [](std::uint32_t, bool) { return true; });
  const EndpointRecoveryResult result =
      RecoverEndpointStates(TempPath("no_journal.lej"), &plane);
  EXPECT_FALSE(result.Warm());
  EXPECT_EQ(result.adopted, 0);
  EXPECT_FALSE(result.replay.file_found);
}

TEST(EndpointRecoveryTest, WarmRestartThroughRealJournal) {
  const std::string path = TempPath("warm.lej");
  {
    EndpointStateJournal journal({path});
    ASSERT_TRUE(journal.Append(SampleState(0, 40)));
    ASSERT_TRUE(journal.Append(SampleState(3, 41)));
    EndpointPersistentState bad = SampleState(2, 42);
    bad.endpoint_id = 99;  // out of the plane's range: plane rejects
    ASSERT_TRUE(journal.Append(bad));
  }

  ControlPlaneOptions options;
  options.num_endpoints = 4;
  std::vector<bool> hardware(4, true);
  ControlPlane plane(options, [&hardware](std::uint32_t id, bool enable) {
    hardware[id] = enable;
    return true;
  });
  const EndpointRecoveryResult result = RecoverEndpointStates(path, &plane);
  EXPECT_TRUE(result.Warm());
  EXPECT_EQ(result.adopted, 2);
  EXPECT_EQ(result.rejected, 1);
  // The restored disabled intent was re-asserted against the hardware.
  EXPECT_FALSE(plane.EndpointIntentEnabled(0));
  EXPECT_FALSE(hardware[0]);
  EXPECT_FALSE(hardware[3]);
  EXPECT_TRUE(hardware[1]);
  EXPECT_EQ(plane.SnapshotStats().warm_restores, 2u);
}

}  // namespace
}  // namespace limoncello
