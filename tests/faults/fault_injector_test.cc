#include "faults/fault_injector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "msr/simulated_msr_device.h"

namespace limoncello {
namespace {

constexpr MsrRegister kReg = 0x1a4;

TEST(FaultInjectorTest, EmptyPlanIsTransparent) {
  const FaultPlan plan;
  FaultInjector injector(&plan);
  for (int t = 0; t < 10; ++t) {
    injector.BeginTick();
    EXPECT_FALSE(injector.MachineDown());
    EXPECT_EQ(injector.FilterSample(0.5), 0.5);
    EXPECT_FALSE(injector.WriteFaulted(0, 4));
    EXPECT_FALSE(injector.ReadFaulted(3, 4));
  }
  EXPECT_FALSE(injector.stats().Any());
  EXPECT_EQ(injector.tick(), 9);
}

TEST(FaultInjectorTest, DropoutWindowDropsSamples) {
  FaultPlan plan;
  plan.AddTelemetryFault({2, 3, TelemetryFaultKind::kDropout, 0.0});
  FaultInjector injector(&plan);
  for (int t = 0; t < 7; ++t) {
    injector.BeginTick();
    const std::optional<double> out = injector.FilterSample(0.5);
    if (t >= 2 && t < 5) {
      EXPECT_FALSE(out.has_value()) << "tick " << t;
    } else {
      EXPECT_EQ(out, 0.5) << "tick " << t;
    }
  }
  EXPECT_EQ(injector.stats().telemetry_faults, 3u);
}

TEST(FaultInjectorTest, NanAndInfCorruptSingleSamples) {
  FaultPlan plan;
  plan.AddTelemetryFault({1, 1, TelemetryFaultKind::kNan, 0.0});
  plan.AddTelemetryFault({3, 1, TelemetryFaultKind::kInf, 0.0});
  FaultInjector injector(&plan);
  injector.BeginTick();  // tick 0
  EXPECT_EQ(injector.FilterSample(0.4), 0.4);
  injector.BeginTick();  // tick 1
  const std::optional<double> nan = injector.FilterSample(0.4);
  ASSERT_TRUE(nan.has_value());
  EXPECT_TRUE(std::isnan(*nan));
  injector.BeginTick();  // tick 2
  EXPECT_EQ(injector.FilterSample(0.4), 0.4);
  injector.BeginTick();  // tick 3
  const std::optional<double> inf = injector.FilterSample(0.4);
  ASSERT_TRUE(inf.has_value());
  EXPECT_TRUE(std::isinf(*inf));
}

TEST(FaultInjectorTest, StaleWindowFreezesLastGoodSampleBitwise) {
  FaultPlan plan;
  plan.AddTelemetryFault({1, 3, TelemetryFaultKind::kStale, 0.0});
  FaultInjector injector(&plan);
  injector.BeginTick();
  EXPECT_EQ(injector.FilterSample(0.25), 0.25);  // last good = 0.25
  const double fresh[] = {0.5, 0.6, 0.7};
  for (double sample : fresh) {
    injector.BeginTick();
    EXPECT_EQ(injector.FilterSample(sample), 0.25);
  }
  injector.BeginTick();
  EXPECT_EQ(injector.FilterSample(0.8), 0.8);  // window over
}

TEST(FaultInjectorTest, SpikeMultipliesTheSample) {
  FaultPlan plan;
  plan.AddTelemetryFault({0, 1, TelemetryFaultKind::kSpike, 25.0});
  FaultInjector injector(&plan);
  injector.BeginTick();
  EXPECT_EQ(injector.FilterSample(0.5), 12.5);
  injector.BeginTick();
  EXPECT_EQ(injector.FilterSample(0.5), 0.5);
}

TEST(FaultInjectorTest, TransientMsrFaultFailsAllWritesButNoReads) {
  FaultPlan plan;
  plan.AddMsrWriteFault({1, 1, -1});
  FaultInjector injector(&plan);
  injector.BeginTick();  // tick 0
  EXPECT_FALSE(injector.WriteFaulted(0, 4));
  injector.BeginTick();  // tick 1
  for (int cpu = 0; cpu < 4; ++cpu) {
    EXPECT_TRUE(injector.WriteFaulted(cpu, 4));
    EXPECT_FALSE(injector.ReadFaulted(cpu, 4));
  }
  injector.BeginTick();  // tick 2
  EXPECT_FALSE(injector.WriteFaulted(0, 4));
  EXPECT_EQ(injector.stats().msr_write_faults, 4u);
  EXPECT_EQ(injector.stats().msr_read_faults, 0u);
}

TEST(FaultInjectorTest, CoreFaultFailsReadsAndWritesOnOneCpuOnly) {
  FaultPlan plan;
  plan.AddMsrWriteFault({0, 2, /*cpu=*/5});  // 5 % 4 == 1
  FaultInjector injector(&plan);
  for (int t = 0; t < 2; ++t) {
    injector.BeginTick();
    for (int cpu = 0; cpu < 4; ++cpu) {
      EXPECT_EQ(injector.WriteFaulted(cpu, 4), cpu == 1);
      EXPECT_EQ(injector.ReadFaulted(cpu, 4), cpu == 1);
    }
  }
  injector.BeginTick();
  EXPECT_FALSE(injector.WriteFaulted(1, 4));
  EXPECT_EQ(injector.stats().msr_write_faults, 2u);
  EXPECT_EQ(injector.stats().msr_read_faults, 2u);
}

TEST(FaultInjectorTest, CrashMarksDownThenFiresRebootCallback) {
  FaultPlan plan;
  plan.AddCrash({2, 2});
  FaultInjector injector(&plan);
  int reboots = 0;
  injector.SetRebootCallback([&] { ++reboots; });
  for (int t = 0; t < 6; ++t) {
    injector.BeginTick();
    EXPECT_EQ(injector.MachineDown(), t == 2 || t == 3) << "tick " << t;
    if (t < 4) EXPECT_EQ(reboots, 0);
  }
  EXPECT_EQ(reboots, 1);  // fired once, at the start of tick 4
  EXPECT_EQ(injector.stats().crashes, 1u);
  EXPECT_EQ(injector.stats().reboots, 1u);
}

TEST(FaultInjectorTest, FaultyMsrDeviceFailsEverythingWhileDown) {
  FaultPlan plan;
  plan.AddCrash({1, 1});
  FaultInjector injector(&plan);
  SimulatedMsrDevice inner(2);
  FaultyMsrDevice device(&inner, &injector);
  EXPECT_EQ(device.num_cpus(), 2);

  injector.BeginTick();  // tick 0: up
  EXPECT_TRUE(device.Write(0, kReg, 0xf));
  EXPECT_EQ(device.Read(0, kReg), 0xfu);

  injector.BeginTick();  // tick 1: down
  EXPECT_FALSE(device.Write(0, kReg, 0x0));
  EXPECT_FALSE(device.Read(0, kReg).has_value());
  // Downtime failures are not injected-MSR-fault stats: the machine is
  // simply off.
  EXPECT_EQ(injector.stats().msr_write_faults, 0u);

  injector.BeginTick();  // tick 2: back up, register survived
  EXPECT_EQ(device.Read(0, kReg), 0xfu);
}

TEST(FaultInjectorTest, FaultyUtilizationSourceAlwaysSamplesInner) {
  // The decorator must sample the inner source even while a fault is
  // active, so any RNG the source consumes advances identically with and
  // without faults.
  class CountingSource : public UtilizationSource {
   public:
    std::optional<double> SampleUtilization() override {
      ++samples;
      return 0.5;
    }
    int samples = 0;
  };
  FaultPlan plan;
  plan.AddTelemetryFault({0, 2, TelemetryFaultKind::kDropout, 0.0});
  FaultInjector injector(&plan);
  CountingSource inner;
  FaultyUtilizationSource source(&inner, &injector);
  for (int t = 0; t < 4; ++t) {
    injector.BeginTick();
    const std::optional<double> out = source.SampleUtilization();
    EXPECT_EQ(out.has_value(), t >= 2);
  }
  EXPECT_EQ(inner.samples, 4);
}

}  // namespace
}  // namespace limoncello
