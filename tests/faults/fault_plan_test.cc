#include "faults/fault_plan.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace limoncello {
namespace {

FaultSpec BusySpec() {
  FaultSpec spec;
  spec.telemetry_dropout_rate = 0.05;
  spec.telemetry_nan_rate = 0.05;
  spec.telemetry_stale_rate = 0.03;
  spec.telemetry_spike_rate = 0.03;
  spec.msr_transient_rate = 0.05;
  spec.msr_core_fault_rate = 0.03;
  spec.crash_rate = 0.02;
  return spec;
}

void ExpectPlansEqual(const FaultPlan& a, const FaultPlan& b) {
  ASSERT_EQ(a.telemetry_faults().size(), b.telemetry_faults().size());
  for (std::size_t i = 0; i < a.telemetry_faults().size(); ++i) {
    const TelemetryFault& x = a.telemetry_faults()[i];
    const TelemetryFault& y = b.telemetry_faults()[i];
    EXPECT_EQ(x.tick, y.tick);
    EXPECT_EQ(x.duration_ticks, y.duration_ticks);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.magnitude, y.magnitude);
  }
  ASSERT_EQ(a.msr_faults().size(), b.msr_faults().size());
  for (std::size_t i = 0; i < a.msr_faults().size(); ++i) {
    EXPECT_EQ(a.msr_faults()[i].tick, b.msr_faults()[i].tick);
    EXPECT_EQ(a.msr_faults()[i].duration_ticks,
              b.msr_faults()[i].duration_ticks);
    EXPECT_EQ(a.msr_faults()[i].cpu, b.msr_faults()[i].cpu);
  }
  ASSERT_EQ(a.crashes().size(), b.crashes().size());
  for (std::size_t i = 0; i < a.crashes().size(); ++i) {
    EXPECT_EQ(a.crashes()[i].tick, b.crashes()[i].tick);
    EXPECT_EQ(a.crashes()[i].down_ticks, b.crashes()[i].down_ticks);
  }
}

TEST(FaultPlanTest, DefaultSpecGeneratesNothing) {
  const FaultPlan plan = FaultPlan::Generate(FaultSpec{}, 1000, Rng(7));
  EXPECT_TRUE(plan.Empty());
  EXPECT_FALSE(FaultSpec{}.Any());
  EXPECT_TRUE(BusySpec().Any());
}

TEST(FaultPlanTest, GenerateIsAPureFunctionOfSpecHorizonAndSeed) {
  const FaultPlan a = FaultPlan::Generate(BusySpec(), 500, Rng(99));
  const FaultPlan b = FaultPlan::Generate(BusySpec(), 500, Rng(99));
  EXPECT_FALSE(a.Empty());
  ExpectPlansEqual(a, b);
}

TEST(FaultPlanTest, DifferentSeedsGiveDifferentSchedules) {
  const FaultPlan a = FaultPlan::Generate(BusySpec(), 500, Rng(1));
  const FaultPlan b = FaultPlan::Generate(BusySpec(), 500, Rng(2));
  // With these rates over 500 ticks, identical schedules would require an
  // astronomically unlikely collision.
  const bool same_sizes =
      a.telemetry_faults().size() == b.telemetry_faults().size() &&
      a.msr_faults().size() == b.msr_faults().size() &&
      a.crashes().size() == b.crashes().size();
  bool identical = same_sizes;
  if (same_sizes) {
    for (std::size_t i = 0; i < a.telemetry_faults().size(); ++i) {
      identical &= a.telemetry_faults()[i].tick ==
                   b.telemetry_faults()[i].tick;
    }
  }
  EXPECT_FALSE(identical);
}

TEST(FaultPlanTest, EventsStayWithinHorizonAndMaxFaultTick) {
  FaultSpec spec = BusySpec();
  spec.max_fault_tick = 60;
  const FaultPlan plan = FaultPlan::Generate(spec, 400, Rng(13));
  ASSERT_FALSE(plan.Empty());
  for (const TelemetryFault& f : plan.telemetry_faults()) {
    EXPECT_GE(f.tick, 0);
    EXPECT_LE(f.tick, 60);
  }
  for (const MsrWriteFault& f : plan.msr_faults()) EXPECT_LE(f.tick, 60);
  for (const CrashFault& f : plan.crashes()) EXPECT_LE(f.tick, 60);

  const FaultPlan unbounded = FaultPlan::Generate(BusySpec(), 400, Rng(13));
  for (const TelemetryFault& f : unbounded.telemetry_faults()) {
    EXPECT_LT(f.tick, 400);
  }
}

TEST(FaultPlanTest, WindowsOfOneCategoryNeverOverlap) {
  FaultSpec spec = BusySpec();
  // Push the rates up so overlap would certainly occur without the
  // per-category window accounting.
  spec.telemetry_dropout_rate = 0.5;
  spec.msr_core_fault_rate = 0.5;
  spec.crash_rate = 0.5;
  const FaultPlan plan = FaultPlan::Generate(spec, 300, Rng(21));
  for (std::size_t i = 1; i < plan.telemetry_faults().size(); ++i) {
    const TelemetryFault& prev = plan.telemetry_faults()[i - 1];
    EXPECT_GE(plan.telemetry_faults()[i].tick,
              prev.tick + std::max(1, prev.duration_ticks));
  }
  for (std::size_t i = 1; i < plan.msr_faults().size(); ++i) {
    const MsrWriteFault& prev = plan.msr_faults()[i - 1];
    EXPECT_GE(plan.msr_faults()[i].tick,
              prev.tick + std::max(1, prev.duration_ticks));
  }
  for (std::size_t i = 1; i < plan.crashes().size(); ++i) {
    const CrashFault& prev = plan.crashes()[i - 1];
    // Crashes additionally leave a one-tick gap for the reboot.
    EXPECT_GE(plan.crashes()[i].tick,
              prev.tick + std::max(1, prev.down_ticks) + 1);
  }
}

TEST(FaultPlanTest, HigherRatesYieldMoreEvents) {
  FaultSpec sparse;
  sparse.telemetry_dropout_rate = 0.005;
  FaultSpec dense;
  dense.telemetry_dropout_rate = 0.2;
  const FaultPlan a = FaultPlan::Generate(sparse, 2000, Rng(5));
  const FaultPlan b = FaultPlan::Generate(dense, 2000, Rng(5));
  EXPECT_GT(b.telemetry_faults().size(), a.telemetry_faults().size());
}

TEST(FaultPlanTest, NanRateProducesBothNanAndInfSamples) {
  FaultSpec spec;
  spec.telemetry_nan_rate = 0.3;
  const FaultPlan plan = FaultPlan::Generate(spec, 1000, Rng(3));
  int nans = 0;
  int infs = 0;
  for (const TelemetryFault& f : plan.telemetry_faults()) {
    nans += f.kind == TelemetryFaultKind::kNan ? 1 : 0;
    infs += f.kind == TelemetryFaultKind::kInf ? 1 : 0;
  }
  EXPECT_GT(nans, 0);
  EXPECT_GT(infs, 0);
  EXPECT_EQ(nans + infs,
            static_cast<int>(plan.telemetry_faults().size()));
}

TEST(FaultPlanTest, ScriptedConstructionKeepsEventsInOrder) {
  FaultPlan plan;
  plan.AddTelemetryFault({2, 3, TelemetryFaultKind::kDropout, 0.0});
  plan.AddTelemetryFault({10, 1, TelemetryFaultKind::kSpike, 25.0});
  plan.AddMsrWriteFault({4, 2, -1});
  plan.AddCrash({20, 5});
  EXPECT_FALSE(plan.Empty());
  ASSERT_EQ(plan.telemetry_faults().size(), 2u);
  EXPECT_EQ(plan.telemetry_faults()[1].tick, 10);
  EXPECT_EQ(plan.telemetry_faults()[1].kind, TelemetryFaultKind::kSpike);
  ASSERT_EQ(plan.msr_faults().size(), 1u);
  ASSERT_EQ(plan.crashes().size(), 1u);
  EXPECT_EQ(plan.crashes()[0].down_ticks, 5);
}

TEST(FaultPlanTest, TransportRatesGenerateEveryKind) {
  FaultSpec spec;
  spec.transport_drop_rate = 0.05;
  spec.transport_reorder_rate = 0.05;
  spec.transport_duplicate_rate = 0.05;
  spec.transport_truncate_rate = 0.05;
  spec.transport_stale_rate = 0.05;
  ASSERT_TRUE(spec.AnyTransport());
  const FaultPlan plan = FaultPlan::Generate(spec, 2000, Rng(5));
  int by_kind[5] = {0, 0, 0, 0, 0};
  int last_index = -1;
  for (const TransportFault& f : plan.transport_faults()) {
    ASSERT_GE(f.frame_index, 0);
    ASSERT_LT(f.frame_index, 2000);
    // At most one fault per frame, strictly ascending.
    ASSERT_GT(f.frame_index, last_index);
    last_index = f.frame_index;
    ++by_kind[static_cast<int>(f.kind)];
  }
  for (int k = 0; k < 5; ++k) EXPECT_GT(by_kind[k], 0) << k;
}

TEST(FaultPlanTest, ScriptedTransportFaultsMustAscend) {
  FaultPlan plan;
  plan.AddTransportFault({3, TransportFaultKind::kDrop});
  plan.AddTransportFault({7, TransportFaultKind::kStale});
  EXPECT_FALSE(plan.Empty());
  ASSERT_EQ(plan.transport_faults().size(), 2u);
  EXPECT_EQ(plan.transport_faults()[1].kind, TransportFaultKind::kStale);
}

// The AnyTransport guard: a spec with no transport rates consumes no
// transport draws at all (legacy draw-stream compatibility), and a
// transport-only spec touches nothing but the transport schedule.
TEST(FaultPlanTest, TransportGuardIsolatesTheTransportCategory) {
  FaultSpec base;
  base.telemetry_nan_rate = 0.02;
  base.msr_transient_rate = 0.01;
  base.crash_rate = 0.005;
  ASSERT_FALSE(base.AnyTransport());
  const FaultPlan a = FaultPlan::Generate(base, 1000, Rng(17));
  EXPECT_TRUE(a.transport_faults().empty());
  EXPECT_FALSE(a.Empty());

  FaultSpec transport_only;
  transport_only.transport_drop_rate = 0.1;
  transport_only.transport_truncate_rate = 0.1;
  ASSERT_TRUE(transport_only.AnyTransport());
  const FaultPlan b = FaultPlan::Generate(transport_only, 1000, Rng(17));
  EXPECT_FALSE(b.transport_faults().empty());
  EXPECT_TRUE(b.telemetry_faults().empty());
  EXPECT_TRUE(b.msr_faults().empty());
  EXPECT_TRUE(b.crashes().empty());

  // Same seed, same spec: the transport schedule is reproducible.
  const FaultPlan c = FaultPlan::Generate(transport_only, 1000, Rng(17));
  ASSERT_EQ(b.transport_faults().size(), c.transport_faults().size());
  for (std::size_t i = 0; i < b.transport_faults().size(); ++i) {
    EXPECT_EQ(b.transport_faults()[i].frame_index,
              c.transport_faults()[i].frame_index);
    EXPECT_EQ(b.transport_faults()[i].kind, c.transport_faults()[i].kind);
  }
}

TEST(FaultPlanTest, TransportKindNamesAreDistinct) {
  EXPECT_STRNE(TransportFaultKindName(TransportFaultKind::kDrop),
               TransportFaultKindName(TransportFaultKind::kReorder));
  EXPECT_STRNE(TransportFaultKindName(TransportFaultKind::kDuplicate),
               TransportFaultKindName(TransportFaultKind::kStale));
  EXPECT_STRNE(TransportFaultKindName(TransportFaultKind::kTruncate),
               TransportFaultKindName(TransportFaultKind::kDrop));
}

TEST(FaultPlanTest, KindNamesAreDistinct) {
  EXPECT_STRNE(TelemetryFaultKindName(TelemetryFaultKind::kDropout),
               TelemetryFaultKindName(TelemetryFaultKind::kNan));
  EXPECT_STRNE(TelemetryFaultKindName(TelemetryFaultKind::kStale),
               TelemetryFaultKindName(TelemetryFaultKind::kSpike));
}

}  // namespace
}  // namespace limoncello
