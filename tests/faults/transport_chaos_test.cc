// ChaosTransport: scripted fault plans applied to a tagged frame stream.
// Each kind's delivery semantics are pinned exactly — these are the
// faults the control plane's trust boundary is proven against.
#include "faults/transport_chaos.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "faults/fault_plan.h"
#include "util/wire.h"

namespace limoncello {
namespace {

struct Delivery {
  std::uint64_t tag;
  std::size_t size;
};

// Harness: sends 8-byte tagged frames through a transport and records
// what comes out the other side.
struct Wire {
  FaultPlan plan;
  std::vector<Delivery> delivered;
  std::unique_ptr<ChaosTransport> transport;

  explicit Wire(FaultPlan p) : plan(std::move(p)) {
    transport = std::make_unique<ChaosTransport>(
        &plan, [this](const unsigned char* data, std::size_t size) {
          Delivery d;
          d.size = size;
          d.tag = size >= 8 ? LoadU64(data) : LoadU32(data);
          delivered.push_back(d);
        });
  }

  void SendTagged(std::uint64_t tag) {
    unsigned char frame[8];
    StoreU64(frame, tag);
    transport->Send(frame, sizeof(frame));
  }

  std::vector<std::uint64_t> Tags() const {
    std::vector<std::uint64_t> tags;
    for (const Delivery& d : delivered) tags.push_back(d.tag);
    return tags;
  }
};

TEST(ChaosTransportTest, NullPlanIsTransparent) {
  std::vector<std::uint64_t> tags;
  ChaosTransport transport(
      nullptr, [&tags](const unsigned char* data, std::size_t) {
        tags.push_back(LoadU64(data));
      });
  unsigned char frame[8];
  for (std::uint64_t t = 0; t < 4; ++t) {
    StoreU64(frame, t);
    transport.Send(frame, sizeof(frame));
  }
  EXPECT_EQ(tags, (std::vector<std::uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(transport.stats().delivered, 4u);
}

TEST(ChaosTransportTest, DropSwallowsExactlyTheFaultedFrame) {
  FaultPlan plan;
  plan.AddTransportFault({1, TransportFaultKind::kDrop});
  Wire wire(std::move(plan));
  for (std::uint64_t t = 0; t < 4; ++t) wire.SendTagged(t);
  EXPECT_EQ(wire.Tags(), (std::vector<std::uint64_t>{0, 2, 3}));
  EXPECT_EQ(wire.transport->stats().dropped, 1u);
  EXPECT_EQ(wire.transport->stats().sent, 4u);
  EXPECT_EQ(wire.transport->stats().delivered, 3u);
}

TEST(ChaosTransportTest, ReorderSwapsFrameWithSuccessor) {
  FaultPlan plan;
  plan.AddTransportFault({1, TransportFaultKind::kReorder});
  Wire wire(std::move(plan));
  for (std::uint64_t t = 0; t < 4; ++t) wire.SendTagged(t);
  EXPECT_EQ(wire.Tags(), (std::vector<std::uint64_t>{0, 2, 1, 3}));
  EXPECT_EQ(wire.transport->stats().reordered, 1u);
}

TEST(ChaosTransportTest, ReorderAtStreamEndReleasedByFlush) {
  FaultPlan plan;
  plan.AddTransportFault({2, TransportFaultKind::kReorder});
  Wire wire(std::move(plan));
  for (std::uint64_t t = 0; t < 3; ++t) wire.SendTagged(t);
  // Frame 2 is parked awaiting a successor that never comes.
  EXPECT_EQ(wire.Tags(), (std::vector<std::uint64_t>{0, 1}));
  wire.transport->Flush();
  EXPECT_EQ(wire.Tags(), (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(ChaosTransportTest, DuplicateDeliversTwiceBackToBack) {
  FaultPlan plan;
  plan.AddTransportFault({0, TransportFaultKind::kDuplicate});
  Wire wire(std::move(plan));
  wire.SendTagged(7);
  wire.SendTagged(8);
  EXPECT_EQ(wire.Tags(), (std::vector<std::uint64_t>{7, 7, 8}));
  EXPECT_EQ(wire.transport->stats().duplicated, 1u);
}

TEST(ChaosTransportTest, TruncateCutsTheFrameShort) {
  FaultPlan plan;
  plan.AddTransportFault({0, TransportFaultKind::kTruncate});
  Wire wire(std::move(plan));
  // 32-byte frame (> 16) is cut to half.
  unsigned char big[32] = {};
  StoreU64(big, 99);
  wire.transport->Send(big, sizeof(big));
  ASSERT_EQ(wire.delivered.size(), 1u);
  EXPECT_EQ(wire.delivered[0].size, 16u);
  EXPECT_EQ(wire.transport->stats().truncated, 1u);
}

TEST(ChaosTransportTest, StaleRedeliversThePreviousFrame) {
  FaultPlan plan;
  plan.AddTransportFault({1, TransportFaultKind::kStale});
  Wire wire(std::move(plan));
  for (std::uint64_t t = 0; t < 3; ++t) wire.SendTagged(t);
  // Frame 1 delivered, then frame 0 replayed late, then frame 2.
  EXPECT_EQ(wire.Tags(), (std::vector<std::uint64_t>{0, 1, 0, 2}));
  EXPECT_EQ(wire.transport->stats().staled, 1u);
}

TEST(ChaosTransportTest, StaleOnFirstFrameHasNothingToReplay) {
  FaultPlan plan;
  plan.AddTransportFault({0, TransportFaultKind::kStale});
  Wire wire(std::move(plan));
  wire.SendTagged(5);
  wire.SendTagged(6);
  EXPECT_EQ(wire.Tags(), (std::vector<std::uint64_t>{5, 6}));
}

TEST(ChaosTransportTest, CountersBalanceUnderMixedFaults) {
  FaultPlan plan;
  plan.AddTransportFault({0, TransportFaultKind::kDrop});
  plan.AddTransportFault({2, TransportFaultKind::kDuplicate});
  plan.AddTransportFault({4, TransportFaultKind::kStale});
  plan.AddTransportFault({6, TransportFaultKind::kTruncate});
  Wire wire(std::move(plan));
  for (std::uint64_t t = 0; t < 8; ++t) wire.SendTagged(t);
  wire.transport->Flush();
  const ChaosTransport::Stats& stats = wire.transport->stats();
  EXPECT_EQ(stats.sent, 8u);
  // delivered = sent - drops + duplicates + stale replays.
  EXPECT_EQ(stats.delivered,
            stats.sent.value() - stats.dropped.value() +
                stats.duplicated.value() + stats.staled.value());
}

}  // namespace
}  // namespace limoncello
