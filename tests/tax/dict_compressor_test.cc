#include "tax/dict_compressor.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace limoncello {
namespace {

SoftPrefetchConfig EnabledConfig() {
  SoftPrefetchConfig config;
  config.distance_bytes = 512;
  config.degree_bytes = 256;
  config.min_size_bytes = 0;
  return config;
}

std::string MakeCompressible(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::string s;
  s.reserve(n + 40);
  const char* phrase = "the quick brown limoncello daemon ";
  while (s.size() < n) {
    if (rng.NextBernoulli(0.7)) {
      s += phrase;
    } else {
      s += static_cast<char>('a' + rng.NextBounded(26));
    }
  }
  s.resize(n);
  return s;
}

std::string MakeIncompressible(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.NextU64());
  return s;
}

TEST(DictCompressorTest, RoundTripCompressibleNoDictionary) {
  DictCompressor codec("");
  const std::string input = MakeCompressible(200 * 1024, 1);
  std::string compressed;
  std::string output;
  for (const bool prefetch : {false, true}) {
    const SoftPrefetchConfig config =
        prefetch ? EnabledConfig() : SoftPrefetchConfig::Disabled();
    codec.Compress(input, config, &compressed);
    EXPECT_LT(compressed.size(), input.size() / 2)
        << "repetitive input should compress well";
    ASSERT_TRUE(codec.Decompress(compressed, config, &output));
    EXPECT_EQ(output, input);
  }
}

TEST(DictCompressorTest, RoundTripIncompressible) {
  DictCompressor codec("");
  const std::string input = MakeIncompressible(64 * 1024, 2);
  std::string compressed;
  codec.Compress(input, EnabledConfig(), &compressed);
  // Random bytes should expand only by the token framing overhead.
  EXPECT_LT(compressed.size(), input.size() + input.size() / 16 + 64);
  std::string output;
  ASSERT_TRUE(codec.Decompress(compressed, EnabledConfig(), &output));
  EXPECT_EQ(output, input);
}

TEST(DictCompressorTest, DictionaryMatchesShrinkOutput) {
  // Input built mostly from dictionary substrings: the dictionary-aware
  // codec must beat the dictionary-free one on the very first bytes.
  const std::string dictionary = MakeCompressible(32 * 1024, 3);
  Rng rng(4);
  std::string input;
  while (input.size() < 100 * 1024) {
    const std::size_t len = 32 + rng.NextBounded(200);
    const std::size_t pos = rng.NextBounded(dictionary.size() - len);
    input.append(dictionary, pos, len);
  }

  DictCompressor with_dict(dictionary);
  DictCompressor without_dict("");
  std::string a;
  std::string b;
  with_dict.Compress(input, SoftPrefetchConfig::Disabled(), &a);
  without_dict.Compress(input, SoftPrefetchConfig::Disabled(), &b);
  EXPECT_LT(a.size(), b.size());

  std::string output;
  ASSERT_TRUE(with_dict.Decompress(a, SoftPrefetchConfig::Disabled(),
                                   &output));
  EXPECT_EQ(output, input);
}

TEST(DictCompressorTest, MatchCrossingDictionaryBoundary) {
  // A match that starts in the dictionary and continues into the window:
  // input begins with the dictionary's tail followed by the input's own
  // start, so the second copy can reference across the boundary.
  const std::string dictionary = "abcdefghijklmnopqrstuvwxyz0123456789";
  DictCompressor codec(dictionary);
  std::string input = dictionary.substr(20);  // "uvwxyz0123456789"
  input += "XYZ";
  input += dictionary.substr(20) + "XYZ";  // repeat: crosses into window
  std::string compressed;
  codec.Compress(input, SoftPrefetchConfig::Disabled(), &compressed);
  std::string output;
  ASSERT_TRUE(codec.Decompress(compressed, SoftPrefetchConfig::Disabled(),
                               &output));
  EXPECT_EQ(output, input);
}

TEST(DictCompressorTest, DecompressWithWrongDictionaryFailsOrDiffers) {
  const std::string dictionary = MakeCompressible(16 * 1024, 5);
  DictCompressor codec(dictionary);
  Rng rng(6);
  std::string input;
  while (input.size() < 32 * 1024) {
    const std::size_t len = 16 + rng.NextBounded(100);
    const std::size_t pos = rng.NextBounded(dictionary.size() - len);
    input.append(dictionary, pos, len);
  }
  std::string compressed;
  codec.Compress(input, SoftPrefetchConfig::Disabled(), &compressed);

  DictCompressor other(MakeCompressible(16 * 1024, 7));
  std::string output;
  const bool ok =
      other.Decompress(compressed, SoftPrefetchConfig::Disabled(), &output);
  EXPECT_TRUE(!ok || output != input);
}

TEST(DictCompressorTest, RejectsCorruptStreams) {
  DictCompressor codec("");
  std::string output;
  // Unknown token tag.
  EXPECT_FALSE(codec.Decompress(std::string("\x05\x07junk", 6),
                                SoftPrefetchConfig::Disabled(), &output));
  // Literal length past the end of the stream.
  std::string bad;
  bad.push_back(0x10);  // uncompressed size 16
  bad.push_back(0x00);  // literal tag
  bad.push_back(0x10);  // claims 16 literal bytes
  bad += "abc";         // only 3 present
  EXPECT_FALSE(
      codec.Decompress(bad, SoftPrefetchConfig::Disabled(), &output));
  // Match offset pointing before the start of dictionary + window.
  std::string bad_offset;
  bad_offset.push_back(0x08);
  bad_offset.push_back(0x01);  // match tag
  bad_offset.push_back(0x7f);  // offset 127: nothing that far back
  bad_offset.push_back(0x08);  // length 8
  EXPECT_FALSE(codec.Decompress(bad_offset, SoftPrefetchConfig::Disabled(),
                                &output));
}

TEST(DictCompressorTest, EmptyInputRoundTrips) {
  DictCompressor codec("dictionary");
  std::string compressed;
  codec.Compress("", SoftPrefetchConfig::Disabled(), &compressed);
  std::string output = "stale";
  ASSERT_TRUE(codec.Decompress(compressed, SoftPrefetchConfig::Disabled(),
                               &output));
  EXPECT_TRUE(output.empty());
}

TEST(DictCompressorTest, InstanceReuseAcrossPayloads) {
  // The match-finder scratch is reused across calls; later calls must not
  // see stale chains from earlier (larger) payloads.
  DictCompressor codec(MakeCompressible(8 * 1024, 8));
  std::string compressed;
  std::string output;
  for (const std::size_t size : {64 * 1024, 1024, 128 * 1024, 32}) {
    const std::string input = MakeCompressible(size, size);
    codec.Compress(input, EnabledConfig(), &compressed);
    ASSERT_TRUE(codec.Decompress(compressed, EnabledConfig(), &output));
    EXPECT_EQ(output, input) << "size=" << size;
  }
}

}  // namespace
}  // namespace limoncello
