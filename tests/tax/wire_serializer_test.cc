#include "tax/wire_serializer.h"

#include <gtest/gtest.h>

#include "tax/block_compressor.h"
#include "util/rng.h"

namespace limoncello {
namespace {

std::string RandomString(std::size_t n, std::uint64_t seed) {
  std::string s(n, '\0');
  Rng rng(seed);
  for (char& c : s) c = static_cast<char>(rng.NextBounded(256));
  return s;
}

WireMessage SampleMessage() {
  return {
      {1, "hello"},
      {2, ""},
      {300, RandomString(10000, 1)},
      {7, std::string(1, '\0')},
  };
}

TEST(WireSerializerTest, RoundTrip) {
  WireSerializer serializer;
  std::string wire;
  serializer.Serialize(SampleMessage(), &wire);
  WireMessage parsed;
  ASSERT_TRUE(serializer.Parse(wire, &parsed));
  EXPECT_EQ(parsed, SampleMessage());
}

TEST(WireSerializerTest, EmptyMessage) {
  WireSerializer serializer;
  std::string wire;
  serializer.Serialize({}, &wire);
  EXPECT_TRUE(wire.empty());
  WireMessage parsed;
  ASSERT_TRUE(serializer.Parse(wire, &parsed));
  EXPECT_TRUE(parsed.empty());
}

TEST(WireSerializerTest, EncodedSizeMatchesActual) {
  WireSerializer serializer;
  const WireMessage message = SampleMessage();
  std::string wire;
  serializer.Serialize(message, &wire);
  EXPECT_EQ(wire.size(), WireSerializer::EncodedSize(message));
}

TEST(WireSerializerTest, PrefetchingVariantIdenticalBytes) {
  SoftPrefetchConfig config;
  config.min_size_bytes = 0;
  WireSerializer plain;
  WireSerializer prefetching(config);
  std::string a;
  std::string b;
  plain.Serialize(SampleMessage(), &a);
  prefetching.Serialize(SampleMessage(), &b);
  EXPECT_EQ(a, b);
  WireMessage parsed;
  ASSERT_TRUE(prefetching.Parse(a, &parsed));
  EXPECT_EQ(parsed, SampleMessage());
}

TEST(WireSerializerTest, ParseRejectsTruncatedPayload) {
  WireSerializer serializer;
  std::string wire;
  serializer.Serialize({{1, "payload_that_gets_cut"}}, &wire);
  WireMessage parsed;
  EXPECT_FALSE(serializer.Parse(
      std::string_view(wire).substr(0, wire.size() - 3), &parsed));
}

TEST(WireSerializerTest, ParseRejectsTruncatedHeader) {
  WireSerializer serializer;
  std::string wire;
  serializer.Serialize({{1000000, "x"}}, &wire);  // multi-byte field key
  WireMessage parsed;
  EXPECT_FALSE(
      serializer.Parse(std::string_view(wire).substr(0, 1), &parsed));
}

TEST(WireSerializerTest, ParseRejectsFieldNumberOverflow) {
  std::string wire;
  AppendVarint(1ULL << 40, &wire);  // field number > uint32
  AppendVarint(0, &wire);
  WireMessage parsed;
  EXPECT_FALSE(WireSerializer().Parse(wire, &parsed));
}

TEST(WireSerializerTest, LargePayloadRoundTrip) {
  WireSerializer serializer;
  const WireMessage message = {{5, RandomString(2 * 1024 * 1024, 9)}};
  std::string wire;
  serializer.Serialize(message, &wire);
  WireMessage parsed;
  ASSERT_TRUE(serializer.Parse(wire, &parsed));
  EXPECT_EQ(parsed, message);
}

class SerializerFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerializerFuzzTest, RandomMessagesRoundTrip) {
  Rng rng(GetParam());
  WireMessage message;
  const int fields = static_cast<int>(rng.NextBounded(20));
  for (int f = 0; f < fields; ++f) {
    WireField field;
    field.field_number = static_cast<std::uint32_t>(rng.NextU64());
    field.payload = RandomString(rng.NextBounded(5000), rng.NextU64());
    message.push_back(std::move(field));
  }
  WireSerializer serializer;
  std::string wire;
  serializer.Serialize(message, &wire);
  WireMessage parsed;
  ASSERT_TRUE(serializer.Parse(wire, &parsed));
  EXPECT_EQ(parsed, message);
}

TEST_P(SerializerFuzzTest, RandomBytesNeverCrashParse) {
  Rng rng(GetParam() + 1000);
  WireSerializer serializer;
  for (int i = 0; i < 200; ++i) {
    const std::string junk = RandomString(rng.NextBounded(300), rng.NextU64());
    WireMessage parsed;
    serializer.Parse(junk, &parsed);  // may fail, must not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace limoncello
