#include "tax/hash_join.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace limoncello {
namespace {

SoftPrefetchConfig EnabledConfig() {
  SoftPrefetchConfig config;
  config.distance_bytes = 256;
  config.degree_bytes = 128;
  config.min_size_bytes = 0;
  return config;
}

struct Reference {
  std::unordered_multimap<std::uint64_t, std::uint64_t> map;

  std::uint64_t Probe(const std::vector<std::uint64_t>& keys,
                      std::vector<std::uint64_t>* sums) const {
    sums->assign(keys.size(), 0);
    std::uint64_t matches = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      auto [lo, hi] = map.equal_range(keys[i]);
      for (auto it = lo; it != hi; ++it) {
        (*sums)[i] += it->second;
        ++matches;
      }
    }
    return matches;
  }
};

TEST(HashJoinTest, MatchesUnorderedMultimapReference) {
  Rng gen(0x1011);
  const std::size_t n = 20000;
  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint64_t> values(n);
  Reference ref;
  for (std::size_t i = 0; i < n; ++i) {
    // Narrow key space: plenty of duplicates (multiset semantics).
    keys[i] = gen.NextBounded(n / 2);
    values[i] = gen.NextBounded(1000);
    ref.map.emplace(keys[i], values[i]);
  }

  std::vector<std::uint64_t> probes(3 * n);
  for (auto& p : probes) p = gen.NextBounded(n);  // ~50% hit rate

  std::vector<std::uint64_t> expected_sums;
  const std::uint64_t expected_matches = ref.Probe(probes, &expected_sums);

  for (const bool prefetch : {false, true}) {
    const SoftPrefetchConfig config =
        prefetch ? EnabledConfig() : SoftPrefetchConfig::Disabled();
    HashJoinTable table;
    table.Build(keys.data(), values.data(), n, config);
    EXPECT_EQ(table.size(), n);
    std::vector<std::uint64_t> sums(probes.size());
    const std::uint64_t matches =
        table.Probe(probes.data(), probes.size(), sums.data(), config);
    EXPECT_EQ(matches, expected_matches) << "prefetch=" << prefetch;
    EXPECT_EQ(sums, expected_sums) << "prefetch=" << prefetch;
  }
}

TEST(HashJoinTest, EmptyTableProbesReturnZero) {
  HashJoinTable table;
  table.Build(nullptr, nullptr, 0);
  EXPECT_EQ(table.size(), 0u);
  std::vector<std::uint64_t> probes = {1, 2, 3};
  std::vector<std::uint64_t> sums(probes.size(), 77);
  EXPECT_EQ(table.Probe(probes.data(), probes.size(), sums.data()), 0u);
  for (const std::uint64_t s : sums) EXPECT_EQ(s, 0u);
}

TEST(HashJoinTest, UnmatchedProbesWriteZero) {
  const std::vector<std::uint64_t> keys = {10, 20, 30};
  const std::vector<std::uint64_t> values = {1, 2, 3};
  HashJoinTable table;
  table.Build(keys.data(), values.data(), keys.size());
  const std::vector<std::uint64_t> probes = {20, 999, 10, 10};
  std::vector<std::uint64_t> sums(probes.size(), 123);
  const std::uint64_t matches =
      table.Probe(probes.data(), probes.size(), sums.data());
  EXPECT_EQ(matches, 3u);
  EXPECT_EQ(sums, (std::vector<std::uint64_t>{2, 0, 1, 1}));
}

TEST(HashJoinTest, DuplicateKeysSumAllValues) {
  const std::vector<std::uint64_t> keys = {7, 7, 7, 8};
  const std::vector<std::uint64_t> values = {100, 10, 1, 5};
  HashJoinTable table;
  table.Build(keys.data(), values.data(), keys.size());
  std::vector<std::uint64_t> sums(2);
  const std::vector<std::uint64_t> probes = {7, 8};
  EXPECT_EQ(table.Probe(probes.data(), probes.size(), sums.data()), 4u);
  EXPECT_EQ(sums[0], 111u);
  EXPECT_EQ(sums[1], 5u);
}

TEST(HashJoinTest, RebuildReplacesContents) {
  HashJoinTable table;
  const std::vector<std::uint64_t> keys1 = {1, 2, 3, 4};
  const std::vector<std::uint64_t> vals1 = {10, 20, 30, 40};
  table.Build(keys1.data(), vals1.data(), keys1.size());

  // Smaller rebuild: old entries must be gone, capacity reuse or not.
  const std::vector<std::uint64_t> keys2 = {5, 6};
  const std::vector<std::uint64_t> vals2 = {50, 60};
  table.Build(keys2.data(), vals2.data(), keys2.size());
  EXPECT_EQ(table.size(), 2u);
  const std::vector<std::uint64_t> probes = {1, 2, 5, 6};
  std::vector<std::uint64_t> sums(probes.size());
  EXPECT_EQ(table.Probe(probes.data(), probes.size(), sums.data()), 2u);
  EXPECT_EQ(sums, (std::vector<std::uint64_t>{0, 0, 50, 60}));
}

TEST(HashJoinTest, FootprintGrowsWithBuildSide) {
  HashJoinTable small;
  HashJoinTable large;
  std::vector<std::uint64_t> keys(4096);
  std::vector<std::uint64_t> values(4096);
  Rng rng(9);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.NextU64();
    values[i] = i;
  }
  small.Build(keys.data(), values.data(), 128);
  large.Build(keys.data(), values.data(), keys.size());
  EXPECT_GT(large.FootprintBytes(), small.FootprintBytes());
  EXPECT_GE(large.bucket_count(), 2 * keys.size());
}

}  // namespace
}  // namespace limoncello
