#include "tax/block_hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/rng.h"

namespace limoncello {
namespace {

std::string RandomString(std::size_t n, std::uint64_t seed) {
  std::string s(n, '\0');
  Rng rng(seed);
  for (char& c : s) c = static_cast<char>(rng.NextBounded(256));
  return s;
}

TEST(BlockHash64Test, DeterministicForSameInput) {
  const std::string data = RandomString(10000, 1);
  EXPECT_EQ(BlockHash64(data.data(), data.size(), 7),
            BlockHash64(data.data(), data.size(), 7));
}

TEST(BlockHash64Test, SeedChangesHash) {
  const std::string data = RandomString(100, 2);
  EXPECT_NE(BlockHash64(data.data(), data.size(), 1),
            BlockHash64(data.data(), data.size(), 2));
}

TEST(BlockHash64Test, SingleBitFlipChangesHash) {
  std::string data = RandomString(4096, 3);
  const std::uint64_t before = BlockHash64(data.data(), data.size());
  data[2048] ^= 1;
  EXPECT_NE(BlockHash64(data.data(), data.size()), before);
}

TEST(BlockHash64Test, AllLengthsProduceDistinctishHashes) {
  // Every length 0..200 of the same buffer hashes differently (length is
  // mixed in).
  const std::string data = RandomString(256, 4);
  std::set<std::uint64_t> hashes;
  for (std::size_t n = 0; n <= 200; ++n) {
    hashes.insert(BlockHash64(data.data(), n));
  }
  EXPECT_EQ(hashes.size(), 201u);
}

TEST(BlockHash64Test, PrefetchingDoesNotChangeValue) {
  const std::string data = RandomString(1 << 20, 5);
  SoftPrefetchConfig config;
  config.min_size_bytes = 0;
  EXPECT_EQ(BlockHash64(data.data(), data.size(), 0, config),
            BlockHash64(data.data(), data.size(), 0));
}

TEST(BlockHash64Test, AvalancheDistributesBits) {
  // Hash a counter; each output bit should flip ~50 % of the time.
  constexpr int kN = 4096;
  int bit_counts[64] = {0};
  for (std::uint64_t i = 0; i < kN; ++i) {
    const std::uint64_t h = BlockHash64(&i, sizeof(i));
    for (int b = 0; b < 64; ++b) {
      if ((h >> b) & 1) ++bit_counts[b];
    }
  }
  for (int b = 0; b < 64; ++b) {
    EXPECT_NEAR(static_cast<double>(bit_counts[b]) / kN, 0.5, 0.06)
        << "bit " << b;
  }
}

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC32C test vectors (RFC 3720 / iSCSI).
  const std::string nine = "123456789";
  EXPECT_EQ(Crc32c(nine.data(), nine.size()), 0xe3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32cTest, PrefetchingDoesNotChangeValue) {
  const std::string data = RandomString(1 << 18, 6);
  SoftPrefetchConfig config;
  config.min_size_bytes = 0;
  EXPECT_EQ(Crc32c(data.data(), data.size(), config),
            Crc32c(data.data(), data.size()));
}

TEST(Crc32cTest, DetectsCorruption) {
  std::string data = RandomString(1000, 7);
  const std::uint32_t before = Crc32c(data.data(), data.size());
  data[500] ^= 0x40;
  EXPECT_NE(Crc32c(data.data(), data.size()), before);
}

class HashSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashSizeTest, PrefetchedAndPlainAgreeAtEverySize) {
  const std::string data = RandomString(GetParam(), GetParam() + 99);
  SoftPrefetchConfig config;
  config.min_size_bytes = 0;
  config.distance_bytes = 256;
  config.degree_bytes = 128;
  EXPECT_EQ(BlockHash64(data.data(), data.size(), 1, config),
            BlockHash64(data.data(), data.size(), 1));
  EXPECT_EQ(Crc32c(data.data(), data.size(), config),
            Crc32c(data.data(), data.size()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, HashSizeTest,
                         ::testing::Values(0, 1, 7, 8, 31, 32, 33, 100,
                                           4096, 65536));

}  // namespace
}  // namespace limoncello
