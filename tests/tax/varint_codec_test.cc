#include "tax/varint_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "util/rng.h"

namespace limoncello {
namespace {

SoftPrefetchConfig EnabledConfig() {
  SoftPrefetchConfig config;
  config.distance_bytes = 256;
  config.degree_bytes = 128;
  config.min_size_bytes = 0;
  return config;
}

TEST(VarintCodecTest, SizeOfBoundaryValues) {
  // Each length-k encoding covers [2^(7(k-1)), 2^(7k) - 1].
  EXPECT_EQ(VarintSizeOf(0), 1u);
  EXPECT_EQ(VarintSizeOf(0x7f), 1u);
  EXPECT_EQ(VarintSizeOf(0x80), 2u);
  EXPECT_EQ(VarintSizeOf(0x3fff), 2u);
  EXPECT_EQ(VarintSizeOf(0x4000), 3u);
  EXPECT_EQ(VarintSizeOf((1ull << 35) - 1), 5u);
  EXPECT_EQ(VarintSizeOf(1ull << 35), 6u);
  EXPECT_EQ(VarintSizeOf((1ull << 63) - 1), 9u);
  EXPECT_EQ(VarintSizeOf(1ull << 63), 10u);
  EXPECT_EQ(VarintSizeOf(std::numeric_limits<std::uint64_t>::max()), 10u);
}

TEST(VarintCodecTest, RoundTripBoundaryValues) {
  const std::vector<std::uint64_t> values = {
      0,
      1,
      0x7f,                                       // 1-byte max
      0x80,                                       // 2-byte min
      0x3fff,                                     // 2-byte max
      0x4000,                                     // 3-byte min
      (1ull << 35) - 1,                           // 5-byte max
      1ull << 35,                                 // 6-byte min
      (1ull << 63) - 1,                           // 9-byte max
      1ull << 63,                                 // 10-byte min
      std::numeric_limits<std::uint64_t>::max(),  // 10-byte max
  };
  std::string encoded;
  VarintEncodeStream(values.data(), values.size(), &encoded);
  EXPECT_EQ(encoded.size(), VarintStreamSize(values.data(), values.size()));

  std::vector<std::uint64_t> decoded;
  ASSERT_TRUE(VarintDecodeStream(encoded, &decoded));
  EXPECT_EQ(decoded, values);
}

TEST(VarintCodecTest, RoundTripRandomStreamWithPrefetchArms) {
  Rng rng(0xbeef);
  std::vector<std::uint64_t> values(5000);
  for (auto& v : values) v = rng.NextU64() >> rng.NextBounded(64);

  for (const bool prefetch : {false, true}) {
    const SoftPrefetchConfig config =
        prefetch ? EnabledConfig() : SoftPrefetchConfig::Disabled();
    std::string encoded;
    VarintEncodeStream(values.data(), values.size(), config, &encoded);
    std::vector<std::uint64_t> decoded;
    ASSERT_TRUE(VarintDecodeStream(encoded, config, &decoded));
    EXPECT_EQ(decoded, values) << "prefetch=" << prefetch;
  }
}

TEST(VarintCodecTest, EmptyStream) {
  std::string encoded;
  VarintEncodeStream(nullptr, 0, &encoded);
  EXPECT_TRUE(encoded.empty());
  std::vector<std::uint64_t> decoded = {42};
  ASSERT_TRUE(VarintDecodeStream(encoded, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(VarintCodecTest, RejectsTruncationAtEveryPosition) {
  const std::vector<std::uint64_t> values = {
      0x80, 0x4000, 1ull << 35,
      std::numeric_limits<std::uint64_t>::max()};
  std::string encoded;
  VarintEncodeStream(values.data(), values.size(), &encoded);

  std::vector<std::uint64_t> decoded;
  for (std::size_t cut = 1; cut < encoded.size(); ++cut) {
    const std::string_view truncated(encoded.data(), cut);
    // Only cuts that land mid-varint are malformed; cuts on a value
    // boundary decode a shorter valid stream.
    std::size_t boundary = 0;
    bool on_boundary = false;
    for (const std::uint64_t v : values) {
      boundary += VarintSizeOf(v);
      if (boundary == cut) on_boundary = true;
    }
    EXPECT_EQ(VarintDecodeStream(truncated, &decoded), on_boundary)
        << "cut=" << cut;
  }
}

TEST(VarintCodecTest, RejectsOverlongEncodings) {
  // 11 continuation bytes: no terminator within the 10-byte limit.
  const std::string too_long(11, static_cast<char>(0x80));
  std::vector<std::uint64_t> decoded;
  EXPECT_FALSE(VarintDecodeStream(too_long, &decoded));

  // 10th byte with bits beyond 2^64 (value would overflow).
  std::string overflow(9, static_cast<char>(0xff));
  overflow.push_back(0x02);  // bit 65
  EXPECT_FALSE(VarintDecodeStream(overflow, &decoded));

  // Maximal legal 10-byte encoding still decodes.
  std::string max_legal(9, static_cast<char>(0xff));
  max_legal.push_back(0x01);
  ASSERT_TRUE(VarintDecodeStream(max_legal, &decoded));
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], std::numeric_limits<std::uint64_t>::max());
}

TEST(VarintCodecTest, SteadyStateReuseKeepsContents) {
  // Decoding into a reused vector with stale contents must fully replace
  // them (the adaptive path reuses buffers).
  std::vector<std::uint64_t> values = {1, 2, 3};
  std::string encoded;
  VarintEncodeStream(values.data(), values.size(), &encoded);
  std::vector<std::uint64_t> decoded(100, 9999);
  ASSERT_TRUE(VarintDecodeStream(encoded, &decoded));
  EXPECT_EQ(decoded, values);
}

}  // namespace
}  // namespace limoncello
