#include "tax/tax_tuner.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "softpf/prefetch_site_registry.h"
#include "softpf/size_class.h"

namespace limoncello {
namespace {

std::vector<TuneRegime> BothRegimes() {
  return {TuneRegime::kHwOn, TuneRegime::kHwOffEmulated};
}

TEST(ModelProbeTest, PureFunctionOfInputs) {
  ModelProbe a(42);
  ModelProbe b(42);
  SoftPrefetchConfig config;
  config.distance_bytes = 512;
  config.degree_bytes = 128;
  for (int k = 0; k < kNumTaxKernels; ++k) {
    for (int sc = kFirstTunedSizeClass; sc < kNumSizeClasses; ++sc) {
      for (const TuneRegime regime : BothRegimes()) {
        const double va = a.Measure(TaxKernelAt(k), sc, config, regime);
        const double vb = b.Measure(TaxKernelAt(k), sc, config, regime);
        EXPECT_EQ(va, vb) << "kernel=" << k << " sc=" << sc;
        EXPECT_GT(va, 0.0);
      }
    }
  }
}

TEST(ModelProbeTest, SeedChangesTheSurface) {
  ModelProbe a(1);
  ModelProbe b(2);
  SoftPrefetchConfig config;
  config.distance_bytes = 1024;
  config.degree_bytes = 256;
  int differing = 0;
  for (int k = 0; k < kNumTaxKernels; ++k) {
    if (a.Measure(TaxKernelAt(k), 2, config, TuneRegime::kHwOffEmulated) !=
        b.Measure(TaxKernelAt(k), 2, config, TuneRegime::kHwOffEmulated)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

// The headline determinism contract: the same grid and the same seed must
// choose identical parameters on every cell, run to run. The chosen config
// is what ships in tuned_params.cc, so any nondeterminism here would make
// --emit-params output churn.
TEST(TunerSweepTest, SameGridAndSeedChooseIdenticalParams) {
  const TunerGrid grid = TunerGrid::Reduced();
  const PrefetchSiteRegistry registry =
      PrefetchSiteRegistry::DeployedDefault();

  ModelProbe probe1(0xfeed);
  ModelProbe probe2(0xfeed);
  const TunerReport r1 =
      RunTunerSweep(probe1, grid, BothRegimes(), registry);
  const TunerReport r2 =
      RunTunerSweep(probe2, grid, BothRegimes(), registry);

  ASSERT_EQ(r1.cells.size(), r2.cells.size());
  ASSERT_FALSE(r1.cells.empty());
  for (std::size_t i = 0; i < r1.cells.size(); ++i) {
    const TunedCell& a = r1.cells[i];
    const TunedCell& b = r2.cells[i];
    EXPECT_EQ(a.kernel, b.kernel);
    EXPECT_EQ(a.size_class, b.size_class);
    EXPECT_EQ(a.regime, b.regime);
    EXPECT_EQ(a.best.enabled, b.best.enabled) << "cell " << i;
    EXPECT_EQ(a.best.distance_bytes, b.best.distance_bytes) << "cell " << i;
    EXPECT_EQ(a.best.degree_bytes, b.best.degree_bytes) << "cell " << i;
    EXPECT_EQ(a.best.locality, b.best.locality) << "cell " << i;
    EXPECT_EQ(a.tuned_mbps, b.tuned_mbps) << "cell " << i;
  }
  EXPECT_EQ(r1.geomean_speedup_hw_off, r2.geomean_speedup_hw_off);
  EXPECT_EQ(r1.geomean_speedup_hw_on, r2.geomean_speedup_hw_on);
}

TEST(TunerSweepTest, CoversEveryKernelAndTunedSizeClass) {
  const TunerGrid grid = TunerGrid::Reduced();
  ModelProbe probe(7);
  const TunerReport report = RunTunerSweep(
      probe, grid, {TuneRegime::kHwOffEmulated},
      PrefetchSiteRegistry::DeployedDefault());
  const int tuned_classes = kNumSizeClasses - kFirstTunedSizeClass;
  EXPECT_EQ(report.cells.size(),
            static_cast<std::size_t>(kNumTaxKernels * tuned_classes));
  // The model surface guarantees attainable gains in the hw-off regime, so
  // a correct sweep must find a geomean above the hysteresis floor.
  EXPECT_GT(report.geomean_speedup_hw_off, 1.0);
}

TEST(TunerSweepTest, ChosenConfigNeverLosesToDisabledOnTheModel) {
  // On a noise-free surface the sweep's hysteresis guarantees: either the
  // cell ships disabled, or tuned throughput beats untuned by min_gain.
  const TunerGrid grid = TunerGrid::Reduced();
  ModelProbe probe(99);
  const TunerReport report = RunTunerSweep(
      probe, grid, {TuneRegime::kHwOffEmulated},
      PrefetchSiteRegistry::DeployedDefault());
  for (const TunedCell& cell : report.cells) {
    if (cell.best.enabled) {
      EXPECT_GE(cell.tuned_mbps, cell.untuned_mbps * grid.min_gain);
    } else {
      EXPECT_EQ(cell.tuned_mbps, cell.untuned_mbps);
    }
  }
}

TEST(SelectTunedParamsTest, KeepsOnlyHwOffCellsInOrder) {
  const TunerGrid grid = TunerGrid::Reduced();
  ModelProbe probe(3);
  const TunerReport report =
      RunTunerSweep(probe, grid, BothRegimes(),
                    PrefetchSiteRegistry::DeployedDefault());
  const std::vector<TunedParam> params = SelectTunedParams(report);
  const int tuned_classes = kNumSizeClasses - kFirstTunedSizeClass;
  EXPECT_EQ(params.size(),
            static_cast<std::size_t>(kNumTaxKernels * tuned_classes));
  for (std::size_t i = 1; i < params.size(); ++i) {
    const bool ordered =
        static_cast<int>(params[i - 1].kernel) <
            static_cast<int>(params[i].kernel) ||
        (params[i - 1].kernel == params[i].kernel &&
         params[i - 1].size_class < params[i].size_class);
    EXPECT_TRUE(ordered) << "param " << i << " out of (kernel, size) order";
  }
}

TEST(EmitTunedParamsCcTest, RendersACompilableLookingTable) {
  const TunerGrid grid = TunerGrid::Reduced();
  ModelProbe probe(5);
  const TunerReport report = RunTunerSweep(
      probe, grid, {TuneRegime::kHwOffEmulated},
      PrefetchSiteRegistry::DeployedDefault());
  const std::string cc = EmitTunedParamsCc(SelectTunedParams(report));
  EXPECT_NE(cc.find("tax/tuned_params.h"), std::string::npos);
  EXPECT_NE(cc.find("TaxKernel::kMemcpy"), std::string::npos);
  EXPECT_NE(cc.find("TaxKernel::kHashJoinProbe"), std::string::npos);
  EXPECT_NE(cc.find("TunedParamsBegin"), std::string::npos);
  // Emission must be a pure function of the table.
  EXPECT_EQ(cc, EmitTunedParamsCc(SelectTunedParams(report)));
}

TEST(GeomeanSpeedupTest, EmptyCellsYieldOne) {
  EXPECT_EQ(GeomeanSpeedup({}, TuneRegime::kHwOffEmulated), 1.0);
}

}  // namespace
}  // namespace limoncello
