#include "tax/prefetching_memcpy.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "util/rng.h"

namespace limoncello {
namespace {

std::vector<char> RandomBuffer(std::size_t n, std::uint64_t seed) {
  std::vector<char> buf(n);
  Rng rng(seed);
  for (char& c : buf) c = static_cast<char>(rng.NextU64());
  return buf;
}

class MemcpyCorrectnessTest : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(MemcpyCorrectnessTest, MatchesStdMemcpy) {
  const std::size_t n = GetParam();
  const std::vector<char> src = RandomBuffer(n, n + 1);
  std::vector<char> dst(n + 64, 0x5a);
  SoftPrefetchConfig config;
  config.min_size_bytes = 0;
  PrefetchingMemcpy(dst.data(), src.data(), n, config);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), n), 0);
  // Guard bytes untouched.
  for (std::size_t i = n; i < dst.size(); ++i) {
    EXPECT_EQ(dst[i], 0x5a) << "overwrite at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MemcpyCorrectnessTest,
                         ::testing::Values(0, 1, 7, 63, 64, 65, 255, 256,
                                           1000, 4096, 65536, 1 << 20));

TEST(PrefetchingMemcpyTest, SmallCallsBypassPrefetchPath) {
  // Below min_size the call must still copy correctly (fallback path).
  SoftPrefetchConfig config;
  config.min_size_bytes = 4096;
  const std::vector<char> src = RandomBuffer(100, 3);
  std::vector<char> dst(100);
  PrefetchingMemcpy(dst.data(), src.data(), 100, config);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), 100), 0);
}

TEST(PrefetchingMemcpyTest, VariousDistancesAndDegreesAllCorrect) {
  const std::size_t n = 100000;
  const std::vector<char> src = RandomBuffer(n, 4);
  for (std::uint32_t distance : {64u, 128u, 512u, 4096u}) {
    for (std::uint32_t degree : {64u, 256u, 2048u}) {
      SoftPrefetchConfig config;
      config.distance_bytes = distance;
      config.degree_bytes = degree;
      config.min_size_bytes = 0;
      std::vector<char> dst(n);
      PrefetchingMemcpy(dst.data(), src.data(), n, config);
      EXPECT_EQ(std::memcmp(dst.data(), src.data(), n), 0)
          << "distance=" << distance << " degree=" << degree;
    }
  }
}

class MemmoveOverlapTest
    : public ::testing::TestWithParam<std::ptrdiff_t> {};

TEST_P(MemmoveOverlapTest, OverlappingRegionsMatchStdMemmove) {
  const std::ptrdiff_t shift = GetParam();
  const std::size_t n = 50000;
  std::vector<char> expected = RandomBuffer(n + 8192, 5);
  std::vector<char> actual = expected;
  SoftPrefetchConfig config;
  config.min_size_bytes = 0;
  char* eb = expected.data() + 4096;
  char* ab = actual.data() + 4096;
  std::memmove(eb + shift, eb, n);
  PrefetchingMemmove(ab + shift, ab, n, config);
  EXPECT_EQ(std::memcmp(expected.data(), actual.data(), expected.size()),
            0);
}

INSTANTIATE_TEST_SUITE_P(Shifts, MemmoveOverlapTest,
                         ::testing::Values(-4096, -512, -64, -1, 0, 1, 63,
                                           64, 511, 4096));

TEST(PrefetchingMemmoveTest, DisjointRegions) {
  const std::size_t n = 8192;
  const std::vector<char> src = RandomBuffer(n, 6);
  std::vector<char> dst(n);
  SoftPrefetchConfig config;
  config.min_size_bytes = 0;
  PrefetchingMemmove(dst.data(), src.data(), n, config);
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), n), 0);
}

class MemsetSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MemsetSizeTest, MatchesStdMemset) {
  const std::size_t n = GetParam();
  std::vector<char> buf(n + 32, 0x11);
  SoftPrefetchConfig config;
  config.min_size_bytes = 0;
  PrefetchingMemset(buf.data(), 0xab, n, config);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(static_cast<unsigned char>(buf[i]), 0xab) << i;
  }
  for (std::size_t i = n; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], 0x11) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MemsetSizeTest,
                         ::testing::Values(0, 1, 64, 100, 4096, 1 << 18));

TEST(PrefetchingMemcpyTest, ReturnsDestination) {
  char src[8] = "abcdefg";
  char dst[8];
  SoftPrefetchConfig config;
  EXPECT_EQ(PrefetchingMemcpy(dst, src, 8, config), dst);
  EXPECT_EQ(PrefetchingMemmove(dst, src, 8, config), dst);
  EXPECT_EQ(PrefetchingMemset(dst, 0, 8, config), dst);
}

}  // namespace
}  // namespace limoncello
