// End-to-end hardware/software collaboration: the daemon's state listener
// drives the global SoftPrefetchRuntime, and the adaptive tax wrappers
// switch their prefetch behaviour accordingly — while always producing
// identical results.
#include "tax/adaptive.h"

#include <gtest/gtest.h>

#include <cstring>
#include <deque>

#include "core/daemon.h"
#include "msr/simulated_msr_device.h"
#include "softpf/runtime.h"
#include "tax/block_hash.h"
#include "util/rng.h"

namespace limoncello {
namespace {

std::string RandomString(std::size_t n, std::uint64_t seed) {
  std::string s(n, '\0');
  Rng rng(seed);
  for (char& c : s) c = static_cast<char>(rng.NextBounded(256));
  return s;
}

class AdaptiveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Reset the global runtime to a known state.
    SoftPrefetchRuntime::Global().SetActivation(
        SoftPrefetchActivation::kWhenHwOff);
    SoftPrefetchRuntime::Global().SetHwPrefetchersEnabled(true);
  }
  void TearDown() override { SetUp(); }
};

TEST_F(AdaptiveTest, CorrectInBothHardwareStates) {
  const std::string src = RandomString(100000, 1);
  std::string dst(src.size(), '\0');
  for (bool hw_on : {true, false}) {
    SoftPrefetchRuntime::Global().SetHwPrefetchersEnabled(hw_on);
    std::memset(dst.data(), 0, dst.size());
    AdaptiveMemcpy(dst.data(), src.data(), src.size());
    EXPECT_EQ(dst, src) << "hw_on=" << hw_on;
    EXPECT_EQ(AdaptiveBlockHash64(src.data(), src.size()),
              BlockHash64(src.data(), src.size()));
    EXPECT_EQ(AdaptiveCrc32c(src.data(), src.size()),
              Crc32c(src.data(), src.size()));
  }
}

TEST_F(AdaptiveTest, CompressionRoundTripsInBothStates) {
  const std::string input = RandomString(50000, 2);
  for (bool hw_on : {true, false}) {
    SoftPrefetchRuntime::Global().SetHwPrefetchersEnabled(hw_on);
    std::string compressed;
    AdaptiveCompress(input, &compressed);
    std::string output;
    ASSERT_TRUE(AdaptiveDecompress(compressed, &output));
    EXPECT_EQ(output, input);
  }
}

TEST_F(AdaptiveTest, MemmoveAndMemsetCorrect) {
  SoftPrefetchRuntime::Global().SetHwPrefetchersEnabled(false);
  std::string buf = RandomString(50000, 3);
  std::string expected = buf;
  std::memmove(expected.data() + 100, expected.data(), 40000);
  AdaptiveMemmove(buf.data() + 100, buf.data(), 40000);
  EXPECT_EQ(buf, expected);
  AdaptiveMemset(buf.data(), 0x7f, 30000);
  for (int i = 0; i < 30000; ++i) ASSERT_EQ(buf[static_cast<size_t>(i)], 0x7f);
}

// Fake actuator: always succeeds.
class OkActuator : public PrefetchActuator {
 public:
  bool DisablePrefetchers() override { return true; }
  bool EnablePrefetchers() override { return true; }
};

class ScriptedTelemetry : public UtilizationSource {
 public:
  explicit ScriptedTelemetry(std::deque<double> samples)
      : samples_(std::move(samples)) {}
  std::optional<double> SampleUtilization() override {
    if (samples_.empty()) return 0.5;
    const double s = samples_.front();
    samples_.pop_front();
    return s;
  }

 private:
  std::deque<double> samples_;
};

TEST_F(AdaptiveTest, DaemonDrivesRuntimeThroughListener) {
  ControllerConfig config;
  config.sustain_duration_ns = 2 * kNsPerSec;
  ScriptedTelemetry telemetry({0.9, 0.9, 0.5, 0.5});
  OkActuator actuator;
  LimoncelloDaemon daemon(config, &telemetry, &actuator);
  daemon.SetStateListener([](bool enabled) {
    SoftPrefetchRuntime::Global().SetHwPrefetchersEnabled(enabled);
  });

  // Sustained high utilization: daemon disables HW, runtime hears it,
  // software prefetching activates.
  daemon.RunTick(0);
  daemon.RunTick(kNsPerSec);
  EXPECT_FALSE(SoftPrefetchRuntime::Global().hw_prefetchers_enabled());
  EXPECT_TRUE(SoftPrefetchRuntime::Global()
                  .ConfigFor("memcpy", 1 << 20)
                  .AppliesTo(1 << 20));

  // Sustained low utilization: daemon re-enables, software stands down.
  daemon.RunTick(2 * kNsPerSec);
  daemon.RunTick(3 * kNsPerSec);
  EXPECT_TRUE(SoftPrefetchRuntime::Global().hw_prefetchers_enabled());
  EXPECT_FALSE(SoftPrefetchRuntime::Global()
                   .ConfigFor("memcpy", 1 << 20)
                   .AppliesTo(1 << 20));
}

}  // namespace
}  // namespace limoncello
