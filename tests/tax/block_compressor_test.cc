#include "tax/block_compressor.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace limoncello {
namespace {

std::string RandomString(std::size_t n, std::uint64_t seed) {
  std::string s(n, '\0');
  Rng rng(seed);
  for (char& c : s) c = static_cast<char>(rng.NextBounded(256));
  return s;
}

std::string CompressibleString(std::size_t n, std::uint64_t seed) {
  // Repeated phrases with some noise: realistic log-like content.
  std::string s;
  Rng rng(seed);
  const std::string phrases[] = {
      "GET /api/v1/search?q=prefetch HTTP/1.1 200 ",
      "limoncello: prefetchers for scale ",
      "memory bandwidth utilization high ",
  };
  while (s.size() < n) {
    s += phrases[rng.NextBounded(3)];
    if (rng.NextBernoulli(0.2)) s += static_cast<char>(rng.NextU64());
  }
  s.resize(n);
  return s;
}

TEST(VarintTest, RoundTripValues) {
  for (std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 300ull, 16383ull, 16384ull,
        0xffffffffull, 0xffffffffffffffffull}) {
    std::string buf;
    AppendVarint(v, &buf);
    std::uint64_t parsed = 0;
    EXPECT_EQ(ParseVarint(buf, &parsed), buf.size());
    EXPECT_EQ(parsed, v);
  }
}

TEST(VarintTest, TruncatedInputRejected) {
  std::string buf;
  AppendVarint(1 << 20, &buf);
  std::uint64_t parsed = 0;
  EXPECT_EQ(ParseVarint(std::string_view(buf).substr(0, 1), &parsed), 0u);
  EXPECT_EQ(ParseVarint("", &parsed), 0u);
}

TEST(VarintTest, OverlongInputRejected) {
  const std::string bad(11, '\x80');
  std::uint64_t parsed = 0;
  EXPECT_EQ(ParseVarint(bad, &parsed), 0u);
}

class CompressorRoundTripTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CompressorRoundTripTest, CompressibleData) {
  BlockCompressor codec;
  const std::string input = CompressibleString(GetParam(), GetParam());
  std::string compressed;
  codec.Compress(input, &compressed);
  std::string output;
  ASSERT_TRUE(codec.Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

TEST_P(CompressorRoundTripTest, RandomData) {
  BlockCompressor codec;
  const std::string input = RandomString(GetParam(), GetParam() + 17);
  std::string compressed;
  codec.Compress(input, &compressed);
  std::string output;
  ASSERT_TRUE(codec.Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CompressorRoundTripTest,
                         ::testing::Values(0, 1, 3, 4, 5, 100, 1000, 4096,
                                           65536, 1 << 20));

TEST(BlockCompressorTest, CompressibleDataActuallyShrinks) {
  BlockCompressor codec;
  const std::string input = CompressibleString(1 << 16, 1);
  std::string compressed;
  codec.Compress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 2);
}

TEST(BlockCompressorTest, AllZerosCompressesExtremely) {
  BlockCompressor codec;
  const std::string input(1 << 16, '\0');
  std::string compressed;
  codec.Compress(input, &compressed);
  EXPECT_LT(compressed.size(), 2048u);
  std::string output;
  ASSERT_TRUE(codec.Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

TEST(BlockCompressorTest, RandomDataStaysUnderBound) {
  BlockCompressor codec;
  const std::string input = RandomString(1 << 16, 2);
  std::string compressed;
  codec.Compress(input, &compressed);
  EXPECT_LE(compressed.size(),
            BlockCompressor::MaxCompressedSize(input.size()));
}

TEST(BlockCompressorTest, PrefetchingVariantIdenticalOutput) {
  SoftPrefetchConfig config;
  config.min_size_bytes = 0;
  BlockCompressor plain;
  BlockCompressor prefetching(config);
  const std::string input = CompressibleString(1 << 18, 3);
  std::string a;
  std::string b;
  plain.Compress(input, &a);
  prefetching.Compress(input, &b);
  EXPECT_EQ(a, b);  // prefetching must never change the format
  std::string out;
  ASSERT_TRUE(prefetching.Decompress(a, &out));
  EXPECT_EQ(out, input);
}

TEST(BlockCompressorTest, DecompressRejectsCorruptTag) {
  BlockCompressor codec;
  std::string compressed;
  codec.Compress("hello world hello world hello", &compressed);
  // Find the first tag after the header varint and corrupt it.
  compressed[1] = '\x7e';
  std::string output;
  EXPECT_FALSE(codec.Decompress(compressed, &output));
}

TEST(BlockCompressorTest, DecompressRejectsTruncatedInput) {
  BlockCompressor codec;
  std::string compressed;
  codec.Compress(CompressibleString(1000, 4), &compressed);
  std::string output;
  for (std::size_t cut : {compressed.size() - 1, compressed.size() / 2,
                          std::size_t{2}}) {
    EXPECT_FALSE(codec.Decompress(
        std::string_view(compressed).substr(0, cut), &output))
        << "cut at " << cut;
  }
}

TEST(BlockCompressorTest, DecompressRejectsBadMatchOffset) {
  // Hand-crafted stream: header says 4 bytes, match offset points before
  // the start of the output.
  std::string bad;
  AppendVarint(4, &bad);
  bad.push_back('\x01');  // match tag
  AppendVarint(9, &bad);  // offset 9 into empty output
  AppendVarint(4, &bad);  // length
  std::string output;
  EXPECT_FALSE(BlockCompressor().Decompress(bad, &output));
}

TEST(BlockCompressorTest, DecompressRejectsOversizedHeader) {
  std::string bad;
  AppendVarint(1ULL << 62, &bad);
  std::string output;
  EXPECT_FALSE(BlockCompressor().Decompress(bad, &output));
}

TEST(BlockCompressorTest, DecompressRejectsLengthOverrun) {
  // Literal run longer than the declared uncompressed size.
  std::string bad;
  AppendVarint(2, &bad);
  bad.push_back('\x00');
  AppendVarint(5, &bad);
  bad += "abcde";
  std::string output;
  EXPECT_FALSE(BlockCompressor().Decompress(bad, &output));
}

TEST(BlockCompressorTest, SelfOverlappingMatchIsRunLengthEncoding) {
  BlockCompressor codec;
  std::string input = "ab";
  for (int i = 0; i < 10; ++i) input += input;  // "abab..." 2048 chars
  std::string compressed;
  codec.Compress(input, &compressed);
  EXPECT_LT(compressed.size(), 64u);
  std::string output;
  ASSERT_TRUE(codec.Decompress(compressed, &output));
  EXPECT_EQ(output, input);
}

}  // namespace
}  // namespace limoncello
