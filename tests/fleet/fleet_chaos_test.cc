// Fleet-scale chaos test: a deterministic fault load (telemetry
// corruption, MSR write failures, crash/reboot cycles) across the fleet
// must complete cleanly, every daemon must reconverge once the fault
// window closes, and the run must stay bit-identical at any thread count
// — the determinism contract extends to fault injection.
#include <gtest/gtest.h>

#include "fleet/fleet_simulator.h"

namespace limoncello {
namespace {

FaultSpec ChaosSpec() {
  FaultSpec faults;
  faults.telemetry_dropout_rate = 0.01;
  faults.telemetry_nan_rate = 0.005;
  faults.telemetry_stale_rate = 0.004;
  faults.telemetry_spike_rate = 0.004;
  faults.msr_transient_rate = 0.008;
  faults.msr_core_fault_rate = 0.004;
  faults.crash_rate = 0.004;
  faults.daemon_restart_rate = 0.004;
  faults.daemon_restart_down_ticks = 3;
  // Quiet tail: no new fault may start after tick 340, so by the end of
  // the run every machine has had time to reconverge.
  faults.max_fault_tick = 340;
  return faults;
}

FleetOptions ChaosFleet(int num_threads) {
  FleetOptions options;
  options.num_machines = 48;
  options.ticks = 400;
  options.fill = 0.75;  // high enough that controllers actually toggle
  options.seed = 42;
  options.diurnal_period_ns = 400LL * kNsPerSec;
  options.num_threads = num_threads;
  options.faults = ChaosSpec();
  options.daemon_snapshot_period_ticks = 4;
  return options;
}

ControllerConfig ChaosController() {
  ControllerConfig config;
  config.sustain_duration_ns = 3 * kNsPerSec;
  return config;
}

// Bit-identical comparison (EXPECT_EQ on doubles is deliberate),
// covering the fault-load metrics on top of the performance ones.
void ExpectIdenticalChaos(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.machine_ticks, b.machine_ticks);
  EXPECT_EQ(a.saturated_machine_ticks, b.saturated_machine_ticks);
  EXPECT_EQ(a.prefetcher_off_ticks, b.prefetcher_off_ticks);
  EXPECT_EQ(a.controller_toggles, b.controller_toggles);
  EXPECT_EQ(a.served_qps_sum, b.served_qps_sum);
  EXPECT_EQ(a.offered_qps_sum, b.offered_qps_sum);
  EXPECT_EQ(a.down_machine_ticks, b.down_machine_ticks);
  EXPECT_EQ(a.diverged_machine_ticks, b.diverged_machine_ticks);
  EXPECT_EQ(a.reconverge_events, b.reconverge_events);
  EXPECT_EQ(a.reconverge_ticks_sum, b.reconverge_ticks_sum);
  EXPECT_EQ(a.max_reconverge_ticks, b.max_reconverge_ticks);
  EXPECT_EQ(a.telemetry_faults_injected, b.telemetry_faults_injected);
  EXPECT_EQ(a.msr_write_faults_injected, b.msr_write_faults_injected);
  EXPECT_EQ(a.crashes_injected, b.crashes_injected);
  EXPECT_EQ(a.reboots_completed, b.reboots_completed);
  EXPECT_EQ(a.failsafe_resets, b.failsafe_resets);
  EXPECT_EQ(a.reboots_detected, b.reboots_detected);
  EXPECT_EQ(a.state_reasserts, b.state_reasserts);
  EXPECT_EQ(a.daemon_kills_injected, b.daemon_kills_injected);
  EXPECT_EQ(a.daemon_restarts_completed, b.daemon_restarts_completed);
  EXPECT_EQ(a.daemon_down_machine_ticks, b.daemon_down_machine_ticks);
  EXPECT_EQ(a.warm_restores, b.warm_restores);
  EXPECT_EQ(a.recovery_reconciles, b.recovery_reconciles);
  for (auto histogram_member :
       {&FleetMetrics::bandwidth_gbps, &FleetMetrics::bandwidth_utilization,
        &FleetMetrics::latency_ns}) {
    const Histogram& x = a.*histogram_member;
    const Histogram& y = b.*histogram_member;
    EXPECT_EQ(x.Count(), y.Count());
    EXPECT_EQ(x.Mean(), y.Mean());
    EXPECT_EQ(x.Stddev(), y.Stddev());
    EXPECT_EQ(x.Percentile(99), y.Percentile(99));
  }
  ASSERT_EQ(a.machines.size(), b.machines.size());
  for (std::size_t m = 0; m < a.machines.size(); ++m) {
    EXPECT_EQ(a.machines[m].cpu_utilization_sum,
              b.machines[m].cpu_utilization_sum);
    EXPECT_EQ(a.machines[m].offered_qps_sum, b.machines[m].offered_qps_sum);
    EXPECT_EQ(a.machines[m].ticks, b.machines[m].ticks);
    EXPECT_EQ(a.machines[m].prefetcher_off_ticks,
              b.machines[m].prefetcher_off_ticks);
  }
}

TEST(FleetChaosTest, FaultFreeRunReportsNoFaultMetrics) {
  FleetOptions options;
  options.num_machines = 10;
  options.ticks = 30;
  options.diurnal_period_ns = 30LL * kNsPerSec;
  options.num_threads = 1;
  FleetSimulator sim(PlatformConfig::Platform1(),
                     DeploymentMode::kHardLimoncello, ChaosController(),
                     options);
  for (const auto& machine : sim.machines()) {
    EXPECT_EQ(machine->injector(), nullptr);
  }
  const FleetMetrics metrics = sim.Run();
  EXPECT_EQ(metrics.down_machine_ticks, 0u);
  EXPECT_EQ(metrics.telemetry_faults_injected, 0u);
  EXPECT_EQ(metrics.crashes_injected, 0u);
  EXPECT_DOUBLE_EQ(metrics.Availability(), 1.0);
}

TEST(FleetChaosTest, ChaosRunSurvivesAndReconverges) {
  FleetSimulator sim(PlatformConfig::Platform1(),
                     DeploymentMode::kHardLimoncello, ChaosController(),
                     ChaosFleet(0));
  const FleetMetrics metrics = sim.Run();

  // The fault load actually landed, and broadly across the fleet.
  EXPECT_GT(metrics.telemetry_faults_injected, 0u);
  EXPECT_GT(metrics.msr_write_faults_injected, 0u);
  EXPECT_GT(metrics.crashes_injected, 0u);
  int machines_faulted = 0;
  for (const auto& machine : sim.machines()) {
    ASSERT_NE(machine->injector(), nullptr);
    machines_faulted += machine->injector()->stats().Any() ? 1 : 0;
  }
  EXPECT_GE(machines_faulted, static_cast<int>(sim.machines().size()) / 10)
      << "fault load should hit well over 10% of the fleet";

  // Every crash completed its reboot inside the run (quiet tail).
  EXPECT_EQ(metrics.reboots_completed, metrics.crashes_injected);
  EXPECT_GT(metrics.down_machine_ticks, 0u);
  EXPECT_GT(metrics.Availability(), 0.9);
  EXPECT_LT(metrics.Availability(), 1.0);

  // The hardening paths fired and the fleet healed: every divergence
  // episode eventually reconverged.
  EXPECT_GT(metrics.reconverge_events, 0u);
  EXPECT_GT(metrics.diverged_machine_ticks, 0u);
  EXPECT_GE(metrics.MeanTicksToReconverge(), 1.0);

  // Daemon-restart windows opened, closed, and warm-restarted from the
  // in-memory journal snapshots (period 4, so every kill has a snapshot).
  EXPECT_GT(metrics.daemon_kills_injected, 0u);
  EXPECT_EQ(metrics.daemon_restarts_completed, metrics.daemon_kills_injected);
  EXPECT_GT(metrics.daemon_down_machine_ticks, 0u);
  EXPECT_GT(metrics.warm_restores, 0u);

  // After the quiet tail every machine is up and its hardware state
  // agrees with its daemon's intent.
  for (const auto& machine : sim.machines()) {
    EXPECT_FALSE(machine->injector()->MachineDown());
    EXPECT_FALSE(machine->injector()->DaemonDown());
    ASSERT_NE(machine->daemon(), nullptr);
    EXPECT_EQ(machine->prefetchers_on(),
              machine->daemon()->controller().PrefetchersShouldBeEnabled());
  }
}

TEST(FleetChaosTest, ColdRestartsStillReconvergeWithoutSnapshots) {
  // Snapshots disabled: every daemon restart is a cold start. The fleet
  // must still heal — the reconcile path re-asserts cold intent against
  // whatever the frozen hardware was left holding.
  FleetOptions options = ChaosFleet(1);
  options.daemon_snapshot_period_ticks = 0;
  FleetSimulator sim(PlatformConfig::Platform1(),
                     DeploymentMode::kHardLimoncello, ChaosController(),
                     options);
  const FleetMetrics metrics = sim.Run();
  EXPECT_GT(metrics.daemon_kills_injected, 0u);
  EXPECT_EQ(metrics.daemon_restarts_completed, metrics.daemon_kills_injected);
  EXPECT_EQ(metrics.warm_restores, 0u);
  for (const auto& machine : sim.machines()) {
    ASSERT_NE(machine->daemon(), nullptr);
    EXPECT_EQ(machine->prefetchers_on(),
              machine->daemon()->controller().PrefetchersShouldBeEnabled());
  }
}

TEST(FleetChaosTest, ChaosRunIsBitIdenticalAtAnyThreadCount) {
  const FleetMetrics serial = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kHardLimoncello,
      ChaosController(), ChaosFleet(1));
  const FleetMetrics parallel = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kHardLimoncello,
      ChaosController(), ChaosFleet(4));
  ASSERT_GT(serial.machine_ticks, 0u);
  ASSERT_GT(serial.telemetry_faults_injected, 0u);
  ExpectIdenticalChaos(serial, parallel);
}

}  // namespace
}  // namespace limoncello
