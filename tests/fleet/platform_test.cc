#include "fleet/platform.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

TEST(PlatformTest, EvaluationPlatformsDiffer) {
  const PlatformConfig p1 = PlatformConfig::Platform1();
  const PlatformConfig p2 = PlatformConfig::Platform2();
  EXPECT_NE(p1.name, p2.name);
  EXPECT_NE(p1.msr_layout, p2.msr_layout);
  // Platform 1 (newer) prefetches more aggressively: lower accuracy.
  EXPECT_LT(p1.prefetch.hw_accuracy_tax, p2.prefetch.hw_accuracy_tax);
}

TEST(PlatformTest, QualificationThresholdBelowAchievablePeak) {
  // Achievable bandwidth is ~3 GB/s per core (paper §2.1); the
  // qualification saturation threshold is derated below that so the
  // scheduler backs off before the latency cliff.
  for (const PlatformConfig& p :
       {PlatformConfig::Platform1(), PlatformConfig::Platform2()}) {
    const double per_core = p.saturation_gbps / p.cores;
    EXPECT_GE(per_core, 1.5) << p.name;
    EXPECT_LE(per_core, 3.0) << p.name;
  }
}

TEST(PlatformTest, PrefetchResponseScalarsInRange) {
  for (const PlatformConfig& p :
       {PlatformConfig::Platform1(), PlatformConfig::Platform2()}) {
    const PrefetchResponse& r = p.prefetch;
    EXPECT_GT(r.hw_coverage_tax, r.hw_coverage_nontax);
    EXPECT_GT(r.hw_accuracy_tax, r.hw_accuracy_nontax);
    EXPECT_GE(r.hw_pollution_nontax, 1.0);
    EXPECT_GT(r.sw_accuracy, r.hw_accuracy_tax);  // SW is more precise
    for (double v : {r.hw_coverage_tax, r.hw_coverage_nontax,
                     r.hw_accuracy_tax, r.hw_accuracy_nontax,
                     r.sw_coverage_tax, r.sw_accuracy}) {
      EXPECT_GT(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(HistoricalGenerationsTest, PerCoreBandwidthPlateaus) {
  // Paper Fig. 2: total bandwidth grows across generations but per-core
  // bandwidth stagnates.
  const auto gens = HistoricalGenerations();
  ASSERT_GE(gens.size(), 5u);
  EXPECT_GT(gens.back().membw_gbps / gens.front().membw_gbps, 4.0);
  const double per_core_growth =
      gens.back().MembwPerCore() / gens.front().MembwPerCore();
  EXPECT_LT(per_core_growth, 1.5);
  // Years strictly increasing.
  for (std::size_t i = 1; i < gens.size(); ++i) {
    EXPECT_GT(gens[i].year, gens[i - 1].year);
    EXPECT_GE(gens[i].cores, gens[i - 1].cores);
  }
}

TEST(RecentGenerationsTest, AggressivenessGrows) {
  // Paper Fig. 5: prefetcher aggressiveness increased each generation.
  const auto gens = RecentGenerations();
  ASSERT_EQ(gens.size(), 3u);
  EXPECT_LT(gens[0].stream_degree, gens[2].stream_degree);
  EXPECT_LT(gens[0].stream_distance, gens[2].stream_distance);
}

}  // namespace
}  // namespace limoncello
