// Determinism regression test for the parallel fleet engine: the sharded
// tick loop must produce bit-identical FleetMetrics at any thread count
// (the serial engine, num_threads = 1, is the reference). See
// FleetOptions::num_threads for the contract.
#include <gtest/gtest.h>

#include "fleet/fleet_simulator.h"

namespace limoncello {
namespace {

FleetOptions ParallelFleet(int num_threads, std::uint64_t seed = 42) {
  FleetOptions options;
  options.num_machines = 50;  // not a multiple of the shard size
  options.ticks = 150;
  options.fill = 0.60;
  options.seed = seed;
  options.diurnal_period_ns = 150LL * kNsPerSec;
  options.num_threads = num_threads;
  return options;
}

ControllerConfig DefaultController() {
  ControllerConfig config;
  config.sustain_duration_ns = 3 * kNsPerSec;
  return config;
}

// EXPECT_EQ on doubles: bit-identical, not approximately equal.
void ExpectIdentical(const FleetMetrics& serial,
                     const FleetMetrics& parallel) {
  EXPECT_EQ(serial.machine_ticks, parallel.machine_ticks);
  EXPECT_EQ(serial.saturated_machine_ticks,
            parallel.saturated_machine_ticks);
  EXPECT_EQ(serial.prefetcher_off_ticks, parallel.prefetcher_off_ticks);
  EXPECT_EQ(serial.controller_toggles, parallel.controller_toggles);
  EXPECT_EQ(serial.served_qps_sum, parallel.served_qps_sum);
  EXPECT_EQ(serial.offered_qps_sum, parallel.offered_qps_sum);
  for (int c = 0; c < kNumCategories; ++c) {
    EXPECT_EQ(serial.category_cycles[static_cast<size_t>(c)],
              parallel.category_cycles[static_cast<size_t>(c)]);
  }
  for (auto histogram_member :
       {&FleetMetrics::bandwidth_gbps, &FleetMetrics::bandwidth_utilization,
        &FleetMetrics::latency_ns}) {
    const Histogram& a = serial.*histogram_member;
    const Histogram& b = parallel.*histogram_member;
    EXPECT_EQ(a.Count(), b.Count());
    EXPECT_EQ(a.Mean(), b.Mean());
    EXPECT_EQ(a.Stddev(), b.Stddev());
    EXPECT_EQ(a.Min(), b.Min());
    EXPECT_EQ(a.Max(), b.Max());
    EXPECT_EQ(a.Percentile(50), b.Percentile(50));
    EXPECT_EQ(a.Percentile(99), b.Percentile(99));
  }
  ASSERT_EQ(serial.machines.size(), parallel.machines.size());
  for (std::size_t m = 0; m < serial.machines.size(); ++m) {
    const MachineAggregate& a = serial.machines[m];
    const MachineAggregate& b = parallel.machines[m];
    EXPECT_EQ(a.cpu_utilization_sum, b.cpu_utilization_sum);
    EXPECT_EQ(a.bw_utilization_sum, b.bw_utilization_sum);
    EXPECT_EQ(a.latency_ns_sum, b.latency_ns_sum);
    EXPECT_EQ(a.served_qps_sum, b.served_qps_sum);
    EXPECT_EQ(a.offered_qps_sum, b.offered_qps_sum);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.prefetcher_off_ticks, b.prefetcher_off_ticks);
  }
}

TEST(FleetParallelTest, BaselineSerialAndParallelBitIdentical) {
  const FleetMetrics serial =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), ParallelFleet(1));
  const FleetMetrics parallel =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), ParallelFleet(4));
  ASSERT_GT(serial.machine_ticks, 0u);
  ASSERT_GT(serial.served_qps_sum, 0.0);
  ExpectIdentical(serial, parallel);
}

TEST(FleetParallelTest, FullLimoncelloSerialAndParallelBitIdentical) {
  // The control path (daemon -> MSR writes -> toggle counts) must be just
  // as deterministic as the performance model.
  FleetOptions serial_options = ParallelFleet(1);
  FleetOptions parallel_options = ParallelFleet(4);
  serial_options.fill = parallel_options.fill = 0.75;  // make it toggle
  const FleetMetrics serial = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), serial_options);
  const FleetMetrics parallel = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), parallel_options);
  ASSERT_GT(serial.machine_ticks, 0u);
  EXPECT_GT(serial.controller_toggles, 0u);
  ExpectIdentical(serial, parallel);
}

TEST(FleetParallelTest, OddThreadCountAlsoIdentical) {
  const FleetMetrics serial =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), ParallelFleet(1, 9));
  const FleetMetrics parallel =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), ParallelFleet(3, 9));
  ExpectIdentical(serial, parallel);
}

TEST(FleetParallelTest, MetricsMergeAccumulatesPartials) {
  FleetMetrics a;
  FleetMetrics b;
  a.bandwidth_gbps.Add(10.0);
  b.bandwidth_gbps.Add(20.0);
  a.served_qps_sum = 5.0;
  b.served_qps_sum = 7.0;
  a.machine_ticks = 3;
  b.machine_ticks = 4;
  b.controller_toggles = 2;
  a.category_cycles[0] = 1.0;
  b.category_cycles[0] = 2.5;
  a.Merge(b);
  EXPECT_EQ(a.bandwidth_gbps.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.bandwidth_gbps.Mean(), 15.0);
  EXPECT_DOUBLE_EQ(a.served_qps_sum, 12.0);
  EXPECT_EQ(a.machine_ticks, 7u);
  EXPECT_EQ(a.controller_toggles, 2u);
  EXPECT_DOUBLE_EQ(a.category_cycles[0], 3.5);
}

}  // namespace
}  // namespace limoncello
