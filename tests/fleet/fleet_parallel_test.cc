// Determinism regression test for the parallel fleet engine: the sharded
// tick loop must produce bit-identical FleetMetrics at any thread count
// (the serial engine, num_threads = 1, is the reference). See
// FleetOptions::num_threads for the contract.
//
// Also pins the SoA layout goldens the contract rests on: the slice plan
// (a pure function of the machine count), the cache-line alignment of
// every FleetState array, and the ascending-slice Welford merge order.
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>

#include "fleet/fleet_simulator.h"
#include "fleet/fleet_state.h"
#include "stats/histogram.h"

namespace limoncello {
namespace {

FleetOptions ParallelFleet(int num_threads, std::uint64_t seed = 42) {
  FleetOptions options;
  options.num_machines = 50;  // not a multiple of the shard size
  options.ticks = 150;
  options.fill = 0.60;
  options.seed = seed;
  options.diurnal_period_ns = 150LL * kNsPerSec;
  options.num_threads = num_threads;
  return options;
}

ControllerConfig DefaultController() {
  ControllerConfig config;
  config.sustain_duration_ns = 3 * kNsPerSec;
  return config;
}

// EXPECT_EQ on doubles: bit-identical, not approximately equal.
void ExpectIdentical(const FleetMetrics& serial,
                     const FleetMetrics& parallel) {
  EXPECT_EQ(serial.machine_ticks, parallel.machine_ticks);
  EXPECT_EQ(serial.saturated_machine_ticks,
            parallel.saturated_machine_ticks);
  EXPECT_EQ(serial.prefetcher_off_ticks, parallel.prefetcher_off_ticks);
  EXPECT_EQ(serial.controller_toggles, parallel.controller_toggles);
  EXPECT_EQ(serial.served_qps_sum, parallel.served_qps_sum);
  EXPECT_EQ(serial.offered_qps_sum, parallel.offered_qps_sum);
  for (int c = 0; c < kNumCategories; ++c) {
    EXPECT_EQ(serial.category_cycles[static_cast<size_t>(c)],
              parallel.category_cycles[static_cast<size_t>(c)]);
  }
  for (auto histogram_member :
       {&FleetMetrics::bandwidth_gbps, &FleetMetrics::bandwidth_utilization,
        &FleetMetrics::latency_ns}) {
    const Histogram& a = serial.*histogram_member;
    const Histogram& b = parallel.*histogram_member;
    EXPECT_EQ(a.Count(), b.Count());
    EXPECT_EQ(a.Mean(), b.Mean());
    EXPECT_EQ(a.Stddev(), b.Stddev());
    EXPECT_EQ(a.Min(), b.Min());
    EXPECT_EQ(a.Max(), b.Max());
    EXPECT_EQ(a.Percentile(50), b.Percentile(50));
    EXPECT_EQ(a.Percentile(99), b.Percentile(99));
  }
  ASSERT_EQ(serial.machines.size(), parallel.machines.size());
  for (std::size_t m = 0; m < serial.machines.size(); ++m) {
    const MachineAggregate& a = serial.machines[m];
    const MachineAggregate& b = parallel.machines[m];
    EXPECT_EQ(a.cpu_utilization_sum, b.cpu_utilization_sum);
    EXPECT_EQ(a.bw_utilization_sum, b.bw_utilization_sum);
    EXPECT_EQ(a.latency_ns_sum, b.latency_ns_sum);
    EXPECT_EQ(a.served_qps_sum, b.served_qps_sum);
    EXPECT_EQ(a.offered_qps_sum, b.offered_qps_sum);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.prefetcher_off_ticks, b.prefetcher_off_ticks);
  }
}

TEST(FleetParallelTest, BaselineSerialAndParallelBitIdentical) {
  const FleetMetrics serial =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), ParallelFleet(1));
  const FleetMetrics parallel =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), ParallelFleet(4));
  ASSERT_GT(serial.machine_ticks, 0u);
  ASSERT_GT(serial.served_qps_sum, 0.0);
  ExpectIdentical(serial, parallel);
}

TEST(FleetParallelTest, FullLimoncelloSerialAndParallelBitIdentical) {
  // The control path (daemon -> MSR writes -> toggle counts) must be just
  // as deterministic as the performance model.
  FleetOptions serial_options = ParallelFleet(1);
  FleetOptions parallel_options = ParallelFleet(4);
  serial_options.fill = parallel_options.fill = 0.75;  // make it toggle
  const FleetMetrics serial = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), serial_options);
  const FleetMetrics parallel = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), parallel_options);
  ASSERT_GT(serial.machine_ticks, 0u);
  EXPECT_GT(serial.controller_toggles, 0u);
  ExpectIdentical(serial, parallel);
}

TEST(FleetParallelTest, OddThreadCountAlsoIdentical) {
  const FleetMetrics serial =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), ParallelFleet(1, 9));
  const FleetMetrics parallel =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), ParallelFleet(3, 9));
  ExpectIdentical(serial, parallel);
}

// Same fault rates as fleet_chaos_test's ChaosSpec: every fault family
// active at once. No quiet tail — the run is 4 ticks long; the point is
// bit-identity under fault load, not reconvergence.
FaultSpec HundredKChaosSpec() {
  FaultSpec faults;
  faults.telemetry_dropout_rate = 0.01;
  faults.telemetry_nan_rate = 0.005;
  faults.telemetry_stale_rate = 0.004;
  faults.telemetry_spike_rate = 0.004;
  faults.msr_transient_rate = 0.008;
  faults.msr_core_fault_rate = 0.004;
  faults.crash_rate = 0.004;
  faults.daemon_restart_rate = 0.004;
  faults.daemon_restart_down_ticks = 3;
  return faults;
}

// Fleet-scale short run: DefaultFleetOptions' machine count with only a
// few ticks, so the test exercises the 64-slice plan and the epoch loop
// (rebalance_period_ticks = 2 forces epoch boundaries mid-run) without
// fleet-scale wall time.
FleetOptions HundredKFleet(int num_threads, bool chaos) {
  FleetOptions options;
  options.num_machines = 100000;
  options.ticks = 4;
  options.rebalance_period_ticks = 2;
  options.fill = 0.60;
  options.seed = 42;
  options.diurnal_period_ns = 4LL * kNsPerSec;
  options.num_threads = num_threads;
  if (chaos) {
    options.faults = HundredKChaosSpec();
    options.daemon_snapshot_period_ticks = 2;
  }
  return options;
}

TEST(FleetParallelTest, HundredKMachinesSerialVsEightThreadsBitIdentical) {
  const FleetMetrics serial = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), HundredKFleet(1, /*chaos=*/false));
  const FleetMetrics parallel = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), HundredKFleet(8, /*chaos=*/false));
  ASSERT_EQ(serial.machine_ticks, 400000u);
  ExpectIdentical(serial, parallel);
}

TEST(FleetParallelTest, HundredKMachinesChaosSerialVsEightThreadsIdentical) {
  const FleetMetrics serial = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), HundredKFleet(1, /*chaos=*/true));
  const FleetMetrics parallel = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), HundredKFleet(8, /*chaos=*/true));
  ASSERT_EQ(serial.machine_ticks, 400000u);
  ExpectIdentical(serial, parallel);
}

// --- SoA layout goldens -------------------------------------------------

TEST(FleetSlicePlanTest, PlanIsAPureFunctionOfMachineCount) {
  // Pinned values: a plan change silently regroups the floating-point
  // reduction, which is a (legal but) result-changing event that must
  // show up in review, not sneak through.
  const FleetSlicePlan tiny = FleetSlicePlan::For(50);
  EXPECT_EQ(tiny.machines_per_slice, 8u);
  EXPECT_EQ(tiny.num_slices, 7u);
  const FleetSlicePlan figure = FleetSlicePlan::For(1000);
  EXPECT_EQ(figure.machines_per_slice, 16u);
  EXPECT_EQ(figure.num_slices, 63u);
  const FleetSlicePlan fleet = FleetSlicePlan::For(100000);
  EXPECT_EQ(fleet.machines_per_slice, 1568u);
  EXPECT_EQ(fleet.num_slices, 64u);
  // Slices tile [0, n) contiguously, and every boundary is a multiple of
  // 8 machines (the cache-line tiling unit for 8- and 48-byte elements).
  EXPECT_EQ(figure.SliceBegin(0), 0u);
  EXPECT_EQ(figure.SliceEnd(figure.num_slices - 1, 1000), 1000u);
  for (std::size_t s = 0; s + 1 < figure.num_slices; ++s) {
    EXPECT_EQ(figure.SliceEnd(s, 1000), figure.SliceBegin(s + 1));
    EXPECT_EQ(figure.SliceBegin(s + 1) % 8, 0u);
  }
}

TEST(FleetStateTest, SoAArraysAreCacheLineAligned) {
  FleetState state(100);
  const auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) % kFleetCacheLineBytes == 0;
  };
  EXPECT_TRUE(aligned(state.last_bw_utilization.data()));
  EXPECT_TRUE(aligned(state.last_cpu_utilization.data()));
  EXPECT_TRUE(aligned(state.utilization_ewma.data()));
  EXPECT_TRUE(aligned(state.last_offered_qps.data()));
  EXPECT_TRUE(aligned(state.last_served_qps.data()));
  EXPECT_TRUE(aligned(state.prefetchers_on.data()));
  EXPECT_TRUE(aligned(state.controller_state.data()));
  EXPECT_TRUE(aligned(state.rng.data()));
  // Slice boundaries land on cache lines for every element type, so two
  // slices never share a line (the no-false-sharing argument).
  const FleetSlicePlan plan = FleetSlicePlan::For(state.size());
  for (std::size_t s = 0; s < plan.num_slices; ++s) {
    EXPECT_EQ(plan.SliceBegin(s) * sizeof(double) % kFleetCacheLineBytes,
              0u);
    EXPECT_EQ(plan.SliceBegin(s) * sizeof(Rng) % kFleetCacheLineBytes, 0u);
  }
}

TEST(FleetMergeOrderTest, AscendingSliceMergeArithmeticIsPinned) {
  // Per-slice Welford summaries combine order-sensitively in floating
  // point. The engine merges partials in ascending slice order at every
  // thread count; this golden replicates that exact arithmetic so a
  // reordering (or a formula change in Summary::Merge) trips EXPECT_EQ
  // on bits, not on tolerance.
  // Unequal counts and incommensurate steps: chosen so ascending vs
  // descending merge demonstrably differ in the last bits of m2.
  constexpr int kCounts[3] = {7, 13, 5};
  constexpr double kBases[3] = {0.3, 7.7, 123.4};
  constexpr double kSteps[3] = {0.1, 0.31, 0.17};
  Histogram parts[3];
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < kCounts[p]; ++i) {
      parts[p].Add(kBases[p] + kSteps[p] * i);
    }
  }

  Histogram ascending;
  for (const Histogram& p : parts) ascending.Merge(p);
  Histogram descending;
  for (int i = 2; i >= 0; --i) descending.Merge(parts[i]);
  // Order sensitivity is real for these inputs: if this ever becomes
  // EQ, the golden below stops pinning anything.
  EXPECT_NE(ascending.Stddev(), descending.Stddev());

  // Hand-rolled replication of Summary::Add / Summary::Merge, applied in
  // ascending order.
  struct Welford {
    std::uint64_t count = 0;
    double mean = 0.0;
    double m2 = 0.0;
    void Add(double x) {
      ++count;
      const double delta = x - mean;
      mean += delta / static_cast<double>(count);
      m2 += delta * (x - mean);
    }
    void Merge(const Welford& other) {
      if (other.count == 0) return;
      if (count == 0) {
        *this = other;
        return;
      }
      const double delta = other.mean - mean;
      const auto n1 = static_cast<double>(count);
      const auto n2 = static_cast<double>(other.count);
      const double n = n1 + n2;
      m2 += other.m2 + delta * delta * n1 * n2 / n;
      mean = (n1 * mean + n2 * other.mean) / n;
      count += other.count;
    }
  };
  Welford expected_parts[3];
  for (int p = 0; p < 3; ++p) {
    for (int i = 0; i < kCounts[p]; ++i) {
      expected_parts[p].Add(kBases[p] + kSteps[p] * i);
    }
  }
  Welford expected;
  for (const Welford& p : expected_parts) expected.Merge(p);

  EXPECT_EQ(ascending.Count(), expected.count);
  EXPECT_EQ(ascending.Mean(), expected.mean);
  EXPECT_EQ(ascending.Stddev(),
            std::sqrt(expected.m2 /
                      static_cast<double>(expected.count - 1)));
}

TEST(FleetParallelTest, MetricsMergeAccumulatesPartials) {
  FleetMetrics a;
  FleetMetrics b;
  a.bandwidth_gbps.Add(10.0);
  b.bandwidth_gbps.Add(20.0);
  a.served_qps_sum = 5.0;
  b.served_qps_sum = 7.0;
  a.machine_ticks = 3;
  b.machine_ticks = 4;
  b.controller_toggles = 2;
  a.category_cycles[0] = 1.0;
  b.category_cycles[0] = 2.5;
  a.Merge(b);
  EXPECT_EQ(a.bandwidth_gbps.Count(), 2u);
  EXPECT_DOUBLE_EQ(a.bandwidth_gbps.Mean(), 15.0);
  EXPECT_DOUBLE_EQ(a.served_qps_sum, 12.0);
  EXPECT_EQ(a.machine_ticks, 7u);
  EXPECT_EQ(a.controller_toggles, 2u);
  EXPECT_DOUBLE_EQ(a.category_cycles[0], 3.5);
}

}  // namespace
}  // namespace limoncello
