#include "fleet/threshold_tuner.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

FleetOptions TinyFleet() {
  FleetOptions options;
  options.num_machines = 24;
  options.ticks = 150;
  options.fill = 0.65;
  options.seed = 77;
  options.diurnal_period_ns = 150LL * kNsPerSec;
  return options;
}

TEST(ThresholdTunerTest, PaperGridHasThreeConfigs) {
  const auto grid = ThresholdTuner::PaperGrid();
  ASSERT_EQ(grid.size(), 3u);
  EXPECT_DOUBLE_EQ(grid[0].lower, 0.60);
  EXPECT_DOUBLE_EQ(grid[0].upper, 0.80);
  for (const ThresholdCandidate& c : grid) {
    EXPECT_LT(c.lower, c.upper);
    EXPECT_GT(c.sustain_ns, 0);
  }
}

TEST(ThresholdTunerTest, EvaluatesEveryCandidate) {
  ThresholdTuner tuner(PlatformConfig::Platform1(), TinyFleet());
  const TunerResult result = tuner.Tune(ThresholdTuner::PaperGrid());
  ASSERT_EQ(result.evaluations.size(), 3u);
  for (const ThresholdEvaluation& e : result.evaluations) {
    EXPECT_GE(e.prefetcher_off_fraction, 0.0);
    EXPECT_LE(e.prefetcher_off_fraction, 1.0);
  }
}

TEST(ThresholdTunerTest, BestComesFromTheCandidateSet) {
  ThresholdTuner tuner(PlatformConfig::Platform1(), TinyFleet());
  const auto grid = ThresholdTuner::PaperGrid();
  const TunerResult result = tuner.Tune(grid);
  bool found = false;
  for (const ThresholdCandidate& c : grid) {
    if (c.lower == result.best.lower_threshold &&
        c.upper == result.best.upper_threshold &&
        c.sustain_ns == result.best.sustain_duration_ns) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(result.best.Valid());
}

TEST(ThresholdTunerTest, DeterministicAcrossRuns) {
  ThresholdTuner a(PlatformConfig::Platform1(), TinyFleet());
  ThresholdTuner b(PlatformConfig::Platform1(), TinyFleet());
  const TunerResult ra = a.Tune(ThresholdTuner::PaperGrid());
  const TunerResult rb = b.Tune(ThresholdTuner::PaperGrid());
  EXPECT_DOUBLE_EQ(ra.best.upper_threshold, rb.best.upper_threshold);
  for (std::size_t i = 0; i < ra.evaluations.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.evaluations[i].throughput_gain_pct,
                     rb.evaluations[i].throughput_gain_pct);
  }
}

TEST(ThresholdTunerTest, SingleCandidateWins) {
  ThresholdTuner tuner(PlatformConfig::Platform1(), TinyFleet());
  const TunerResult result = tuner.Tune({{0.55, 0.85, 3 * kNsPerSec}});
  EXPECT_DOUBLE_EQ(result.best.lower_threshold, 0.55);
  EXPECT_DOUBLE_EQ(result.best.upper_threshold, 0.85);
  EXPECT_EQ(result.best.sustain_duration_ns, 3 * kNsPerSec);
}

TEST(ThresholdTunerDeathTest, EmptyCandidatesAbort) {
  ThresholdTuner tuner(PlatformConfig::Platform1(), TinyFleet());
  EXPECT_DEATH(tuner.Tune({}), "CHECK");
}

}  // namespace
}  // namespace limoncello
