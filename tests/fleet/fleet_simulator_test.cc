#include "fleet/fleet_simulator.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

FleetOptions SmallFleet(std::uint64_t seed = 42) {
  FleetOptions options;
  options.num_machines = 40;
  options.ticks = 240;
  options.fill = 0.55;
  options.seed = seed;
  options.diurnal_period_ns = 240LL * kNsPerSec;
  return options;
}

ControllerConfig DefaultController() {
  ControllerConfig config;
  config.sustain_duration_ns = 3 * kNsPerSec;
  return config;
}

TEST(FleetSimulatorTest, CollectsMetricsForEveryMachineTick) {
  const FleetOptions options = SmallFleet();
  const FleetMetrics metrics =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), options);
  EXPECT_EQ(metrics.machine_ticks,
            static_cast<std::uint64_t>(options.num_machines) *
                static_cast<std::uint64_t>(options.ticks));
  EXPECT_EQ(metrics.bandwidth_gbps.Count(), metrics.machine_ticks);
  EXPECT_EQ(metrics.machines.size(),
            static_cast<std::size_t>(options.num_machines));
  EXPECT_GT(metrics.served_qps_sum, 0.0);
}

TEST(FleetSimulatorTest, FillTargetApproximatelyMet) {
  const FleetMetrics metrics =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), SmallFleet());
  double cpu_sum = 0.0;
  for (const MachineAggregate& m : metrics.machines) {
    cpu_sum += m.AvgCpu();
  }
  const double avg_cpu = cpu_sum / static_cast<double>(metrics.machines.size());
  EXPECT_GT(avg_cpu, 0.25);
  EXPECT_LT(avg_cpu, 0.85);
}

TEST(FleetSimulatorTest, MachinesSpreadAcrossCpuBuckets) {
  const FleetMetrics metrics =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), SmallFleet());
  int buckets_hit[11] = {0};
  for (const MachineAggregate& m : metrics.machines) {
    const int bucket =
        std::min(10, static_cast<int>(m.AvgCpu() * 10.0));
    ++buckets_hit[bucket];
  }
  int distinct = 0;
  for (int count : buckets_hit) {
    if (count > 0) ++distinct;
  }
  EXPECT_GE(distinct, 3);  // heterogeneous caps spread the population
}

TEST(FleetSimulatorTest, IdenticalSeedsIdenticalBaselineArms) {
  const FleetMetrics a =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), SmallFleet(7));
  const FleetMetrics b =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), SmallFleet(7));
  EXPECT_DOUBLE_EQ(a.served_qps_sum, b.served_qps_sum);
  EXPECT_DOUBLE_EQ(a.bandwidth_gbps.Mean(), b.bandwidth_gbps.Mean());
}

TEST(FleetSimulatorTest, AblationArmUsesLessBandwidth) {
  // Paper Table 1: prefetchers off => fleet bandwidth drops.
  const FleetMetrics on =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), SmallFleet());
  const FleetMetrics off =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kAblationOff,
                  DefaultController(), SmallFleet());
  EXPECT_LT(off.bandwidth_gbps.Mean(), on.bandwidth_gbps.Mean());
  const double reduction = 1.0 - off.bandwidth_gbps.Mean() /
                                     on.bandwidth_gbps.Mean();
  EXPECT_GT(reduction, 0.05);
  EXPECT_LT(reduction, 0.30);
}

TEST(FleetSimulatorTest, HardLimoncelloTogglesOnlyWhereLoadIsHigh) {
  FleetOptions options = SmallFleet();
  options.fill = 0.35;  // lightly loaded fleet: only the hottest machines trip
  const FleetMetrics metrics = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kHardLimoncello,
      DefaultController(), options);
  // Hot machines trip the controller...
  EXPECT_GT(metrics.prefetcher_off_ticks, 0u);
  EXPECT_GT(metrics.controller_toggles, 0u);
  // ...but the decision is per-socket: lightly loaded machines keep their
  // prefetchers on the whole time, and the fleet is not uniformly off.
  int never_off = 0;
  for (const MachineAggregate& m : metrics.machines) {
    if (m.prefetcher_off_ticks == 0) ++never_off;
  }
  EXPECT_GT(never_off, 0);
  EXPECT_LT(metrics.prefetcher_off_ticks, metrics.machine_ticks * 9 / 10);
}

TEST(FleetSimulatorTest, FullLimoncelloImprovesFleetThroughput) {
  // The headline result (paper Fig. 16): Limoncello improves throughput.
  FleetOptions options = SmallFleet();
  options.fill = 0.75;  // loaded fleet, where it matters
  const FleetMetrics before =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), options);
  const FleetMetrics after = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), options);
  EXPECT_GT(after.served_qps_sum, before.served_qps_sum);
}

TEST(FleetSimulatorTest, FullLimoncelloReducesLatency) {
  FleetOptions options = SmallFleet();
  options.fill = 0.75;
  const FleetMetrics before =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), options);
  const FleetMetrics after = RunFleetArm(
      PlatformConfig::Platform1(), DeploymentMode::kFullLimoncello,
      DefaultController(), options);
  EXPECT_LT(after.latency_ns.Percentile(50),
            before.latency_ns.Percentile(50));
}

TEST(FleetSimulatorTest, CategoryCyclesPopulated) {
  const FleetMetrics metrics =
      RunFleetArm(PlatformConfig::Platform1(), DeploymentMode::kBaseline,
                  DefaultController(), SmallFleet());
  EXPECT_GT(metrics.TotalCategoryCycles(), 0.0);
  const double nontax_share =
      metrics.category_cycles[kNonTaxCategoryIndex] /
      metrics.TotalCategoryCycles();
  EXPECT_GT(nontax_share, 0.5);
  EXPECT_LT(nontax_share, 0.92);
}

TEST(FleetMetricsTest, SaturatedFractionBounds) {
  FleetMetrics metrics;
  EXPECT_EQ(metrics.SaturatedFraction(), 0.0);
  metrics.machine_ticks = 100;
  metrics.saturated_machine_ticks = 25;
  EXPECT_DOUBLE_EQ(metrics.SaturatedFraction(), 0.25);
}

}  // namespace
}  // namespace limoncello
