#include "fleet/scheduler.h"

#include <gtest/gtest.h>

#include <memory>

namespace limoncello {
namespace {

struct Cluster {
  std::vector<std::unique_ptr<MachineModel>> owned;
  std::vector<MachineModel*> machines;
  std::vector<ServiceSpec> services = ServiceSpec::FleetArchetypes();

  explicit Cluster(int n) {
    ControllerConfig controller;
    for (int i = 0; i < n; ++i) {
      owned.push_back(std::make_unique<MachineModel>(
          PlatformConfig::Platform1(), DeploymentMode::kBaseline,
          controller, Rng(100 + static_cast<std::uint64_t>(i))));
      machines.push_back(owned.back().get());
    }
  }
};

ClusterScheduler::Options DefaultOptions() { return {}; }

TEST(ClusterSchedulerTest, CapsWithinConfiguredRange) {
  ClusterScheduler scheduler(DefaultOptions(), Rng(1));
  scheduler.AssignCaps(100);
  for (std::size_t m = 0; m < 100; ++m) {
    EXPECT_GE(scheduler.cap(m), 0.30);
    EXPECT_LE(scheduler.cap(m), 0.95);
  }
}

TEST(ClusterSchedulerTest, PlacesShardsAcrossMachines) {
  Cluster cluster(10);
  ClusterScheduler scheduler(DefaultOptions(), Rng(2));
  scheduler.AssignCaps(10);
  const int unplaced =
      scheduler.PlaceService(0, cluster.services[0], 20, cluster.machines);
  EXPECT_EQ(unplaced, 0);
  int machines_with_work = 0;
  int total_tasks = 0;
  for (const auto* m : cluster.machines) {
    if (!m->tasks().empty()) ++machines_with_work;
    total_tasks += static_cast<int>(m->tasks().size());
  }
  EXPECT_EQ(total_tasks, 20);
  EXPECT_GE(machines_with_work, 5);  // spread, not piled on one machine
}

TEST(ClusterSchedulerTest, AvoidsSaturatedMachines) {
  Cluster cluster(3);
  ClusterScheduler scheduler(DefaultOptions(), Rng(3));  // avoid at 0.80
  scheduler.AssignCaps(3);
  // Saturate machine 0's bandwidth signal by overloading it and ticking.
  MachineModel::Task heavy;
  heavy.service_index = 0;
  heavy.spec = &cluster.services[1];  // ml_server: memory heavy
  heavy.share = 60.0;
  cluster.machines[0]->AddTask(heavy);
  std::vector<double> unit(cluster.services.size(), 1.0);
  for (int t = 0; t < 10; ++t) {
    for (auto* m : cluster.machines) m->Tick(t * kNsPerSec, unit);
  }
  ASSERT_GT(cluster.machines[0]->last_bandwidth_utilization(), 0.80);
  const std::size_t machine0_tasks = cluster.machines[0]->tasks().size();
  scheduler.PlaceService(0, cluster.services[0], 10, cluster.machines);
  // No new work landed on the saturated machine.
  EXPECT_EQ(cluster.machines[0]->tasks().size(), machine0_tasks);
}

TEST(ClusterSchedulerTest, ReportsUnplaceableShards) {
  Cluster cluster(2);
  ClusterScheduler::Options options;
  options.min_allocation_cap = 0.31;
  options.max_allocation_cap = 0.32;  // tiny caps
  ClusterScheduler scheduler(options, Rng(4));
  scheduler.AssignCaps(2);
  // ml_server shards are expensive; 200 of them cannot fit in 2 machines.
  const int unplaced =
      scheduler.PlaceService(1, cluster.services[1], 200, cluster.machines);
  EXPECT_GT(unplaced, 100);
}

TEST(ClusterSchedulerTest, RebalanceMovesWorkOffSaturatedMachine) {
  Cluster cluster(4);
  ClusterScheduler scheduler(DefaultOptions(), Rng(5));  // avoid at 0.80
  scheduler.AssignCaps(4);
  // Overload machine 0 with several tasks.
  for (int i = 0; i < 6; ++i) {
    MachineModel::Task task;
    task.service_index = 1;
    task.spec = &cluster.services[1];
    task.share = 10.0;
    cluster.machines[0]->AddTask(task);
  }
  std::vector<double> unit(cluster.services.size(), 1.0);
  for (int t = 0; t < 10; ++t) {
    for (auto* m : cluster.machines) m->Tick(t * kNsPerSec, unit);
  }
  ASSERT_GT(cluster.machines[0]->last_bandwidth_utilization(), 0.80);
  const int migrations = scheduler.Rebalance(cluster.machines);
  EXPECT_EQ(migrations, 1);
  EXPECT_EQ(cluster.machines[0]->tasks().size(), 5u);
  std::size_t elsewhere = 0;
  for (int m = 1; m < 4; ++m) {
    elsewhere += cluster.machines[static_cast<std::size_t>(m)]->tasks().size();
  }
  EXPECT_EQ(elsewhere, 1u);
}

TEST(ClusterSchedulerTest, RebalanceNoOpWhenHealthy) {
  Cluster cluster(4);
  ClusterScheduler scheduler(DefaultOptions(), Rng(6));
  scheduler.AssignCaps(4);
  scheduler.PlaceService(0, cluster.services[0], 4, cluster.machines);
  std::vector<double> unit(cluster.services.size(), 1.0);
  for (int t = 0; t < 5; ++t) {
    for (auto* m : cluster.machines) m->Tick(t * kNsPerSec, unit);
  }
  EXPECT_EQ(scheduler.Rebalance(cluster.machines), 0);
}

TEST(ClusterSchedulerDeathTest, PlaceBeforeAssignCapsAborts) {
  Cluster cluster(2);
  ClusterScheduler scheduler(DefaultOptions(), Rng(7));
  EXPECT_DEATH(
      scheduler.PlaceService(0, cluster.services[0], 1, cluster.machines),
      "CHECK");
}

}  // namespace
}  // namespace limoncello
