#include "fleet/service.h"

#include <gtest/gtest.h>

#include "stats/summary.h"

namespace limoncello {
namespace {

TEST(ServiceSpecTest, ArchetypeMixesSumToOne) {
  for (const ServiceSpec& s : ServiceSpec::FleetArchetypes()) {
    double total = 0.0;
    for (double m : s.category_mix) total += m;
    EXPECT_NEAR(total, 1.0, 1e-9) << s.name;
  }
}

TEST(ServiceSpecTest, TaxShareInPaperBand) {
  // Data-center tax is 30-40 % of cycles fleet-wide; per service it
  // should sit in a plausible 25-45 % band.
  for (const ServiceSpec& s : ServiceSpec::FleetArchetypes()) {
    const double tax = 1.0 - s.category_mix[kNonTaxCategoryIndex];
    EXPECT_GE(tax, 0.25) << s.name;
    EXPECT_LE(tax, 0.45) << s.name;
  }
}

TEST(ServiceSpecTest, ArchetypesAreDiverse) {
  const auto services = ServiceSpec::FleetArchetypes();
  EXPECT_GE(services.size(), 6u);
  double min_mpki = 1e9;
  double max_mpki = 0.0;
  for (const ServiceSpec& s : services) {
    min_mpki = std::min(min_mpki, s.base_mpki);
    max_mpki = std::max(max_mpki, s.base_mpki);
  }
  EXPECT_GT(max_mpki / min_mpki, 2.0);  // memory intensity diversity
}

TEST(LoadProcessTest, StaysWithinBounds) {
  LoadProcess::Options o;
  LoadProcess load(o, Rng(1));
  for (int i = 0; i < 100000; ++i) {
    const double f = load.Tick(static_cast<SimTimeNs>(i) * kNsPerSec);
    EXPECT_GE(f, o.min_factor);
    EXPECT_LE(f, o.max_factor);
  }
}

TEST(LoadProcessTest, DiurnalCycleVisible) {
  LoadProcess::Options o;
  o.noise_stddev = 0.0;
  o.burst_probability = 0.0;
  o.diurnal_period_ns = 1000 * kNsPerSec;
  LoadProcess load(o, Rng(2));
  // Peak at a quarter period (sin = 1), trough at three quarters.
  double peak = 0.0;
  double trough = 10.0;
  for (int i = 0; i < 1000; ++i) {
    const double f = load.Tick(static_cast<SimTimeNs>(i) * kNsPerSec);
    peak = std::max(peak, f);
    trough = std::min(trough, f);
  }
  EXPECT_NEAR(peak, 1.0 + o.diurnal_amplitude, 0.01);
  EXPECT_NEAR(trough, 1.0 - o.diurnal_amplitude, 0.01);
}

TEST(LoadProcessTest, BurstsRaiseLoad) {
  LoadProcess::Options quiet;
  quiet.burst_probability = 0.0;
  quiet.noise_stddev = 0.0;
  LoadProcess::Options bursty = quiet;
  bursty.burst_probability = 0.05;
  LoadProcess a(quiet, Rng(3));
  LoadProcess b(bursty, Rng(3));
  double sum_quiet = 0.0;
  double sum_bursty = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const SimTimeNs t = static_cast<SimTimeNs>(i) * kNsPerSec;
    sum_quiet += a.Tick(t);
    sum_bursty += b.Tick(t);
  }
  EXPECT_GT(sum_bursty, sum_quiet * 1.02);
}

TEST(LoadProcessTest, DeterministicPerSeed) {
  LoadProcess::Options o;
  LoadProcess a(o, Rng(9));
  LoadProcess b(o, Rng(9));
  for (int i = 0; i < 1000; ++i) {
    const SimTimeNs t = static_cast<SimTimeNs>(i) * kNsPerSec;
    EXPECT_DOUBLE_EQ(a.Tick(t), b.Tick(t));
  }
}

TEST(LoadProcessTest, VolatilityResemblesFig7) {
  // The bandwidth trace in paper Fig. 7 swings by tens of percent minute
  // to minute; our load process should show meaningful variability.
  LoadProcess::Options o;
  LoadProcess load(o, Rng(11));
  Summary s;
  for (int i = 0; i < 3600; ++i) {
    s.Add(load.Tick(static_cast<SimTimeNs>(i) * kNsPerSec));
  }
  EXPECT_GT(s.stddev() / s.mean(), 0.05);
  EXPECT_LT(s.stddev() / s.mean(), 0.6);
}

}  // namespace
}  // namespace limoncello
