#include "fleet/machine_model.h"

#include <gtest/gtest.h>

#include <memory>

namespace limoncello {
namespace {

ControllerConfig FastController() {
  ControllerConfig config;
  config.sustain_duration_ns = 2 * kNsPerSec;
  return config;
}

const std::vector<ServiceSpec>& Services() {
  static const auto* services =
      new std::vector<ServiceSpec>(ServiceSpec::FleetArchetypes());
  return *services;
}

std::unique_ptr<MachineModel> MakeMachine(DeploymentMode mode,
                                          double share = 4.0) {
  auto machine = std::make_unique<MachineModel>(
      PlatformConfig::Platform1(), mode, FastController(), Rng(1));
  MachineModel::Task task;
  task.service_index = 0;
  task.spec = &Services()[0];
  task.share = share;
  machine->AddTask(task);
  return machine;
}

std::vector<double> UnitLoad() { return std::vector<double>(8, 1.0); }

TEST(MachineModelTest, BaselineKeepsPrefetchersOn) {
  auto machine = MakeMachine(DeploymentMode::kBaseline);
  for (int t = 0; t < 10; ++t) {
    const auto r = machine->Tick(t * kNsPerSec, UnitLoad());
    EXPECT_TRUE(r.prefetchers_on);
  }
}

TEST(MachineModelTest, AblationKeepsPrefetchersOff) {
  auto machine = MakeMachine(DeploymentMode::kAblationOff);
  for (int t = 0; t < 10; ++t) {
    const auto r = machine->Tick(t * kNsPerSec, UnitLoad());
    EXPECT_FALSE(r.prefetchers_on);
  }
}

TEST(MachineModelTest, PrefetchersOnUseMoreBandwidth) {
  auto on = MakeMachine(DeploymentMode::kBaseline);
  auto off = MakeMachine(DeploymentMode::kAblationOff);
  double bw_on = 0.0;
  double bw_off = 0.0;
  for (int t = 0; t < 20; ++t) {
    bw_on += on->Tick(t * kNsPerSec, UnitLoad()).bandwidth_gbps;
    bw_off += off->Tick(t * kNsPerSec, UnitLoad()).bandwidth_gbps;
  }
  // Paper Table 1: disabling prefetchers cuts bandwidth by ~11-16 %.
  EXPECT_LT(bw_off, bw_on);
  const double reduction = (bw_on - bw_off) / bw_on;
  EXPECT_GT(reduction, 0.05);
  EXPECT_LT(reduction, 0.30);
}

TEST(MachineModelTest, PrefetchersOnLowerMpkiMeansLowerCpuPerQps) {
  // At low load, prefetchers help: same served QPS with fewer busy cores.
  auto on = MakeMachine(DeploymentMode::kBaseline, 1.0);
  auto off = MakeMachine(DeploymentMode::kAblationOff, 1.0);
  MachineModel::TickResult r_on;
  MachineModel::TickResult r_off;
  for (int t = 0; t < 10; ++t) {
    r_on = on->Tick(t * kNsPerSec, UnitLoad());
    r_off = off->Tick(t * kNsPerSec, UnitLoad());
  }
  EXPECT_DOUBLE_EQ(r_on.served_qps, r_off.served_qps);  // both unsaturated
  EXPECT_LT(r_on.cpu_utilization, r_off.cpu_utilization);
}

TEST(MachineModelTest, OverloadShedsLoad) {
  auto machine = MakeMachine(DeploymentMode::kBaseline, 100.0);
  MachineModel::TickResult r;
  for (int t = 0; t < 10; ++t) r = machine->Tick(t * kNsPerSec, UnitLoad());
  EXPECT_LT(r.served_qps, r.offered_qps);
  // The machine is pinned at whichever resource binds first: either the
  // cores are fully busy or the memory channel is at its ceiling.
  EXPECT_TRUE(r.cpu_utilization > 0.99 || r.bandwidth_utilization > 0.99)
      << "cpu=" << r.cpu_utilization << " bw=" << r.bandwidth_utilization;
}

TEST(MachineModelTest, LatencyRisesWithUtilization) {
  auto light = MakeMachine(DeploymentMode::kBaseline, 1.0);
  auto heavy = MakeMachine(DeploymentMode::kBaseline, 30.0);
  MachineModel::TickResult r_light;
  MachineModel::TickResult r_heavy;
  for (int t = 0; t < 20; ++t) {
    r_light = light->Tick(t * kNsPerSec, UnitLoad());
    r_heavy = heavy->Tick(t * kNsPerSec, UnitLoad());
  }
  EXPECT_GT(r_heavy.bandwidth_utilization,
            r_light.bandwidth_utilization * 2);
  EXPECT_GT(r_heavy.latency_ns, r_light.latency_ns * 1.2);
}

TEST(MachineModelTest, HardLimoncelloDisablesUnderSustainedHighLoad) {
  auto machine = MakeMachine(DeploymentMode::kHardLimoncello, 30.0);
  bool saw_off = false;
  for (int t = 0; t < 30; ++t) {
    const auto r = machine->Tick(t * kNsPerSec, UnitLoad());
    if (!r.prefetchers_on) saw_off = true;
  }
  EXPECT_TRUE(saw_off);
  ASSERT_NE(machine->daemon(), nullptr);
  EXPECT_GT(machine->daemon()->stats().disables, 0u);
}

TEST(MachineModelTest, HardLimoncelloStaysOnUnderLightLoad) {
  auto machine = MakeMachine(DeploymentMode::kHardLimoncello, 1.0);
  for (int t = 0; t < 30; ++t) {
    const auto r = machine->Tick(t * kNsPerSec, UnitLoad());
    EXPECT_TRUE(r.prefetchers_on);
  }
  EXPECT_EQ(machine->daemon()->stats().disables, 0u);
}

TEST(MachineModelTest, FullLimoncelloRecoversThroughputVsHardOnly) {
  // Under sustained high load both disable prefetchers; Full Limoncello's
  // software prefetching keeps tax-function misses low, so it serves the
  // same load with fewer busy cores (and at saturation, serves more).
  auto hard = MakeMachine(DeploymentMode::kHardLimoncello, 40.0);
  auto full = MakeMachine(DeploymentMode::kFullLimoncello, 40.0);
  double served_hard = 0.0;
  double served_full = 0.0;
  for (int t = 0; t < 40; ++t) {
    served_hard += hard->Tick(t * kNsPerSec, UnitLoad()).served_qps;
    served_full += full->Tick(t * kNsPerSec, UnitLoad()).served_qps;
  }
  EXPECT_GT(served_full, served_hard * 1.005);
}

TEST(MachineModelTest, CategoryCyclesCoverAllCategories) {
  auto machine = MakeMachine(DeploymentMode::kBaseline, 4.0);
  const auto r = machine->Tick(0, UnitLoad());
  double total = 0.0;
  for (double c : r.category_cycles) {
    EXPECT_GT(c, 0.0);
    total += c;
  }
  // Non-tax dominates cycle share (paper: tax is 30-40 %).
  EXPECT_GT(r.category_cycles[kNonTaxCategoryIndex] / total, 0.5);
}

TEST(MachineModelTest, LoadFactorScalesOfferedQps) {
  auto machine = MakeMachine(DeploymentMode::kBaseline, 1.0);
  const auto r1 = machine->Tick(0, std::vector<double>(8, 1.0));
  const auto r2 = machine->Tick(kNsPerSec, std::vector<double>(8, 2.0));
  EXPECT_NEAR(r2.offered_qps, 2.0 * r1.offered_qps, 1e-6);
}

TEST(MachineModelTest, EstimateCpuCostScalesWithShare) {
  auto machine = MakeMachine(DeploymentMode::kBaseline);
  const ServiceSpec& spec = Services()[0];
  const double c1 = machine->EstimateCpuCost(spec, 1.0);
  const double c2 = machine->EstimateCpuCost(spec, 2.0);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-12);
  EXPECT_GT(c1, 0.0);
}

TEST(MachineModelTest, DeterministicAcrossRuns) {
  auto run = [] {
    auto machine = MakeMachine(DeploymentMode::kHardLimoncello, 25.0);
    double sum = 0.0;
    for (int t = 0; t < 30; ++t) {
      sum += machine->Tick(t * kNsPerSec, UnitLoad()).bandwidth_gbps;
    }
    return sum;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(MachineModelTest, ClearTasksEmptiesMachine) {
  auto machine = MakeMachine(DeploymentMode::kBaseline);
  EXPECT_EQ(machine->tasks().size(), 1u);
  machine->ClearTasks();
  EXPECT_TRUE(machine->tasks().empty());
  const auto r = machine->Tick(0, UnitLoad());
  EXPECT_EQ(r.offered_qps, 0.0);
  EXPECT_EQ(r.cpu_utilization, 0.0);
}

}  // namespace
}  // namespace limoncello
