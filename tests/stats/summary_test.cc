#include "stats/summary.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace limoncello {
namespace {

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, MergeMatchesCombinedStream) {
  Rng rng(1);
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextGaussian(10.0, 3.0);
    all.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(SummaryTest, MergeWithEmptyIsIdentity) {
  Summary a;
  a.Add(1.0);
  a.Add(3.0);
  Summary empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  Summary b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

}  // namespace
}  // namespace limoncello
