#include "stats/time_series.h"

#include <gtest/gtest.h>

namespace limoncello {
namespace {

TEST(TimeSeriesTest, AddAndSummarize) {
  TimeSeries ts;
  ts.Add(0, 1.0);
  ts.Add(kNsPerSec, 2.0);
  ts.Add(2 * kNsPerSec, 3.0);
  const Summary s = ts.Summarize();
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(TimeSeriesTest, FractionAbove) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.Add(i, i < 3 ? 10.0 : 1.0);
  EXPECT_DOUBLE_EQ(ts.FractionAbove(5.0), 0.3);
  EXPECT_DOUBLE_EQ(ts.FractionAbove(100.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.FractionAbove(0.0), 1.0);
}

TEST(TimeSeriesTest, EmptyFractionAboveIsZero) {
  TimeSeries ts;
  EXPECT_EQ(ts.FractionAbove(1.0), 0.0);
}

TEST(TimeSeriesTest, ResampleAveragesWindows) {
  TimeSeries ts;
  // Two windows of 10ns: values 1,3 then 5,7.
  ts.Add(0, 1.0);
  ts.Add(5, 3.0);
  ts.Add(10, 5.0);
  ts.Add(15, 7.0);
  const TimeSeries out = ts.Resample(10);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.points()[0].value, 2.0);
  EXPECT_DOUBLE_EQ(out.points()[1].value, 6.0);
}

TEST(TimeSeriesTest, ResampleSkipsEmptyWindows) {
  TimeSeries ts;
  ts.Add(0, 1.0);
  ts.Add(100, 9.0);  // gap of several 10ns windows
  const TimeSeries out = ts.Resample(10);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.points()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(out.points()[1].value, 9.0);
}

TEST(TimeSeriesDeathTest, NonMonotonicTimeAborts) {
  TimeSeries ts;
  ts.Add(100, 1.0);
  EXPECT_DEATH(ts.Add(50, 2.0), "CHECK");
}

}  // namespace
}  // namespace limoncello
