// SatCounter: pins at UINT64_MAX instead of wrapping — a saturated
// counter is visibly absurd, a wrapped one is plausibly wrong.
#include "stats/saturating.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace limoncello {
namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

TEST(SatCounterTest, StartsAtZeroAndCounts) {
  SatCounter counter;
  EXPECT_EQ(counter, 0u);
  EXPECT_FALSE(counter.saturated());
  ++counter;
  counter += 9;
  EXPECT_EQ(counter, 10u);
  EXPECT_EQ(counter.value(), 10u);
}

TEST(SatCounterTest, PostIncrementReturnsPriorValue) {
  SatCounter counter(5);
  EXPECT_EQ((counter++).value(), 5u);
  EXPECT_EQ(counter, 6u);
}

TEST(SatCounterTest, IncrementSaturatesInsteadOfWrapping) {
  SatCounter counter(kMax);
  ++counter;
  EXPECT_EQ(counter, kMax);
  EXPECT_TRUE(counter.saturated());
  counter++;
  EXPECT_EQ(counter, kMax);
}

TEST(SatCounterTest, AddSaturatesInsteadOfWrapping) {
  SatCounter counter(kMax - 3);
  counter += 2;
  EXPECT_EQ(counter, kMax - 1);
  EXPECT_FALSE(counter.saturated());
  counter += 100;  // would wrap a raw u64
  EXPECT_EQ(counter, kMax);
  EXPECT_TRUE(counter.saturated());
  counter += kMax;
  EXPECT_EQ(counter, kMax);
}

TEST(SatCounterTest, ConvertsImplicitlyForExistingCallSites) {
  const SatCounter counter(42);
  const std::uint64_t raw = counter;  // printf / arithmetic call sites
  EXPECT_EQ(raw, 42u);
  EXPECT_EQ(counter + 8u, 50u);
  EXPECT_GT(counter, 41u);
}

TEST(SatCounterTest, ComparesHomogeneouslyAndAgainstLiterals) {
  const SatCounter a(7);
  const SatCounter b(7);
  const SatCounter c(8);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a, 7u);  // the heterogeneous overload gtest needs
}

TEST(SatCounterTest, AssignsFromDecodedJournalValues) {
  SatCounter counter;
  counter = SatCounter(123456789);  // journal decode path
  EXPECT_EQ(counter, 123456789u);
}

}  // namespace
}  // namespace limoncello
