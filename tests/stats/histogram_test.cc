#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace limoncello {
namespace {

TEST(HistogramTest, EmptyPercentileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0.0);
  EXPECT_EQ(h.Count(), 0u);
}

TEST(HistogramTest, SingleValueAllPercentiles) {
  Histogram h;
  h.Add(100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
}

TEST(HistogramTest, PercentileBoundedRelativeError) {
  Histogram h(1.0, 1.02);
  for (int i = 1; i <= 10000; ++i) h.Add(static_cast<double>(i));
  // P50 should be ~5000 within the 2 % bucket growth tolerance.
  EXPECT_NEAR(h.Percentile(50), 5000.0, 5000.0 * 0.03);
  EXPECT_NEAR(h.Percentile(99), 9900.0, 9900.0 * 0.03);
  EXPECT_NEAR(h.Percentile(90), 9000.0, 9000.0 * 0.03);
}

TEST(HistogramTest, MeanAndExtremesExact) {
  Histogram h;
  h.Add(10.0);
  h.Add(20.0);
  h.Add(30.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.Min(), 10.0);
  EXPECT_DOUBLE_EQ(h.Max(), 30.0);
}

TEST(HistogramTest, AddNEquivalentToRepeatedAdd) {
  Histogram a;
  Histogram b;
  a.AddN(42.0, 100);
  for (int i = 0; i < 100; ++i) b.Add(42.0);
  EXPECT_EQ(a.Count(), b.Count());
  EXPECT_DOUBLE_EQ(a.Percentile(50), b.Percentile(50));
  EXPECT_DOUBLE_EQ(a.Mean(), b.Mean());
}

TEST(HistogramTest, MergeMatchesCombined) {
  Rng rng(2);
  Histogram all;
  Histogram left;
  Histogram right;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextLognormal(4.0, 1.0);
    all.Add(v);
    (i % 2 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_DOUBLE_EQ(left.Percentile(90), all.Percentile(90));
}

TEST(HistogramTest, PercentilesMonotonic) {
  Rng rng(3);
  Histogram h;
  for (int i = 0; i < 2000; ++i) h.Add(rng.NextExponential(50.0));
  double prev = 0.0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.Percentile(p);
    EXPECT_GE(v, prev) << "at percentile " << p;
    prev = v;
  }
}

TEST(HistogramTest, SmallValuesLandInFloorBucket) {
  Histogram h(10.0, 1.1);
  h.Add(0.001);
  h.Add(5.0);
  h.Add(9.9);
  EXPECT_LE(h.Percentile(100), 10.0);
}

TEST(HistogramTest, MassBetweenSumsToOne) {
  Rng rng(4);
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(rng.NextDouble(1.0, 1000.0));
  const double total = h.MassBetween(0.0, 1e9);
  EXPECT_NEAR(total, 1.0, 0.01);
}

TEST(HistogramTest, MassBetweenSelectsRange) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Add(10.0);
  for (int i = 0; i < 300; ++i) h.Add(1000.0);
  EXPECT_NEAR(h.MassBetween(5.0, 50.0), 0.25, 0.02);
  EXPECT_NEAR(h.MassBetween(500.0, 2000.0), 0.75, 0.02);
}

TEST(HistogramDeathTest, MergeIncompatibleConfigsAborts) {
  Histogram a(1.0, 1.02);
  Histogram b(1.0, 1.05);
  EXPECT_DEATH(a.Merge(b), "CHECK");
}

// Percentile accuracy property over a sweep of distributions.
class HistogramDistributionTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramDistributionTest, P99WithinTolerance) {
  Rng rng(GetParam());
  Histogram h;
  std::vector<double> values;
  constexpr int kN = 20000;
  values.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    const double v = rng.NextLognormal(3.0 + GetParam() % 3, 1.2);
    h.Add(v);
    values.push_back(v);
  }
  std::sort(values.begin(), values.end());
  const double exact = values[static_cast<std::size_t>(kN * 0.99) - 1];
  EXPECT_NEAR(h.Percentile(99), exact, exact * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramDistributionTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace limoncello
